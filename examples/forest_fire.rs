//! Forest fire: the paper's canonical *field event* (Sec. 4.2).
//!
//! A fire ignites and spreads radially; temperature motes detect the
//! front, the sink aggregates co-located hot readings into a fire-area
//! cyber-physical event whose estimated location is a *field* (the hull
//! of the reporting motes), and the CCU raises the alarm and dispatches
//! sprinklers within the affected radius.
//!
//! Run with: `cargo run --example forest_fire`
//! (add `-- engine [shards]` to serve the sink/CCU layers from the
//! streaming engine instead of the inline DES detectors)

use stem::cep::Pattern;
use stem::core::{dsl, AttrAggregate, AttrProjection, EventDefinition, EventId, Layer};
use stem::cps::{
    metrics, ActorSelector, CpsApplication, CpsSystem, DetectorSpec, EcaRule, EvalBackend,
    ScenarioConfig, TopologySpec,
};
use stem::physical::{ScalarField, SpreadingFire, WorldField};
use stem::spatial::Point;
use stem::temporal::{Duration, TimePoint};

fn main() {
    let fire = SpreadingFire {
        ignition: Point::new(45.0, 45.0),
        ignition_time: TimePoint::new(10_000),
        spread_speed: 0.002, // 2 m/s — fast-moving crown fire
        burn_value: 400.0,
        ambient: 20.0,
        edge_width: 3.0,
    };

    let config = ScenarioConfig {
        seed: 21,
        topology: TopologySpec::Grid {
            nx: 6,
            ny: 6,
            spacing: 15.0,
            jitter: 2.0,
        },
        sink_near: Point::new(0.0, 0.0),
        actors: vec![
            Point::new(20.0, 20.0),
            Point::new(45.0, 45.0),
            Point::new(70.0, 70.0),
        ],
        world: WorldField::Fire(fire),
        sampling_period: Duration::new(1_000),
        duration: Duration::new(60_000),
        backend: EvalBackend::from_args(std::env::args()),
        ..ScenarioConfig::default()
    };
    println!("evaluation backend: {:?}", config.backend);

    let app = CpsApplication::new()
        // Layer 1: motes report readings above 60 °C.
        .with_sensor_definition(
            EventDefinition::new(
                "hot-reading",
                Layer::Sensor,
                dsl::parse("x.temp > 60").expect("valid"),
            )
            .with_projection(AttrProjection::new(
                "temp",
                AttrAggregate::Average,
                "temp",
            )),
        )
        // Layer 2: the sink fuses two nearby hot readings into a field
        // estimate of the burning area (hull of the reporting motes).
        .with_sink_detector(DetectorSpec::new(
            EventDefinition::new(
                "fire-area",
                Layer::CyberPhysical,
                dsl::parse("(dist(loc(a), loc(b)) < 40) and (avg(a.temp, b.temp) > 80)")
                    .expect("valid"),
            )
            .with_location_estimator(stem::core::LocationEstimator::HullOfInputs)
            .with_projection(AttrProjection::new("temp", AttrAggregate::Max, "temp")),
            Pattern::atom("a", "hot-reading").and(Pattern::atom("b", "hot-reading")),
            Duration::new(3_000),
        ))
        // Layer 3: the CCU promotes a hot fire-area to an alarm.
        .with_ccu_detector(DetectorSpec::new(
            EventDefinition::new(
                "fire-alarm",
                Layer::Cyber,
                dsl::parse("x.temp > 100").expect("valid"),
            ),
            Pattern::atom("x", "fire-area"),
            Duration::new(10_000),
        ))
        // Action: sprinklers within 40 m of the estimated fire location.
        .with_rule(EcaRule::new(
            "fire-alarm",
            "sprinkler-on",
            ActorSelector::WithinRadius(40.0),
        ));

    let report = CpsSystem::run(config, app);

    println!("=== forest fire: field event detection ===");
    println!("seed {}, {} sim events", report.seed, report.sim_events);
    println!(
        "observations {}, sensor events {}, CP events {}, cyber events {}, actions {}",
        report.metrics.counter(metrics::OBSERVATIONS),
        report.metrics.counter(metrics::SENSOR_EVENTS),
        report.metrics.counter(metrics::CP_EVENTS),
        report.metrics.counter(metrics::CYBER_EVENTS),
        report.metrics.counter(metrics::ACTIONS),
    );

    // First detection latency vs ground truth ignition.
    let first_alarm = report
        .instances_of(&EventId::new("fire-alarm"))
        .map(|i| i.generation_time())
        .min();
    match first_alarm {
        Some(t) => {
            println!(
                "first fire-alarm at {} — {} ticks after ignition",
                t,
                t.ticks().saturating_sub(10_000)
            );
        }
        None => println!("no fire alarm raised (unexpected)"),
    }

    // Field-event estimates: compare the estimated burning area with the
    // ground-truth front radius at each CP event.
    println!("fire-area estimates (field events):");
    let fire_truth = SpreadingFire {
        ignition: Point::new(45.0, 45.0),
        ignition_time: TimePoint::new(10_000),
        spread_speed: 0.002,
        burn_value: 400.0,
        ambient: 20.0,
        edge_width: 3.0,
    };
    for inst in report.instances_of(&EventId::new("fire-area")).take(5) {
        let est = inst.estimated_location();
        let t = inst.estimated_time().midpoint();
        let center_temp = fire_truth.value_at(est.representative(), t);
        println!(
            "  t={} est={} (true temp at estimate centre: {:.0} °C, class: {})",
            t,
            est.representative(),
            center_temp,
            if est.is_field() { "field" } else { "point" },
        );
    }

    assert!(first_alarm.is_some(), "the fire must be detected");
    assert!(
        report.metrics.counter(metrics::ACTIONS) > 0,
        "sprinklers must fire"
    );
    let truth_region = fire_truth.burning_region(TimePoint::new(60_000));
    println!(
        "ground-truth burnt radius at horizon: {:.1} m ({})",
        fire_truth.front_radius(TimePoint::new(60_000)),
        truth_region.map_or("none".to_owned(), |r| format!("{r}")),
    );
}
