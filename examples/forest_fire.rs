//! Forest fire: the paper's canonical *field event* (Sec. 4.2).
//!
//! A fire ignites and spreads radially; temperature motes detect the
//! front, the sink aggregates co-located hot readings into a fire-area
//! cyber-physical event whose estimated location is a *field* (the hull
//! of the reporting motes), and the CCU raises the alarm and dispatches
//! sprinklers within the affected radius.
//!
//! Run with: `cargo run --example forest_fire`
//! (add `-- engine [shards]` to serve the sink/CCU layers from the
//! streaming engine instead of the inline DES detectors; add
//! `--record <dir>` to journal the station evaluation stream to a
//! write-ahead log, and re-analyse it later — no re-simulation — with
//! `--replay <dir>`)

use stem::cep::Pattern;
use stem::core::{dsl, AttrAggregate, AttrProjection, EventDefinition, EventId, Layer};
use stem::cps::{
    metrics, replay_recorded, ActorSelector, CpsApplication, CpsSystem, DetectorSpec, EcaRule,
    EvalBackend, ScenarioConfig, TopologySpec,
};
use stem::engine::NotificationKind;
use stem::physical::{ScalarField, SpreadingFire, WorldField};
use stem::spatial::Point;
use stem::temporal::{Duration, TimePoint};

/// The value following `--record` / `--replay`, if the flag is present.
fn flag_value(flag: &str) -> Option<String> {
    let mut args = std::env::args().skip_while(|a| a != flag);
    args.next()?;
    Some(args.next().unwrap_or_else(|| {
        eprintln!("{flag} needs a directory argument");
        std::process::exit(2);
    }))
}

fn main() {
    let fire = SpreadingFire {
        ignition: Point::new(45.0, 45.0),
        ignition_time: TimePoint::new(10_000),
        spread_speed: 0.002, // 2 m/s — fast-moving crown fire
        burn_value: 400.0,
        ambient: 20.0,
        edge_width: 3.0,
    };

    let mut backend = EvalBackend::from_args(std::env::args());
    let record_dir = flag_value("--record");
    let replay_dir = flag_value("--replay");
    if record_dir.is_some() && backend == EvalBackend::Des {
        // The WAL journals the engine's ingest stream, so recording
        // implies the engine backend.
        backend = EvalBackend::Engine {
            shards: 2,
            deterministic: true,
        };
        println!("--record implies the engine backend");
    }
    let config = ScenarioConfig {
        seed: 21,
        topology: TopologySpec::Grid {
            nx: 6,
            ny: 6,
            spacing: 15.0,
            jitter: 2.0,
        },
        sink_near: Point::new(0.0, 0.0),
        actors: vec![
            Point::new(20.0, 20.0),
            Point::new(45.0, 45.0),
            Point::new(70.0, 70.0),
        ],
        world: WorldField::Fire(fire),
        sampling_period: Duration::new(1_000),
        duration: Duration::new(60_000),
        backend,
        record_dir,
        ..ScenarioConfig::default()
    };
    println!("evaluation backend: {:?}", config.backend);

    let app = CpsApplication::new()
        // Layer 1: motes report readings above 60 °C.
        .with_sensor_definition(
            EventDefinition::new(
                "hot-reading",
                Layer::Sensor,
                dsl::parse("x.temp > 60").expect("valid"),
            )
            .with_projection(AttrProjection::new(
                "temp",
                AttrAggregate::Average,
                "temp",
            )),
        )
        // Layer 2: the sink fuses two nearby hot readings into a field
        // estimate of the burning area (hull of the reporting motes).
        .with_sink_detector(DetectorSpec::new(
            EventDefinition::new(
                "fire-area",
                Layer::CyberPhysical,
                dsl::parse("(dist(loc(a), loc(b)) < 40) and (avg(a.temp, b.temp) > 80)")
                    .expect("valid"),
            )
            .with_location_estimator(stem::core::LocationEstimator::HullOfInputs)
            .with_projection(AttrProjection::new("temp", AttrAggregate::Max, "temp")),
            Pattern::atom("a", "hot-reading").and(Pattern::atom("b", "hot-reading")),
            Duration::new(3_000),
        ))
        // Layer 3: the CCU promotes a hot fire-area to an alarm.
        .with_ccu_detector(DetectorSpec::new(
            EventDefinition::new(
                "fire-alarm",
                Layer::Cyber,
                dsl::parse("x.temp > 100").expect("valid"),
            ),
            Pattern::atom("x", "fire-area"),
            Duration::new(10_000),
        ))
        // Action: sprinklers within 40 m of the estimated fire location.
        .with_rule(EcaRule::new(
            "fire-alarm",
            "sprinkler-on",
            ActorSelector::WithinRadius(40.0),
        ));

    if let Some(dir) = replay_dir {
        // Historical replay: re-evaluate the recorded station stream
        // under this app's conditions without re-simulating the fire,
        // the sensing, or the WSN.
        let shards = match config.backend {
            EvalBackend::Engine { shards, .. } => shards,
            EvalBackend::Des => 2,
        };
        let (notes, report) = replay_recorded(&config, &app, std::path::Path::new(&dir), shards);
        println!("=== forest fire: historical replay of {dir} ===");
        println!("{}", report.summary_line());
        let mut derived = 0usize;
        let mut first_alarm: Option<TimePoint> = None;
        for note in &notes {
            if let NotificationKind::Derived(inst) = &note.kind {
                derived += 1;
                if inst.event() == &EventId::new("fire-alarm") {
                    first_alarm = Some(
                        first_alarm
                            .map_or(inst.generation_time(), |t| t.min(inst.generation_time())),
                    );
                }
            }
        }
        println!("replayed detections: {derived} derived instances");
        match first_alarm {
            Some(t) => println!("first fire-alarm (replayed): {t}"),
            None => println!("no fire alarm in the recorded stream"),
        }
        assert!(derived > 0, "the recorded run must replay its detections");
        return;
    }

    let report = CpsSystem::run(config, app);

    println!("=== forest fire: field event detection ===");
    println!("seed {}, {} sim events", report.seed, report.sim_events);
    println!(
        "observations {}, sensor events {}, CP events {}, cyber events {}, actions {}",
        report.metrics.counter(metrics::OBSERVATIONS),
        report.metrics.counter(metrics::SENSOR_EVENTS),
        report.metrics.counter(metrics::CP_EVENTS),
        report.metrics.counter(metrics::CYBER_EVENTS),
        report.metrics.counter(metrics::ACTIONS),
    );

    // First detection latency vs ground truth ignition.
    let first_alarm = report
        .instances_of(&EventId::new("fire-alarm"))
        .map(|i| i.generation_time())
        .min();
    match first_alarm {
        Some(t) => {
            println!(
                "first fire-alarm at {} — {} ticks after ignition",
                t,
                t.ticks().saturating_sub(10_000)
            );
        }
        None => println!("no fire alarm raised (unexpected)"),
    }

    // Field-event estimates: compare the estimated burning area with the
    // ground-truth front radius at each CP event.
    println!("fire-area estimates (field events):");
    let fire_truth = SpreadingFire {
        ignition: Point::new(45.0, 45.0),
        ignition_time: TimePoint::new(10_000),
        spread_speed: 0.002,
        burn_value: 400.0,
        ambient: 20.0,
        edge_width: 3.0,
    };
    for inst in report.instances_of(&EventId::new("fire-area")).take(5) {
        let est = inst.estimated_location();
        let t = inst.estimated_time().midpoint();
        let center_temp = fire_truth.value_at(est.representative(), t);
        println!(
            "  t={} est={} (true temp at estimate centre: {:.0} °C, class: {})",
            t,
            est.representative(),
            center_temp,
            if est.is_field() { "field" } else { "point" },
        );
    }

    assert!(first_alarm.is_some(), "the fire must be detected");
    assert!(
        report.metrics.counter(metrics::ACTIONS) > 0,
        "sprinklers must fire"
    );
    let truth_region = fire_truth.burning_region(TimePoint::new(60_000));
    println!(
        "ground-truth burnt radius at horizon: {:.1} m ({})",
        fire_truth.front_radius(TimePoint::new(60_000)),
        truth_region.map_or("none".to_owned(), |r| format!("{r}")),
    );
}
