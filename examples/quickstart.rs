//! Quickstart: the STEM event model in five minutes.
//!
//! Walks through the paper's core concepts — events, conditions, the DSL,
//! observers, instances — without any simulation machinery.
//!
//! Run with: `cargo run --example quickstart`

use stem::core::{
    dsl, Attributes, Bindings, ConditionObserver, Confidence, EntityData, EventDefinition, Layer,
    MoteId, ObserverId,
};
use stem::spatial::{Circle, Field, Point, SpatialExtent};
use stem::temporal::{TemporalExtent, TimePoint};

fn main() {
    // ------------------------------------------------------------------
    // 1. Event conditions (Def. 4.2) — written in the textual DSL.
    //    This is the paper's composite sensor event condition S1
    //    (Sec. 4.1): "every instance of physical observation x occurs
    //    before physical observation y and the distance between the
    //    location of x and the location of y is less than 5 meters".
    // ------------------------------------------------------------------
    let s1 = dsl::parse("(time(x) before time(y)) and (dist(loc(x), loc(y)) < 5)")
        .expect("S1 is valid DSL");
    println!("S1 condition : {s1}");
    println!("S1 entities  : {:?}", s1.entity_names());

    // ------------------------------------------------------------------
    // 2. Entities — "a physical observation or an event instance".
    //    Two observations 3 m and 40 ms apart satisfy S1.
    // ------------------------------------------------------------------
    let observation = |t: u64, x: f64, temp: f64| {
        EntityData::new(
            TemporalExtent::punctual(TimePoint::new(t)),
            SpatialExtent::point(Point::new(x, 0.0)),
            Attributes::new().with("temp", temp),
            Confidence::CERTAIN,
        )
    };
    let bindings = Bindings::new()
        .with("x", observation(100, 0.0, 31.0))
        .with("y", observation(140, 3.0, 33.0));
    println!(
        "S1 over x@(0,0,t100), y@(3,0,t140): {:?}",
        s1.eval(&bindings)
    );

    // ------------------------------------------------------------------
    // 3. Spatial conditions over fields: "user inside the nearby-window
    //    area" — a disc around the window.
    // ------------------------------------------------------------------
    let nearby = dsl::parse("loc(user) inside circle(10, 10, 3)").expect("valid");
    let user_near = Bindings::new().with(
        "user",
        EntityData::new(
            TemporalExtent::punctual(TimePoint::new(7)),
            SpatialExtent::point(Point::new(11.0, 9.0)),
            Attributes::new(),
            Confidence::CERTAIN,
        ),
    );
    println!(
        "user inside window area            : {:?}",
        nearby.eval(&user_near)
    );
    let window_area = Field::circle(Circle::new(Point::new(10.0, 10.0), 3.0));
    println!("window area                        : {window_area}");

    // ------------------------------------------------------------------
    // 4. Observers (Def. 4.3) evaluate definitions and generate event
    //    instances (Def. 4.4) with the 6-tuple
    //    {t^g, l^g, t^eo, l^eo, V, ρ}.
    // ------------------------------------------------------------------
    let definition = EventDefinition::new(
        "warm-pair",
        Layer::Sensor,
        dsl::parse("avg(x.temp, y.temp) > 30").expect("valid"),
    )
    .with_projection(stem::core::AttrProjection::new(
        "temp",
        stem::core::AttrAggregate::Average,
        "temp",
    ));
    let mut observer =
        ConditionObserver::new(ObserverId::Mote(MoteId::new(1)), Point::new(1.0, 0.0), 0.95);
    let instance = observer
        .evaluate(&definition, &bindings, TimePoint::new(150))
        .expect("bindings complete")
        .expect("condition holds");
    println!("generated instance                 : {instance}");
    println!(
        "  estimated occurrence {} vs generated at {} (detection latency {:?})",
        instance.estimated_time(),
        instance.generation_time(),
        instance.detection_latency()
    );

    // ------------------------------------------------------------------
    // 5. Classification (Sec. 4.2): the instance above is interval/point
    //    (hull of two punctual inputs; centroid of two point locations).
    // ------------------------------------------------------------------
    println!(
        "  temporal class: {}",
        if instance.estimated_time().is_interval() {
            "interval"
        } else {
            "punctual"
        }
    );
    println!(
        "  spatial class : {}",
        if instance.estimated_location().is_field() {
            "field"
        } else {
            "point"
        }
    );

    // ------------------------------------------------------------------
    // 6. Formal temporal analysis (Sec. 6): qualitative reasoning with
    //    no timestamps at all. Given door-before-motion and
    //    motion-before-alarm, path consistency derives door-before-alarm
    //    — and detects that adding alarm-before-door is contradictory.
    // ------------------------------------------------------------------
    use stem::temporal::{AllenRelation, TemporalNetwork};
    let mut net = TemporalNetwork::new(3); // 0=door, 1=motion, 2=alarm
    net.constrain(0, 1, AllenRelation::Before.into());
    net.constrain(1, 2, AllenRelation::Before.into());
    assert!(net.propagate());
    println!(
        "derived door↔alarm relation        : {}",
        net.constraint(0, 2)
    );
    let mut bad = net.clone();
    bad.constrain(2, 0, AllenRelation::Before.into());
    println!(
        "with alarm-before-door added       : {}",
        if bad.propagate() {
            "consistent"
        } else {
            "inconsistent (cycle detected)"
        }
    );
}
