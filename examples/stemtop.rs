//! stemtop: a live terminal view of a running engine.
//!
//! A producer thread drives a threaded 4-shard engine with a synthetic
//! sensor stream while the main thread polls the telemetry registry
//! ([`stem::obs::ObsRegistry`]) four times a second and renders what a
//! `top`-style operator view would show: the stream clock, delivery
//! counters, per-shard queue and reorder-buffer depth, and the
//! per-stage latency distributions (batch build → ingest → route →
//! enqueue → reorder release → scope prune → evaluate → batch
//! reset), including the columnar batch-build and arena-reset rows
//! the ingest path pays per chunk.
//!
//! Below the stage table sits the lineage pane: the newest entries of
//! the engine's flight-recorder ring ([`stem::engine::TraceHandle`]),
//! one row per delivered notification — which shard evaluated it,
//! which subscription fired, the constituent trace ids (global ingest
//! sequences, joinable offline against a WAL via `stem::trace`), and
//! the ingest→notify latency read off the per-stage trace stamps.
//!
//! Below that sits the alert pane: the engine's self-monitoring
//! watchdog ([`stem::engine::HealthHandle`], see `stem::watch`) — the
//! built-in watcher set plus a deliberately twitchy queue-pressure
//! rule so a live run usually has something to show — with each
//! alert's rule, severity, shard, firing value, and the snapshot seqs
//! it was confirmed over.
//!
//! The run is bounded (a few seconds) so it doubles as a smoke test.
//!
//! Run with: `cargo run --release --example stemtop`
//! Options: `--poll <ms>` sets the viewer poll interval (default 250).

use std::io::IsTerminal;
use std::sync::Arc;
use std::thread;
use std::time::Duration as StdDuration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use stem::core::{dsl, Attributes, EventId, EventInstance, Layer, MoteId, ObserverId};
use stem::engine::{
    Collector, Engine, EngineConfig, HealthHandle, Metric, Severity, Subscription, TelemetryPolicy,
    TraceHandle, TracePolicy, WatchPolicy, WatchSpec,
};
use stem::obs::{ObsRegistry, ObsSnapshot, Stage, TraceRecord};
use stem::spatial::{Field, Point, Rect, SpatialExtent};
use stem::temporal::{Duration, TimePoint};

const SEED: u64 = 23;
const SHARDS: usize = 4;
const WORLD: f64 = 1000.0;
const CHUNK: usize = 1_500;
const CHUNKS: usize = 120;
const SUB_GRID: usize = 6;

fn bounds() -> Rect {
    Rect::new(Point::new(0.0, 0.0), Point::new(WORLD, WORLD))
}

/// One chunk of the synthetic stream: readings from fixed generator
/// sites with mildly out-of-order timestamps, the same shape the
/// throughput bench uses.
fn chunk(rng: &mut SmallRng, base_tick: u64) -> Vec<EventInstance> {
    (0..CHUNK)
        .map(|i| {
            let mote = rng.gen_range(0..256u32);
            let x = rng.gen_range(0.0..WORLD);
            let y = rng.gen_range(0.0..WORLD);
            let jitter = rng.gen_range(0..8u64);
            EventInstance::builder(
                ObserverId::Mote(MoteId::new(mote)),
                EventId::new("reading"),
                Layer::Sensor,
            )
            .generated(
                TimePoint::new(base_tick + i as u64 + jitter),
                Point::new(x, y),
            )
            .attributes(Attributes::new().with("temp", rng.gen_range(0.0..100.0)))
            .build()
        })
        .collect()
}

/// Renders one registry snapshot as a `top`-style block. On a real
/// terminal the screen is redrawn in place; when piped, blocks are
/// appended so the output stays greppable.
fn render(snapshot: &ObsSnapshot, clear: bool) {
    if clear {
        print!("\x1b[H\x1b[2J");
    }
    println!(
        "stemtop — snapshot #{}  stream clock t={}",
        snapshot.seq,
        snapshot
            .ticks
            .map_or_else(|| "?".to_owned(), |t| t.to_string())
    );
    println!(
        "  shard msgs {}  notifications {}  routed {}  fanout {}",
        snapshot.counter("msgs_processed"),
        snapshot.gauge("notifications"),
        snapshot.gauge("routed"),
        snapshot.gauge("fanout"),
    );
    let plans = snapshot.gauge("plans_active");
    let plan_subs = snapshot.gauge("plan_subscribers");
    println!(
        "  plans {plans}  subscribers {plan_subs}  max fanout {}  dedupe {:.1}x",
        snapshot.gauge("plan_subscribers_max"),
        if plans == 0 {
            0.0
        } else {
            plan_subs as f64 / plans as f64
        },
    );
    if let Some((_, lag)) = snapshot.hists.iter().find(|(n, _)| *n == "watermark_lag") {
        println!(
            "  watermark lag  p50 {}  p99 {}  max {} ticks",
            lag.p50, lag.p99, lag.max
        );
    }
    println!("  shard  queue  reorder  released  late_dropped");
    for row in &snapshot.shards {
        let gauge = |name: &str| {
            row.gauges
                .iter()
                .find(|(n, _)| *n == name)
                .map_or(0, |&(_, v)| v)
        };
        println!(
            "  {:>5}  {:>5}  {:>7}  {:>8}  {:>12}",
            row.shard,
            row.queue_depth,
            gauge("reorder_depth"),
            gauge("released"),
            gauge("late_dropped"),
        );
    }
    println!(
        "  {:<15} {:>8} {:>10} {:>10}",
        "stage", "count", "p50_ns", "p99_ns"
    );
    for &(stage, summary) in &snapshot.stages {
        println!(
            "  {:<15} {:>8} {:>10} {:>10}",
            stage.name(),
            summary.count,
            summary.p50,
            summary.p99
        );
    }
}

/// How many of the newest lineage rows the pane shows.
const LINEAGE_ROWS: usize = 5;

/// Renders the lineage pane: the newest flight-recorder notifications,
/// one causal row each.
fn render_lineage(trace: &TraceHandle) {
    let records = trace.records();
    let notifies: Vec<&TraceRecord> = records
        .iter()
        .filter(|r| matches!(r, TraceRecord::Notify { .. }))
        .collect();
    println!(
        "  lineage — flight recorder: {} record(s) retained, {} evicted",
        records.len(),
        trace.evicted()
    );
    println!(
        "  {:<5} {:>4} {:>7} {:>16}  constituents (trace ids)",
        "shard", "sub", "notify#", "ingest→notify ns"
    );
    for record in notifies.iter().rev().take(LINEAGE_ROWS).rev() {
        let TraceRecord::Notify {
            shard,
            id,
            sub,
            stamps,
            constituents,
        } = record
        else {
            continue;
        };
        let ids: Vec<String> = constituents.iter().map(|c| c.trace.to_string()).collect();
        println!(
            "  {:<5} {:>4} {:>7} {:>16}  [{}]",
            shard,
            sub,
            id,
            stamps[NOTIFY_LAST].saturating_sub(stamps[0]),
            ids.join(", "),
        );
    }
}

/// Index of the `notify` stamp in a notify record's stage array.
const NOTIFY_LAST: usize = 5;

/// How many of the newest alerts the pane shows.
const ALERT_ROWS: usize = 5;

/// Renders the alert pane: the watchdog's newest health alerts.
fn render_alerts(health: &HealthHandle) {
    let alerts = health.alerts();
    println!(
        "  health — watchdog: {} alert(s) retained, {} evicted",
        alerts.len(),
        health.evicted()
    );
    println!(
        "  {:<16} {:<8} {:>5} {:>8} {:>9}  confirmed over seqs",
        "rule", "severity", "shard", "value", "threshold"
    );
    for alert in alerts.iter().rev().take(ALERT_ROWS).rev() {
        println!(
            "  {:<16} {:<8} {:>5} {:>8} {:>9}  [{}..={}]",
            alert.rule,
            alert.severity.name(),
            alert
                .shard
                .map_or_else(|| "-".to_owned(), |s| s.to_string()),
            alert.value,
            alert.threshold,
            alert.began_seq,
            alert.fired_seq,
        );
    }
}

/// Parses `--poll <ms>` / `--poll=<ms>` from the command line (viewer
/// poll interval; default 250 ms).
fn poll_interval() -> StdDuration {
    let mut args = std::env::args().skip(1);
    let mut ms = 250u64;
    while let Some(arg) = args.next() {
        let value = if arg == "--poll" {
            args.next()
        } else {
            arg.strip_prefix("--poll=").map(str::to_owned)
        };
        if let Some(value) = value {
            ms = value
                .parse()
                .unwrap_or_else(|_| panic!("--poll wants milliseconds, got {value:?}"));
        }
    }
    StdDuration::from_millis(ms.max(1))
}

fn main() {
    let mut engine = Engine::start(
        EngineConfig::new(bounds())
            .with_shards(SHARDS)
            .with_batch_size(256)
            .with_watermark_slack(Duration::new(16))
            .with_telemetry(TelemetryPolicy::every_batches(4).with_ring(64))
            .with_trace(TracePolicy::NotificationsOnly)
            // The built-in watchers plus a queue-pressure rule twitchy
            // enough that a live producer usually trips it.
            .with_watch(WatchPolicy::enabled().with_ring(64))
            .with_watch_spec(
                WatchSpec::new("queue-pressure", Metric::ShardQueueDepth)
                    .at_least(1)
                    .sustained_for(2)
                    .severity(Severity::Info),
            ),
    );
    let registry: Arc<ObsRegistry> = engine.obs().expect("telemetry is on");
    let trace: TraceHandle = engine.trace().expect("tracing is on");
    let health: HealthHandle = engine.health().expect("watch is on");
    let poll = poll_interval();

    // A grid of hot-reading subscriptions so evaluate/scope-prune have
    // real work on every shard.
    let collector = Collector::new();
    let cell = WORLD / SUB_GRID as f64;
    for gx in 0..SUB_GRID {
        for gy in 0..SUB_GRID {
            let lo = Point::new(gx as f64 * cell, gy as f64 * cell);
            let hi = Point::new(lo.x + cell, lo.y + cell);
            engine.subscribe(
                Subscription::new(
                    format!("hot-{gx}-{gy}"),
                    SpatialExtent::field(Field::rect(Rect::new(lo, hi))),
                    collector.sink(),
                )
                .for_event("reading")
                .when(dsl::parse("x.temp > 90").expect("valid condition")),
            );
        }
    }

    // The producer: a bounded stream with periodic syncs, paced so the
    // viewer below catches the engine mid-flight.
    let producer = thread::spawn(move || {
        let mut rng = SmallRng::seed_from_u64(SEED);
        for c in 0..CHUNKS {
            // Columnar ingest: the whole chunk goes through pooled
            // arena batches, so the batch_build/batch_reset stage rows
            // below carry real samples.
            engine.ingest_all(chunk(&mut rng, (c * CHUNK) as u64));
            if c % 16 == 15 {
                engine.sync();
            }
            thread::sleep(StdDuration::from_millis(10));
        }
        engine.finish()
    });

    let interactive = std::io::stdout().is_terminal();
    let mut last_seq = None;
    while !producer.is_finished() {
        thread::sleep(poll);
        if let Some(snapshot) = registry.latest() {
            // Redraw only when a new sample landed.
            if last_seq != Some(snapshot.seq) {
                last_seq = Some(snapshot.seq);
                render(&snapshot, interactive);
                render_lineage(&trace);
                render_alerts(&health);
            }
        }
    }
    let report = producer.join().expect("producer thread");

    println!("\nfinal: {}", report.summary_line());
    println!("deliveries: {}", collector.take().len());
    let obs = report.obs.expect("telemetry report");
    assert!(
        last_seq.is_some(),
        "the viewer observed at least one snapshot"
    );
    assert!(
        !obs.merged.stage(Stage::Evaluate).is_empty(),
        "evaluate stage recorded samples"
    );
    assert!(
        !obs.merged.stage(Stage::BatchBuild).is_empty()
            && !obs.merged.stage(Stage::BatchReset).is_empty(),
        "columnar batch build/reset stages recorded samples"
    );
    let trace = report.trace.expect("flight recorder report");
    let notifies = trace
        .records
        .iter()
        .filter(|r| matches!(r, TraceRecord::Notify { .. }))
        .count();
    assert!(notifies > 0, "the ring retained notification lineage");
    println!("lineage records: {} ({} evicted)", notifies, trace.evicted);
    let health = report.health.expect("watch report");
    println!(
        "health alerts: {} ({} evicted)",
        health.alerts.len(),
        health.evicted
    );
    for alert in &health.alerts {
        // Every alert's provenance names real telemetry snapshots.
        assert!(alert.began_seq <= alert.fired_seq);
        assert!(!alert.constituents.is_empty(), "alerts carry provenance");
    }
}
