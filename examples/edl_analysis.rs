//! Event Detection Latency analysis: the paper's future work (Sec. 6),
//! implemented.
//!
//! Builds the analytic per-stage EDL model for the Fig. 1 pipeline and
//! compares it against Monte-Carlo simulation of the same MAC/radio
//! parameters — printing the per-stage latency breakdown and the
//! model-vs-simulated distribution summary.
//!
//! Run with: `cargo run --example edl_analysis`

use stem::analysis::{pipeline_edl, Pmf, Summary};
use stem::des::stream;
use stem::temporal::Duration;
use stem::wsn::{transmit_frame, MacConfig, Radio, RadioConfig};

fn main() {
    let radio = Radio::new(RadioConfig::default(), 42);
    let mac = MacConfig::default();
    let sampling = Duration::new(1_000);
    let payload = 32u32;
    let p_link = 0.9;
    let hops = 3;

    let model = pipeline_edl(
        sampling,
        Duration::new(2),
        &mac,
        &radio,
        payload,
        p_link,
        hops,
        Duration::new(5),
        Duration::new(20),
        Duration::new(3),
    );

    println!("=== analytic EDL model ({hops} hops, p_link={p_link}) ===");
    println!("{:<20} {:>10} {:>8}", "stage", "mean (ms)", "share");
    for (name, mean, share) in model.mean_breakdown() {
        println!(
            "{name:<20} {mean:>10.2} {share:>7.1}%",
            share = share * 100.0
        );
    }
    let e2e = model.end_to_end();
    println!();
    println!(
        "end-to-end: delivery {:.3}, mean {:.1} ms, p50 {} ms, p95 {} ms, p99 {} ms",
        e2e.total_mass(),
        e2e.mean().unwrap(),
        e2e.quantile(0.5).unwrap(),
        e2e.quantile(0.95).unwrap(),
        e2e.quantile(0.99).unwrap(),
    );

    // ---------------------------------------------------------------
    // Monte-Carlo validation of the transport stages (the stochastic
    // part of the model: per-hop MAC delays).
    // ---------------------------------------------------------------
    let airtime = radio.transmission_delay(payload);
    let mut rng = stream(42, 7);
    let runs = 20_000;
    let mut delivered_delays = Vec::new();
    let mut lost = 0u32;
    for _ in 0..runs {
        let mut total = 0.0;
        let mut ok = true;
        for _ in 0..hops {
            let out = transmit_frame(&mac, airtime, p_link, &mut rng);
            total += out.delay.as_f64();
            if !out.delivered {
                ok = false;
                break;
            }
        }
        if ok {
            delivered_delays.push(total);
        } else {
            lost += 1;
        }
    }
    let sim_delivery = 1.0 - f64::from(lost) / f64::from(runs);
    let sim = Summary::of(&delivered_delays).expect("some deliveries");

    // The analytic transport-only pmf for comparison.
    let hop = stem::analysis::mac_hop_stage(&mac, airtime, p_link);
    let transport = (1..hops).fold(hop.clone(), |acc, _| acc.convolve(&hop));

    println!();
    println!("=== transport stages: model vs Monte-Carlo ({runs} frames) ===");
    println!("{:<12} {:>12} {:>12}", "metric", "analytic", "simulated");
    println!(
        "{:<12} {:>12.4} {:>12.4}",
        "delivery",
        transport.total_mass(),
        sim_delivery
    );
    println!(
        "{:<12} {:>12.2} {:>12.2}",
        "mean (ms)",
        transport.mean().unwrap(),
        sim.mean
    );
    println!(
        "{:<12} {:>12} {:>12.0}",
        "p50 (ms)",
        transport.quantile(0.5).unwrap(),
        Pmf::from_samples(
            &delivered_delays
                .iter()
                .map(|d| *d as u64)
                .collect::<Vec<_>>()
        )
        .unwrap()
        .quantile(0.5)
        .unwrap()
    );

    let mean_err = (transport.mean().unwrap() - sim.mean).abs() / sim.mean * 100.0;
    println!("mean error: {mean_err:.2}%");
    assert!(
        mean_err < 5.0,
        "analytic transport mean should track simulation within 5%"
    );
    assert!(
        (transport.total_mass() - sim_delivery).abs() < 0.02,
        "analytic delivery probability should track simulation"
    );
}
