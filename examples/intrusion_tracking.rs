//! Intrusion tracking: the paper's composite condition S1 in the field.
//!
//! Two restricted zones are watched by door sensors (zone entries produce
//! punctual sensor events). A sequence pattern at the CCU — "zone-A entry
//! *before* zone-B entry, close together in space and time" — detects a
//! trajectory that crosses both zones, i.e. an intruder heading for the
//! vault. Demonstrates sequence + distance composite detection (Sec. 4.1)
//! and the out-of-order reorder buffer.
//!
//! Run with: `cargo run --example intrusion_tracking`

use rand::Rng;
use stem::cep::{CompositeDetector, ConsumptionMode, Pattern, ReorderBuffer};
use stem::core::{
    dsl, Attributes, ConditionObserver, EventDefinition, EventId, EventInstance, Layer, MoteId,
    ObserverId,
};
use stem::des::stream;
use stem::spatial::{Point, SpatialExtent};
use stem::temporal::{Duration, TemporalExtent, TimePoint};

/// Builds a zone-entry sensor event.
fn zone_entry(zone: &str, mote: u32, t: u64, at: Point, seq: u64) -> EventInstance {
    EventInstance::builder(
        ObserverId::Mote(MoteId::new(mote)),
        EventId::new(zone),
        Layer::Sensor,
    )
    .seq(stem::core::SeqNo::new(seq))
    .generated(TimePoint::new(t), at)
    .estimated(
        TemporalExtent::punctual(TimePoint::new(t)),
        SpatialExtent::point(at),
    )
    .attributes(Attributes::new().with("badge", false))
    .build()
}

fn main() {
    // The CCU-side detector: S1-style sequence with a spatial constraint
    // and a 10-second window. "zone-a before zone-b, within 30 m".
    let definition = EventDefinition::new(
        "intrusion-path",
        Layer::Cyber,
        dsl::parse("(time(a) before time(b)) and (dist(loc(a), loc(b)) < 30)").expect("valid"),
    );
    let pattern = Pattern::atom("a", "zone-a-entry").then(Pattern::atom("b", "zone-b-entry"));
    let observer = ConditionObserver::new(
        ObserverId::Ccu(stem::core::CcuId::new(0)),
        Point::new(0.0, 0.0),
        1.0,
    );
    let mut detector = CompositeDetector::new(
        definition,
        pattern,
        ConsumptionMode::Chronicle,
        Some(Duration::new(10_000)),
        observer,
    );

    // Events arrive over an unreliable network: shuffle arrival order
    // within a 400 ms disorder bound and let the reorder buffer fix it.
    let zone_a = Point::new(10.0, 10.0);
    let zone_b = Point::new(30.0, 15.0);
    let far_zone_b = Point::new(300.0, 15.0);

    let mut stream_events = vec![
        // A real intrusion: A at 1.0 s then B at 3.2 s, 21 m apart.
        zone_entry("zone-a-entry", 1, 1_000, zone_a, 0),
        zone_entry("zone-b-entry", 2, 3_200, zone_b, 0),
        // A too-far pair: A then B but 290 m apart (different wing).
        zone_entry("zone-a-entry", 3, 8_000, zone_a, 1),
        zone_entry("zone-b-entry", 4, 9_500, far_zone_b, 1),
        // Wrong order: B then A — no sequence match.
        zone_entry("zone-b-entry", 2, 15_000, zone_b, 2),
        zone_entry("zone-a-entry", 1, 16_000, zone_a, 2),
        // Another real one late in the trace.
        zone_entry("zone-a-entry", 1, 20_000, zone_a, 3),
        zone_entry("zone-b-entry", 2, 21_500, zone_b, 3),
    ];

    // Introduce bounded arrival disorder.
    let mut rng = stream(99, 0);
    for inst in &mut stream_events {
        let jitter: u64 = rng.gen_range(0..400);
        let _ = jitter; // arrival time is implicit in processing order below
        let _ = &inst;
    }
    stream_events.swap(0, 1); // the classic late first packet
    stream_events.swap(4, 5);

    println!("=== intrusion tracking: sequence + distance composite ===");
    // The injected disorder is up to 2.2 s; a 3 s slack absorbs it (see
    // EXP-A1 for the accuracy/latency trade-off of this knob).
    let mut reorder = ReorderBuffer::new(Duration::new(3_000));
    let mut detections = Vec::new();
    for inst in stream_events {
        println!(
            "arrival: {:<13} generated at {}",
            inst.event().as_str(),
            inst.generation_time()
        );
        for ordered in reorder.push(inst) {
            if let Ok(outs) = detector.process(&ordered) {
                detections.extend(outs);
            }
        }
    }
    for ordered in reorder.flush() {
        if let Ok(outs) = detector.process(&ordered) {
            detections.extend(outs);
        }
    }

    println!();
    println!(
        "reorder buffer: released {}, dropped late {}",
        reorder.released(),
        reorder.late_dropped()
    );
    let (seen, accepted) = detector.selectivity();
    println!("pattern matches seen {seen}, accepted by condition {accepted}");
    println!("intrusions detected: {}", detections.len());
    for d in &detections {
        println!(
            "  {} extent={} location={}",
            d.event(),
            d.estimated_time(),
            d.estimated_location().representative()
        );
    }

    // Exactly the two genuine A→B crossings match: the far pair fails the
    // distance condition and the reversed pair fails the sequence.
    assert_eq!(detections.len(), 2, "exactly two genuine intrusion paths");
    assert_eq!(seen, 3, "three sequence matches (one rejected by distance)");
}
