//! Smart building: the paper's running example, end to end.
//!
//! "User A is nearby window B for the last 30 minutes" (Secs. 1, 4.2):
//! motes with range sensors track a user walking through an office; the
//! sink trilaterates position fixes; the CCU runs a sustained-condition
//! detector over the fixes and — when the user has lingered near the
//! window long enough — commands the blind actuator.
//!
//! (Time is scaled: 1 tick = 1 ms and the "30 minutes" becomes 8 s so the
//! example runs instantly; the mechanism is identical.)
//!
//! Run with: `cargo run --example smart_building`
//! (add `-- engine [shards]` to serve the sink/CCU layers from the
//! streaming engine instead of the inline DES detectors)

use stem::cep::SustainedConfig;
use stem::core::EventId;
use stem::cps::{
    metrics, ActorSelector, CpsApplication, CpsSystem, EcaRule, EvalBackend, ScenarioConfig,
    SustainedSource, SustainedSpec, ThresholdMode, TopologySpec, TrackingSpec,
};
use stem::physical::{MotionModel, UniformField, WaypointPath, WorldField};
use stem::spatial::Point;
use stem::temporal::{Duration, TimePoint};
use stem::wsn::SensorNoise;

fn main() {
    let window = Point::new(30.0, 30.0);

    // The user's ground-truth path: enter the room, linger by the window
    // from t=5 s to t=20 s, then leave.
    let user = WaypointPath::new(
        vec![
            (TimePoint::new(0), Point::new(0.0, 0.0)),
            (TimePoint::new(5_000), Point::new(29.0, 29.0)),
            (TimePoint::new(20_000), Point::new(31.0, 31.0)), // lingering
            (TimePoint::new(25_000), Point::new(60.0, 60.0)), // leaves
            (TimePoint::new(40_000), Point::new(60.0, 60.0)),
        ],
        false,
    )
    .expect("waypoints are time-ordered");

    let config = ScenarioConfig {
        seed: 7,
        topology: TopologySpec::Grid {
            nx: 5,
            ny: 5,
            spacing: 15.0,
            jitter: 0.0,
        },
        sink_near: Point::new(30.0, 30.0),
        actors: vec![window], // the blind actuator sits at the window
        world: WorldField::Uniform(UniformField { value: 21.0 }),
        duration: Duration::new(40_000),
        backend: EvalBackend::from_args(std::env::args()),
        ..ScenarioConfig::default()
    };
    println!("evaluation backend: {:?}", config.backend);

    let app = CpsApplication::new()
        .with_tracking(TrackingSpec {
            target: MotionModel::Waypoints(user),
            max_range: 25.0,
            noise: SensorNoise {
                sigma: 0.4,
                bias: 0.0,
                quantization: 0.0,
            },
            period: Duration::new(500),
            reading_event: EventId::new("range-reading"),
            position_event: EventId::new("user-position"),
            min_anchors: 3,
        })
        .with_sustained(SustainedSpec {
            input: EventId::new("user-position"),
            output: EventId::new("user-nearby-window"),
            source: SustainedSource::DistanceTo {
                x: window.x,
                y: window.y,
            },
            threshold_mode: ThresholdMode::Below,
            config: SustainedConfig {
                min_duration: Duration::new(8_000), // the "30 minutes"
                enter_threshold: 5.0,               // within 5 m = nearby
                exit_threshold: 7.0,                // hysteresis
            },
            silence_timeout: Duration::new(2_000),
        })
        .with_rule(EcaRule::new(
            "user-nearby-window",
            "blind-down",
            ActorSelector::NearestToEvent,
        ));

    let report = CpsSystem::run(config, app);

    println!("=== smart building: user A nearby window B ===");
    println!("seed {}, {} sim events", report.seed, report.sim_events);
    println!(
        "range readings: {}, position fixes: {}",
        report.instances_of(&EventId::new("range-reading")).count(),
        report.instances_of(&EventId::new("user-position")).count(),
    );
    if let Some(h) = report.metrics.histogram(metrics::LOC_ERROR) {
        let mut h = h.clone();
        println!("localization error (m): {}", h.summary());
    }
    println!("layer population:");
    for (layer, count) in report.layer_counts() {
        println!("  {layer:<16} {count}");
    }

    let nearby_id = EventId::new("user-nearby-window");
    let episodes: Vec<_> = report.instances_of(&nearby_id).collect();
    println!("nearby-window episodes detected: {}", episodes.len());
    for e in &episodes {
        println!(
            "  phase={} extent={} duration={} ticks (ρ={:.2})",
            e.attributes()
                .get("phase")
                .and_then(|v| v.as_text())
                .unwrap_or("?"),
            e.estimated_time(),
            e.estimated_time().length().ticks(),
            e.confidence().value(),
        );
    }

    println!("actions executed: {}", report.executed.len());
    for act in &report.executed {
        println!(
            "  {} at {} (triggered by {} at {})",
            act.command.command,
            act.executed_at,
            act.command.trigger.event(),
            act.command.issued_at
        );
    }

    // Ground truth for comparison: the user is within 5 m of the window
    // from roughly t=5 s to t=22 s.
    assert!(
        !episodes.is_empty(),
        "the lingering episode must be detected"
    );
    assert!(
        !report.executed.is_empty(),
        "the blind must have been commanded"
    );
}
