//! # STEM — Spatio-Temporal Event Model for Cyber-Physical Systems
//!
//! Facade crate for the STEM workspace, a Rust reproduction of
//! Tan, Vuran & Goddard, *"Spatio-Temporal Event Model for Cyber-Physical
//! Systems"*, ICDCS Workshops 2009.
//!
//! Each subsystem lives in its own crate and is re-exported here under a
//! short module name:
//!
//! * [`temporal`] — discrete time model and interval relation algebra
//! * [`spatial`] — 2-D spatial model, fields, and topological relations
//! * [`core`] — the paper's event model (events, conditions, observers,
//!   instances, layers)
//! * [`des`] — deterministic discrete-event simulation kernel
//! * [`physical`] — physical-world models (fields, mobility, ground truth)
//! * [`wsn`] — wireless sensor & actor network simulator
//! * [`cep`] — complex event processing engine with interval semantics
//! * [`cps`] — the hierarchical CPS architecture and scenario runner
//! * [`analysis`] — localization, EDL model, statistics, confidence fusion
//! * [`engine`] — the sharded, batched streaming runtime serving live
//!   spatio-temporal subscriptions at scale
//! * [`wal`] — per-shard write-ahead instance logs: crash recovery and
//!   deterministic historical replay for the engine
//! * [`obs`] — live telemetry: per-shard recorders, latency histograms,
//!   stage spans, snapshot rings, and the JSON-lines exporter
//!
//! # Quick start
//!
//! ```
//! use stem::core::dsl;
//!
//! // Parse the paper's composite sensor event condition S1:
//! let cond = dsl::parse(
//!     "(time(x) before time(y)) and (dist(loc(x), loc(y)) < 5)",
//! ).expect("valid condition");
//! assert_eq!(cond.entity_names(), vec!["x".to_string(), "y".to_string()]);
//! ```
//!
//! See `examples/` for full scenarios (smart building, forest fire,
//! intrusion tracking) and `crates/bench` for the experiment harness.

pub use stem_analysis as analysis;
pub use stem_cep as cep;
pub use stem_core as core;
pub use stem_cps as cps;
pub use stem_des as des;
pub use stem_engine as engine;
pub use stem_obs as obs;
pub use stem_physical as physical;
pub use stem_snap as snap;
pub use stem_spatial as spatial;
pub use stem_temporal as temporal;
pub use stem_trace as trace;
pub use stem_wal as wal;
pub use stem_watch as watch;
pub use stem_wsn as wsn;
