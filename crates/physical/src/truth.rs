//! Ground-truth extraction: turning world models into the paper's
//! *physical events* (Eq. 5.1) so experiments can score what the cyber
//! side detected against what actually happened.

use crate::{ScalarField, Trajectory};
use stem_core::{physical_event, Attributes, PhysicalEvent};
use stem_spatial::{Field, Point, SpatialExtent};
use stem_temporal::{Duration, TemporalExtent, TimeInterval, TimePoint};

/// Computes the intervals during which a moving object is inside a region
/// — the ground truth for interval events like "user A is nearby window B"
/// (Sec. 4.2).
///
/// The trajectory is sampled every `step` ticks over `[from, to]`; an
/// interval spans from the first inside sample to the *last* inside
/// sample of the episode. A presence still ongoing at `to` yields an
/// interval ending at its last inside sample (= `to` when inside there).
///
/// # Panics
///
/// Panics if `step` is zero or `from > to`.
///
/// # Example
///
/// ```
/// use stem_physical::{presence_intervals, WaypointPath};
/// use stem_spatial::{Circle, Field, Point};
/// use stem_temporal::{Duration, TimePoint};
///
/// // Walk through a disc of radius 5.5 centred at x=50.
/// let path = WaypointPath::new(vec![
///     (TimePoint::new(0), Point::new(0.0, 0.0)),
///     (TimePoint::new(100), Point::new(100.0, 0.0)),
/// ], false).unwrap();
/// let region = Field::circle(Circle::new(Point::new(50.0, 0.0), 5.5));
/// let intervals = presence_intervals(
///     &path, &region, TimePoint::new(0), TimePoint::new(100), Duration::new(1),
/// );
/// assert_eq!(intervals.len(), 1);
/// assert_eq!(intervals[0].start(), TimePoint::new(45));
/// assert_eq!(intervals[0].end(), TimePoint::new(55));
/// ```
#[must_use]
pub fn presence_intervals<T: Trajectory + ?Sized>(
    trajectory: &T,
    region: &Field,
    from: TimePoint,
    to: TimePoint,
    step: Duration,
) -> Vec<TimeInterval> {
    assert!(!step.is_zero(), "sampling step must be positive");
    assert!(from <= to, "from must not exceed to");
    let mut intervals = Vec::new();
    let mut inside_since: Option<TimePoint> = None;
    let mut last_inside = from;
    let mut t = from;
    loop {
        let inside = region.contains(trajectory.position_at(t));
        match (inside, inside_since) {
            (true, None) => {
                inside_since = Some(t);
                last_inside = t;
            }
            (true, Some(_)) => last_inside = t,
            (false, Some(start)) => {
                intervals.push(TimeInterval::spanning(start, last_inside));
                inside_since = None;
            }
            (false, None) => {}
        }
        if t >= to {
            break;
        }
        t = t.checked_add(step).unwrap_or(TimePoint::MAX).min(to);
    }
    if let Some(start) = inside_since {
        intervals.push(TimeInterval::spanning(start, last_inside));
    }
    intervals
}

/// Finds the first time in `[from, to]` at which the scalar field at
/// location `p` reaches `threshold`, scanning every `step` ticks.
///
/// This is the ground-truth occurrence time of threshold-crossing punctual
/// events ("temperature at the machine exceeded 60°").
///
/// # Panics
///
/// Panics if `step` is zero or `from > to`.
#[must_use]
pub fn first_crossing<F: ScalarField + ?Sized>(
    field: &F,
    p: Point,
    threshold: f64,
    from: TimePoint,
    to: TimePoint,
    step: Duration,
) -> Option<TimePoint> {
    assert!(!step.is_zero(), "sampling step must be positive");
    assert!(from <= to, "from must not exceed to");
    let mut t = from;
    loop {
        if field.value_at(p, t) >= threshold {
            return Some(t);
        }
        if t >= to {
            return None;
        }
        t = t.checked_add(step).unwrap_or(TimePoint::MAX).min(to);
    }
}

/// Builds the ground-truth physical event for a presence interval: an
/// interval/point event "object was inside `region` during `interval`".
#[must_use]
pub fn presence_event(id: &str, interval: TimeInterval, region: &Field) -> PhysicalEvent {
    physical_event(
        id,
        TemporalExtent::interval(interval),
        SpatialExtent::field(region.clone()),
        Attributes::new().with("duration", interval.length().as_f64()),
    )
}

/// Builds the ground-truth physical event for a threshold crossing: a
/// punctual/point event at the crossing time and sensor location.
#[must_use]
pub fn crossing_event(id: &str, at: TimePoint, location: Point, value: f64) -> PhysicalEvent {
    physical_event(
        id,
        TemporalExtent::punctual(at),
        SpatialExtent::point(location),
        Attributes::new().with("value", value),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HotSpot, SpreadingFire, StaticPosition, WaypointPath};
    use stem_core::TemporalClass;
    use stem_spatial::Circle;

    #[test]
    fn presence_detects_multiple_visits() {
        // Out-and-back through the region twice.
        let path = WaypointPath::new(
            vec![
                (TimePoint::new(0), Point::new(0.0, 0.0)),
                (TimePoint::new(20), Point::new(20.0, 0.0)),
                (TimePoint::new(40), Point::new(0.0, 0.0)),
                (TimePoint::new(60), Point::new(20.0, 0.0)),
            ],
            false,
        )
        .unwrap();
        let region = Field::circle(Circle::new(Point::new(20.0, 0.0), 3.0));
        let intervals = presence_intervals(
            &path,
            &region,
            TimePoint::new(0),
            TimePoint::new(60),
            Duration::new(1),
        );
        assert_eq!(intervals.len(), 2, "two visits: {intervals:?}");
        assert!(intervals[0].contains(TimePoint::new(20)));
        assert!(
            intervals[1].end() == TimePoint::new(60),
            "still inside at horizon"
        );
    }

    #[test]
    fn presence_of_stationary_object() {
        let inside = StaticPosition(Point::new(1.0, 1.0));
        let region = Field::circle(Circle::new(Point::new(0.0, 0.0), 5.0));
        let ivs = presence_intervals(
            &inside,
            &region,
            TimePoint::new(10),
            TimePoint::new(50),
            Duration::new(5),
        );
        assert_eq!(
            ivs,
            vec![TimeInterval::spanning(
                TimePoint::new(10),
                TimePoint::new(50)
            )]
        );
        let outside = StaticPosition(Point::new(100.0, 0.0));
        assert!(presence_intervals(
            &outside,
            &region,
            TimePoint::new(10),
            TimePoint::new(50),
            Duration::new(5),
        )
        .is_empty());
    }

    #[test]
    fn first_crossing_finds_hotspot_onset() {
        let h = HotSpot {
            center: Point::new(0.0, 0.0),
            peak: 50.0,
            sigma: 2.0,
            ambient: 20.0,
            onset: TimePoint::new(100),
        };
        let t = first_crossing(
            &h,
            Point::new(0.0, 0.0),
            60.0,
            TimePoint::new(0),
            TimePoint::new(200),
            Duration::new(1),
        );
        assert_eq!(t, Some(TimePoint::new(100)));
        // Far away the threshold is never reached.
        let none = first_crossing(
            &h,
            Point::new(50.0, 0.0),
            60.0,
            TimePoint::new(0),
            TimePoint::new(200),
            Duration::new(1),
        );
        assert_eq!(none, None);
    }

    #[test]
    fn first_crossing_tracks_fire_arrival_ordering() {
        let f = SpreadingFire {
            ignition: Point::new(0.0, 0.0),
            ignition_time: TimePoint::new(10),
            spread_speed: 1.0,
            burn_value: 400.0,
            ambient: 20.0,
            edge_width: 0.5,
        };
        let near = first_crossing(
            &f,
            Point::new(5.0, 0.0),
            200.0,
            TimePoint::new(0),
            TimePoint::new(100),
            Duration::new(1),
        )
        .unwrap();
        let far = first_crossing(
            &f,
            Point::new(20.0, 0.0),
            200.0,
            TimePoint::new(0),
            TimePoint::new(100),
            Duration::new(1),
        )
        .unwrap();
        assert!(
            near < far,
            "fire reaches nearer point first ({near} vs {far})"
        );
    }

    #[test]
    fn ground_truth_event_constructors() {
        let iv = TimeInterval::spanning(TimePoint::new(5), TimePoint::new(25));
        let region = Field::circle(Circle::new(Point::new(0.0, 0.0), 2.0));
        let pe = presence_event("nearby", iv, &region);
        assert_eq!(pe.class().temporal, TemporalClass::Interval);
        assert_eq!(pe.attributes().get_f64("duration"), Some(20.0));

        let ce = crossing_event("hot", TimePoint::new(7), Point::new(1.0, 2.0), 61.5);
        assert_eq!(ce.class().temporal, TemporalClass::Punctual);
        assert_eq!(ce.attributes().get_f64("value"), Some(61.5));
    }

    #[test]
    #[should_panic(expected = "sampling step must be positive")]
    fn presence_rejects_zero_step() {
        let path = StaticPosition(Point::new(0.0, 0.0));
        let region = Field::circle(Circle::new(Point::new(0.0, 0.0), 1.0));
        let _ = presence_intervals(
            &path,
            &region,
            TimePoint::new(0),
            TimePoint::new(10),
            Duration::ZERO,
        );
    }
}
