//! Moving physical objects (users, vehicles, intruders).
//!
//! The paper's running example tracks "user A nearby window B"; these
//! trajectory models provide the ground-truth motion that range sensors
//! observe.

use rand::Rng;
use serde::{Deserialize, Serialize};
use stem_des::stream;
use stem_spatial::{Point, Rect};
use stem_temporal::{Duration, TimePoint};

/// A deterministic position-over-time model.
pub trait Trajectory {
    /// The object's position at time `t`.
    fn position_at(&self, t: TimePoint) -> Point;
}

/// An object that never moves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StaticPosition(pub Point);

impl Trajectory for StaticPosition {
    fn position_at(&self, _t: TimePoint) -> Point {
        self.0
    }
}

/// Piecewise-linear motion through time-stamped waypoints.
///
/// Before the first waypoint the object sits at it; after the last it
/// stays there (or wraps around if `repeat` is set, using the span between
/// first and last waypoint as the period).
///
/// # Example
///
/// ```
/// use stem_physical::{Trajectory, WaypointPath};
/// use stem_spatial::Point;
/// use stem_temporal::TimePoint;
///
/// let path = WaypointPath::new(vec![
///     (TimePoint::new(0), Point::new(0.0, 0.0)),
///     (TimePoint::new(10), Point::new(10.0, 0.0)),
/// ], false)?;
/// assert!(path.position_at(TimePoint::new(5)).approx_eq(Point::new(5.0, 0.0)));
/// assert!(path.position_at(TimePoint::new(99)).approx_eq(Point::new(10.0, 0.0)));
/// # Ok::<(), stem_physical::InvalidPath>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WaypointPath {
    waypoints: Vec<(TimePoint, Point)>,
    repeat: bool,
}

/// Error returned for waypoint lists that are empty or out of time order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvalidPath {
    /// No waypoints were given.
    Empty,
    /// Waypoint `index` does not strictly follow its predecessor in time.
    OutOfOrder {
        /// The offending waypoint position.
        index: usize,
    },
}

impl std::fmt::Display for InvalidPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvalidPath::Empty => write!(f, "waypoint path needs at least one waypoint"),
            InvalidPath::OutOfOrder { index } => {
                write!(f, "waypoint {index} is not strictly after its predecessor")
            }
        }
    }
}

impl std::error::Error for InvalidPath {}

impl WaypointPath {
    /// Creates a path from time-stamped waypoints.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidPath`] if the list is empty or timestamps are not
    /// strictly increasing.
    pub fn new(waypoints: Vec<(TimePoint, Point)>, repeat: bool) -> Result<Self, InvalidPath> {
        if waypoints.is_empty() {
            return Err(InvalidPath::Empty);
        }
        for (i, w) in waypoints.windows(2).enumerate() {
            if w[1].0 <= w[0].0 {
                return Err(InvalidPath::OutOfOrder { index: i + 1 });
            }
        }
        Ok(WaypointPath { waypoints, repeat })
    }

    /// The waypoints in time order.
    #[must_use]
    pub fn waypoints(&self) -> &[(TimePoint, Point)] {
        &self.waypoints
    }
}

impl Trajectory for WaypointPath {
    fn position_at(&self, t: TimePoint) -> Point {
        let first = self.waypoints[0];
        let last = *self.waypoints.last().expect("non-empty");
        let mut query = t;
        if self.repeat && self.waypoints.len() > 1 && t > last.0 {
            let period = last.0.ticks() - first.0.ticks();
            let offset = (t.ticks() - first.0.ticks()) % period;
            query = TimePoint::new(first.0.ticks() + offset);
        }
        if query <= first.0 {
            return first.1;
        }
        if query >= last.0 {
            return last.1;
        }
        // Find the bracketing segment.
        let idx = self.waypoints.partition_point(|&(wt, _)| wt <= query);
        let (t0, p0) = self.waypoints[idx - 1];
        let (t1, p1) = self.waypoints[idx];
        let frac = (query.ticks() - t0.ticks()) as f64 / (t1.ticks() - t0.ticks()) as f64;
        p0.lerp(p1, frac)
    }
}

/// A seeded random walk inside a bounding rectangle.
///
/// Positions are pre-generated at a fixed step interval up to a horizon
/// and linearly interpolated between steps, so the walk is a pure function
/// of `(seed, parameters)` — repeatable across runs and queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomWalk {
    step_interval: Duration,
    positions: Vec<Point>,
}

impl RandomWalk {
    /// Generates a walk of `steps` steps of at most `max_step` metres each,
    /// starting at `start`, reflecting off the walls of `bounds`.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero, `step_interval` is zero, or `start` lies
    /// outside `bounds`.
    #[must_use]
    pub fn generate(
        seed: u64,
        key: u64,
        start: Point,
        bounds: Rect,
        max_step: f64,
        step_interval: Duration,
        steps: usize,
    ) -> Self {
        assert!(steps > 0, "walk needs at least one step");
        assert!(!step_interval.is_zero(), "step interval must be positive");
        assert!(bounds.contains(start), "start must lie within bounds");
        let mut rng = stream(seed, key);
        let mut positions = Vec::with_capacity(steps + 1);
        positions.push(start);
        let mut current = start;
        for _ in 0..steps {
            let dx = rng.gen_range(-max_step..=max_step);
            let dy = rng.gen_range(-max_step..=max_step);
            let mut next = Point::new(current.x + dx, current.y + dy);
            // Reflect off the walls.
            if next.x < bounds.min().x {
                next.x = 2.0 * bounds.min().x - next.x;
            }
            if next.x > bounds.max().x {
                next.x = 2.0 * bounds.max().x - next.x;
            }
            if next.y < bounds.min().y {
                next.y = 2.0 * bounds.min().y - next.y;
            }
            if next.y > bounds.max().y {
                next.y = 2.0 * bounds.max().y - next.y;
            }
            // Clamp in the pathological case of a reflection overshooting.
            next.x = next.x.clamp(bounds.min().x, bounds.max().x);
            next.y = next.y.clamp(bounds.min().y, bounds.max().y);
            positions.push(next);
            current = next;
        }
        RandomWalk {
            step_interval,
            positions,
        }
    }

    /// The pre-generated step positions.
    #[must_use]
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }
}

impl Trajectory for RandomWalk {
    fn position_at(&self, t: TimePoint) -> Point {
        let step_ticks = self.step_interval.ticks();
        let idx = (t.ticks() / step_ticks) as usize;
        if idx + 1 >= self.positions.len() {
            return *self.positions.last().expect("non-empty");
        }
        let frac = (t.ticks() % step_ticks) as f64 / step_ticks as f64;
        self.positions[idx].lerp(self.positions[idx + 1], frac)
    }
}

/// A serde-friendly sum type over the built-in trajectories.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MotionModel {
    /// Stationary object.
    Static(StaticPosition),
    /// Waypoint-interpolated motion.
    Waypoints(WaypointPath),
    /// Seeded random walk.
    Walk(RandomWalk),
}

impl Trajectory for MotionModel {
    fn position_at(&self, t: TimePoint) -> Point {
        match self {
            MotionModel::Static(m) => m.position_at(t),
            MotionModel::Waypoints(m) => m.position_at(t),
            MotionModel::Walk(m) => m.position_at(t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn bounds() -> Rect {
        Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
    }

    #[test]
    fn waypoint_validation() {
        assert_eq!(
            WaypointPath::new(vec![], false).unwrap_err(),
            InvalidPath::Empty
        );
        let err = WaypointPath::new(
            vec![
                (TimePoint::new(10), Point::new(0.0, 0.0)),
                (TimePoint::new(10), Point::new(1.0, 0.0)),
            ],
            false,
        )
        .unwrap_err();
        assert_eq!(err, InvalidPath::OutOfOrder { index: 1 });
    }

    #[test]
    fn waypoint_interpolation_and_clamping() {
        let path = WaypointPath::new(
            vec![
                (TimePoint::new(10), Point::new(0.0, 0.0)),
                (TimePoint::new(20), Point::new(10.0, 0.0)),
                (TimePoint::new(30), Point::new(10.0, 10.0)),
            ],
            false,
        )
        .unwrap();
        assert!(path
            .position_at(TimePoint::new(0))
            .approx_eq(Point::new(0.0, 0.0)));
        assert!(path
            .position_at(TimePoint::new(15))
            .approx_eq(Point::new(5.0, 0.0)));
        assert!(path
            .position_at(TimePoint::new(25))
            .approx_eq(Point::new(10.0, 5.0)));
        assert!(path
            .position_at(TimePoint::new(95))
            .approx_eq(Point::new(10.0, 10.0)));
    }

    #[test]
    fn repeating_path_wraps_around() {
        let path = WaypointPath::new(
            vec![
                (TimePoint::new(0), Point::new(0.0, 0.0)),
                (TimePoint::new(10), Point::new(10.0, 0.0)),
            ],
            true,
        )
        .unwrap();
        // t=15 wraps to t=5.
        assert!(path
            .position_at(TimePoint::new(15))
            .approx_eq(Point::new(5.0, 0.0)));
        // t=25 wraps to t=5 as well (period 10).
        assert!(path
            .position_at(TimePoint::new(25))
            .approx_eq(Point::new(5.0, 0.0)));
    }

    #[test]
    fn random_walk_reproducible_and_bounded() {
        let mk = || {
            RandomWalk::generate(
                7,
                1,
                Point::new(50.0, 50.0),
                bounds(),
                5.0,
                Duration::new(10),
                100,
            )
        };
        let a = mk();
        let b = mk();
        assert_eq!(a, b, "same seed, same walk");
        for p in a.positions() {
            assert!(bounds().contains(*p), "walk escaped bounds at {p}");
        }
        let other = RandomWalk::generate(
            8,
            1,
            Point::new(50.0, 50.0),
            bounds(),
            5.0,
            Duration::new(10),
            100,
        );
        assert_ne!(a, other, "different seed, different walk");
    }

    #[test]
    fn random_walk_interpolates_between_steps() {
        let walk = RandomWalk::generate(
            3,
            0,
            Point::new(50.0, 50.0),
            bounds(),
            4.0,
            Duration::new(10),
            10,
        );
        let p0 = walk.positions()[0];
        let p1 = walk.positions()[1];
        let mid = walk.position_at(TimePoint::new(5));
        assert!(mid.approx_eq(p0.midpoint(p1)));
        // Beyond the horizon: stays at the last position.
        let last = *walk.positions().last().unwrap();
        assert!(walk.position_at(TimePoint::new(10_000)).approx_eq(last));
    }

    #[test]
    #[should_panic(expected = "start must lie within bounds")]
    fn random_walk_rejects_outside_start() {
        let _ = RandomWalk::generate(
            1,
            0,
            Point::new(-5.0, 0.0),
            bounds(),
            1.0,
            Duration::new(1),
            1,
        );
    }

    proptest! {
        /// Motion between consecutive queries is bounded by walk speed
        /// (continuity: no teleporting).
        #[test]
        fn walk_is_continuous(seed in 0u64..100, t in 0u64..900) {
            let walk = RandomWalk::generate(
                seed, 0, Point::new(50.0, 50.0), bounds(), 5.0, Duration::new(10), 100,
            );
            let a = walk.position_at(TimePoint::new(t));
            let b = walk.position_at(TimePoint::new(t + 1));
            // Max step is 5√2 m per 10 ticks plus reflection ≤ doubles it.
            prop_assert!(a.distance(b) <= 2.0);
        }

        /// Waypoint positions at waypoint times hit the waypoints exactly.
        #[test]
        fn waypoints_are_hit(offsets in proptest::collection::vec(1u64..50, 1..8)) {
            let mut t = 0u64;
            let mut pts = vec![(TimePoint::new(0), Point::new(0.0, 0.0))];
            for (i, dt) in offsets.iter().enumerate() {
                t += dt;
                pts.push((TimePoint::new(t), Point::new(i as f64, (i * 2) as f64)));
            }
            let path = WaypointPath::new(pts.clone(), false).unwrap();
            for (wt, wp) in pts {
                prop_assert!(path.position_at(wt).approx_eq(wp));
            }
        }
    }
}
