//! Scalar phenomenon fields: what sensors sample.
//!
//! "A sensor is a device that measures a physical phenomenon, e.g., room
//! temperature" (Sec. 3). These models give every point of the plane a
//! value at every tick, so simulated sensors can sample them and
//! experiments can score event estimates against exact ground truth.

use serde::{Deserialize, Serialize};
use stem_spatial::{Circle, Field, Point};
use stem_temporal::TimePoint;

/// A deterministic scalar field over space and time.
pub trait ScalarField {
    /// The field value at location `p` and time `t`.
    fn value_at(&self, p: Point, t: TimePoint) -> f64;
}

/// A spatially and temporally constant field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UniformField {
    /// The constant value.
    pub value: f64,
}

impl ScalarField for UniformField {
    fn value_at(&self, _p: Point, _t: TimePoint) -> f64 {
        self.value
    }
}

/// A static linear gradient: `base + gx·x + gy·y`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GradientField {
    /// Value at the origin.
    pub base: f64,
    /// Increase per metre along x.
    pub gx: f64,
    /// Increase per metre along y.
    pub gy: f64,
}

impl ScalarField for GradientField {
    fn value_at(&self, p: Point, _t: TimePoint) -> f64 {
        self.base + self.gx * p.x + self.gy * p.y
    }
}

/// A Gaussian hot spot that switches on at `onset` and (optionally) decays.
///
/// Value: `ambient + peak · exp(-d²/2σ²)` for `t ≥ onset`, `ambient`
/// before. Models a localized anomaly (machine overheating, chemical
/// leak) for punctual/point event scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HotSpot {
    /// Centre of the anomaly.
    pub center: Point,
    /// Peak excess over ambient at the centre.
    pub peak: f64,
    /// Gaussian radius σ in metres.
    pub sigma: f64,
    /// Background value.
    pub ambient: f64,
    /// When the anomaly appears.
    pub onset: TimePoint,
}

impl ScalarField for HotSpot {
    fn value_at(&self, p: Point, t: TimePoint) -> f64 {
        if t < self.onset {
            return self.ambient;
        }
        let d2 = self.center.distance_squared(p);
        self.ambient + self.peak * (-d2 / (2.0 * self.sigma * self.sigma)).exp()
    }
}

/// A radially spreading fire front: the canonical *field event* source
/// (Sec. 4.2 names "a forest fire" as the field-event example).
///
/// The burning disc grows from the ignition point at `spread_speed`
/// metres/tick; temperature falls off smoothly across an `edge_width` ring
/// from `burn_value` inside to `ambient` outside.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpreadingFire {
    /// Ignition location.
    pub ignition: Point,
    /// Ignition time.
    pub ignition_time: TimePoint,
    /// Front speed in metres per tick.
    pub spread_speed: f64,
    /// Temperature well inside the burning region.
    pub burn_value: f64,
    /// Background temperature.
    pub ambient: f64,
    /// Width of the smooth front edge, metres.
    pub edge_width: f64,
}

impl SpreadingFire {
    /// The front radius at time `t` (zero before ignition).
    #[must_use]
    pub fn front_radius(&self, t: TimePoint) -> f64 {
        match t.duration_since(self.ignition_time) {
            Some(elapsed) => self.spread_speed * elapsed.as_f64(),
            None => 0.0,
        }
    }

    /// The ground-truth burning region at time `t`, or `None` before
    /// ignition. This is the exact field extent the layered observers try
    /// to estimate (EXP-T1, EXP-F2).
    #[must_use]
    pub fn burning_region(&self, t: TimePoint) -> Option<Field> {
        if t < self.ignition_time {
            return None;
        }
        let r = self.front_radius(t);
        if r <= 0.0 {
            return None;
        }
        Some(Field::circle(Circle::new(self.ignition, r)))
    }
}

impl ScalarField for SpreadingFire {
    fn value_at(&self, p: Point, t: TimePoint) -> f64 {
        if t < self.ignition_time {
            return self.ambient;
        }
        let r = self.front_radius(t);
        let d = self.ignition.distance(p);
        if self.edge_width <= 0.0 {
            return if d <= r {
                self.burn_value
            } else {
                self.ambient
            };
        }
        // Smooth step from burn_value (d << r) to ambient (d >> r).
        let x = (d - r) / self.edge_width;
        let s = 1.0 / (1.0 + x.exp()); // 1 inside, 0 outside
        self.ambient + (self.burn_value - self.ambient) * s
    }
}

/// Combines component fields by taking the pointwise maximum over a shared
/// ambient baseline — hot spots and fires superpose naturally this way.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaxField<F> {
    /// The component fields.
    pub components: Vec<F>,
    /// The value when no component dominates (empty set baseline).
    pub floor: f64,
}

impl<F: ScalarField> ScalarField for MaxField<F> {
    fn value_at(&self, p: Point, t: TimePoint) -> f64 {
        self.components
            .iter()
            .map(|f| f.value_at(p, t))
            .fold(self.floor, f64::max)
    }
}

/// A serde-friendly sum type over the built-in field models, so scenario
/// configs can describe the physical world declaratively.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorldField {
    /// Constant everywhere.
    Uniform(UniformField),
    /// Static linear gradient.
    Gradient(GradientField),
    /// Gaussian anomaly with onset.
    HotSpot(HotSpot),
    /// Radially spreading fire.
    Fire(SpreadingFire),
}

impl ScalarField for WorldField {
    fn value_at(&self, p: Point, t: TimePoint) -> f64 {
        match self {
            WorldField::Uniform(f) => f.value_at(p, t),
            WorldField::Gradient(f) => f.value_at(p, t),
            WorldField::HotSpot(f) => f.value_at(p, t),
            WorldField::Fire(f) => f.value_at(p, t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uniform_and_gradient() {
        let u = UniformField { value: 20.0 };
        assert_eq!(u.value_at(Point::new(5.0, 5.0), TimePoint::new(9)), 20.0);
        let g = GradientField {
            base: 10.0,
            gx: 1.0,
            gy: -2.0,
        };
        assert_eq!(g.value_at(Point::new(2.0, 1.0), TimePoint::EPOCH), 10.0);
    }

    #[test]
    fn hotspot_onset_and_decay_with_distance() {
        let h = HotSpot {
            center: Point::new(0.0, 0.0),
            peak: 50.0,
            sigma: 2.0,
            ambient: 20.0,
            onset: TimePoint::new(100),
        };
        assert_eq!(h.value_at(Point::new(0.0, 0.0), TimePoint::new(99)), 20.0);
        assert_eq!(h.value_at(Point::new(0.0, 0.0), TimePoint::new(100)), 70.0);
        let near = h.value_at(Point::new(1.0, 0.0), TimePoint::new(100));
        let far = h.value_at(Point::new(5.0, 0.0), TimePoint::new(100));
        assert!(near > far && far > 20.0);
    }

    #[test]
    fn fire_front_grows_linearly() {
        let f = SpreadingFire {
            ignition: Point::new(0.0, 0.0),
            ignition_time: TimePoint::new(10),
            spread_speed: 0.5,
            burn_value: 400.0,
            ambient: 20.0,
            edge_width: 1.0,
        };
        assert_eq!(f.front_radius(TimePoint::new(5)), 0.0);
        assert_eq!(f.front_radius(TimePoint::new(30)), 10.0);
        assert!(f.burning_region(TimePoint::new(5)).is_none());
        let region = f.burning_region(TimePoint::new(30)).unwrap();
        assert!(region.contains(Point::new(3.0, 0.0)));
        assert!(!region.contains(Point::new(30.0, 0.0)));
    }

    #[test]
    fn fire_temperature_profile() {
        let f = SpreadingFire {
            ignition: Point::new(0.0, 0.0),
            ignition_time: TimePoint::EPOCH,
            spread_speed: 1.0,
            burn_value: 400.0,
            ambient: 20.0,
            edge_width: 2.0,
        };
        let t = TimePoint::new(20); // radius 20
        let inside = f.value_at(Point::new(1.0, 0.0), t);
        let at_front = f.value_at(Point::new(20.0, 0.0), t);
        let outside = f.value_at(Point::new(50.0, 0.0), t);
        assert!(inside > 395.0, "deep inside ≈ burn value, got {inside}");
        assert!(
            (at_front - 210.0).abs() < 1.0,
            "front is the midpoint, got {at_front}"
        );
        assert!(outside < 21.0, "far outside ≈ ambient, got {outside}");
    }

    #[test]
    fn sharp_edge_fire_is_a_step() {
        let f = SpreadingFire {
            ignition: Point::new(0.0, 0.0),
            ignition_time: TimePoint::EPOCH,
            spread_speed: 1.0,
            burn_value: 400.0,
            ambient: 20.0,
            edge_width: 0.0,
        };
        let t = TimePoint::new(10);
        assert_eq!(f.value_at(Point::new(9.9, 0.0), t), 400.0);
        assert_eq!(f.value_at(Point::new(10.1, 0.0), t), 20.0);
    }

    #[test]
    fn max_field_takes_hottest_component() {
        let field = MaxField {
            components: vec![
                WorldField::Uniform(UniformField { value: 20.0 }),
                WorldField::HotSpot(HotSpot {
                    center: Point::new(10.0, 0.0),
                    peak: 30.0,
                    sigma: 1.0,
                    ambient: 20.0,
                    onset: TimePoint::EPOCH,
                }),
            ],
            floor: 0.0,
        };
        assert!(field.value_at(Point::new(10.0, 0.0), TimePoint::new(1)) > 49.0);
        assert_eq!(
            field.value_at(Point::new(-50.0, 0.0), TimePoint::new(1)),
            20.0
        );
    }

    proptest! {
        /// Fire temperature decreases monotonically with distance from
        /// ignition at any fixed time.
        #[test]
        fn fire_monotone_in_distance(d1 in 0.0f64..50.0, d2 in 0.0f64..50.0, t in 0u64..100) {
            let f = SpreadingFire {
                ignition: Point::new(0.0, 0.0),
                ignition_time: TimePoint::EPOCH,
                spread_speed: 0.5,
                burn_value: 400.0,
                ambient: 20.0,
                edge_width: 1.5,
            };
            let (near, far) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
            let v_near = f.value_at(Point::new(near, 0.0), TimePoint::new(t));
            let v_far = f.value_at(Point::new(far, 0.0), TimePoint::new(t));
            prop_assert!(v_near >= v_far - 1e-9);
        }

        /// Hotspot value is always within [ambient, ambient + peak].
        #[test]
        fn hotspot_bounded(x in -20.0f64..20.0, y in -20.0f64..20.0, t in 0u64..200) {
            let h = HotSpot {
                center: Point::new(0.0, 0.0),
                peak: 30.0,
                sigma: 2.0,
                ambient: 20.0,
                onset: TimePoint::new(50),
            };
            let v = h.value_at(Point::new(x, y), TimePoint::new(t));
            prop_assert!((20.0 - 1e-9..=50.0 + 1e-9).contains(&v));
        }
    }
}
