//! # stem-physical — physical-world models
//!
//! The paper's Fig. 1 begins with "the changing physical world"; this
//! crate simulates it. Scalar phenomenon fields ([`ScalarField`]) give
//! sensors something to sample, trajectories ([`Trajectory`]) move users
//! and intruders around, and the ground-truth extractors turn both into
//! the paper's *physical events* (Eq. 5.1) so that every experiment can
//! score detections against exact truth — the substitution for real
//! deployments documented in DESIGN.md.
//!
//! # Example
//!
//! ```
//! use stem_physical::{ScalarField, SpreadingFire};
//! use stem_spatial::Point;
//! use stem_temporal::TimePoint;
//!
//! let fire = SpreadingFire {
//!     ignition: Point::new(0.0, 0.0),
//!     ignition_time: TimePoint::new(100),
//!     spread_speed: 0.5,
//!     burn_value: 400.0,
//!     ambient: 20.0,
//!     edge_width: 1.0,
//! };
//! assert_eq!(fire.value_at(Point::new(0.0, 0.0), TimePoint::new(0)), 20.0);
//! assert!(fire.value_at(Point::new(1.0, 0.0), TimePoint::new(200)) > 350.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mobility;
mod scalar;
mod truth;

pub use mobility::{
    InvalidPath, MotionModel, RandomWalk, StaticPosition, Trajectory, WaypointPath,
};
pub use scalar::{
    GradientField, HotSpot, MaxField, ScalarField, SpreadingFire, UniformField, WorldField,
};
pub use truth::{crossing_event, first_crossing, presence_event, presence_intervals};
