//! Watch rules: what to measure, the threshold, and how long it must
//! hold.

use stem_obs::Stage;

/// How serious a firing rule is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Worth a line in a log.
    Info,
    /// Degraded but functioning.
    Warning,
    /// Operator attention required.
    Critical,
}

impl Severity {
    /// The stable name written to the export.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }

    /// Parses an exported severity name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "info" => Some(Severity::Info),
            "warning" => Some(Severity::Warning),
            "critical" => Some(Severity::Critical),
            _ => None,
        }
    }
}

/// Whether a rule evaluates one detector per shard or one for the
/// whole engine (derived from the metric, surfaced for display).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// One detector per shard; alerts name the shard.
    PerShard,
    /// One engine-wide detector.
    Engine,
}

/// What a watch rule measures, read off the meta event stream each
/// telemetry sample (names follow the `meta.` ids of
/// [`crate::meta::derive`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// `meta.shard.queue_depth` — a shard's channel backlog.
    ShardQueueDepth,
    /// `meta.shard.<name>` — a per-shard gauge (e.g. `reorder_depth`).
    ShardGauge(String),
    /// `meta.gauge.<name>` — an engine-wide merged gauge.
    Gauge(String),
    /// `meta.counter.<name>` — an engine-wide merged counter.
    Counter(String),
    /// `meta.stage.<stage>` — a pipeline stage's latency p99
    /// (nanoseconds in threaded runs, virtual ticks in deterministic).
    StageP99(Stage),
    /// `meta.hist.<name>` — a named histogram's p99.
    HistP99(String),
    /// `meta.gauge.<a> − meta.gauge.<b>` (saturating): lag between two
    /// cumulative gauges, e.g. WAL records appended minus fsyncs.
    GaugeDelta(String, String),
    /// True while `meta.ticks` (the stream-clock high water) fails to
    /// advance between samples: a stalled watermark. The threshold is
    /// ignored; only the sustain window matters.
    WatermarkStalled,
}

impl Metric {
    /// The rule scope this metric implies.
    #[must_use]
    pub fn scope(&self) -> Scope {
        match self {
            Metric::ShardQueueDepth | Metric::ShardGauge(_) => Scope::PerShard,
            _ => Scope::Engine,
        }
    }

    /// The meta event id (or id pair) this metric reads.
    #[must_use]
    pub fn meta_id(&self) -> String {
        match self {
            Metric::ShardQueueDepth => "meta.shard.queue_depth".to_owned(),
            Metric::ShardGauge(name) => format!("meta.shard.{name}"),
            Metric::Gauge(name) => format!("meta.gauge.{name}"),
            Metric::Counter(name) => format!("meta.counter.{name}"),
            Metric::StageP99(stage) => format!("meta.stage.{}", stage.name()),
            Metric::HistP99(name) => format!("meta.hist.{name}"),
            Metric::GaugeDelta(a, b) => format!("meta.gauge.{a}-meta.gauge.{b}"),
            Metric::WatermarkStalled => "meta.ticks".to_owned(),
        }
    }
}

/// One watchdog rule: a named metric, a threshold, and a sustain
/// window in telemetry samples.
///
/// ```
/// use stem_watch::{Metric, Severity, WatchSpec};
///
/// let spec = WatchSpec::new("reorder-pressure", Metric::ShardGauge("reorder_depth".into()))
///     .at_least(10_000)
///     .sustained_for(4)
///     .severity(Severity::Warning);
/// assert_eq!(spec.name, "reorder-pressure");
/// assert_eq!(spec.for_snapshots, 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WatchSpec {
    /// Rule name, echoed in every alert it raises.
    pub name: String,
    /// What it measures.
    pub metric: Metric,
    /// Fires when the metric is `>= threshold` (ignored by
    /// [`Metric::WatermarkStalled`]).
    pub threshold: u64,
    /// How many consecutive telemetry samples the condition must hold
    /// (min 1: fire on first breach).
    pub for_snapshots: u64,
    /// Alert severity.
    pub severity: Severity,
}

impl WatchSpec {
    /// A rule firing on the first sample at or over `threshold`
    /// (adjust with [`WatchSpec::at_least`] /
    /// [`WatchSpec::sustained_for`]).
    #[must_use]
    pub fn new(name: impl Into<String>, metric: Metric) -> Self {
        WatchSpec {
            name: name.into(),
            metric,
            threshold: 1,
            for_snapshots: 1,
            severity: Severity::Warning,
        }
    }

    /// Sets the firing threshold.
    #[must_use]
    pub fn at_least(mut self, threshold: u64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Sets the sustain window in telemetry samples (clamped to ≥ 1).
    #[must_use]
    pub fn sustained_for(mut self, snapshots: u64) -> Self {
        self.for_snapshots = snapshots.max(1);
        self
    }

    /// Sets the alert severity.
    #[must_use]
    pub fn severity(mut self, severity: Severity) -> Self {
        self.severity = severity;
        self
    }

    /// The rule's scope (from its metric).
    #[must_use]
    pub fn scope(&self) -> Scope {
        self.metric.scope()
    }
}

/// Default shard-backlog threshold (messages queued).
pub const BACKLOG_THRESHOLD: u64 = 4_096;
/// Default evaluate-stage p99 SLO (100 ms in wall nanoseconds).
pub const EVALUATE_P99_SLO_NS: u64 = 100_000_000;
/// Default WAL fsync-debt threshold (records appended but not yet
/// covered by an fsync).
pub const FSYNC_DEBT_THRESHOLD: u64 = 8_192;
/// Default checkpoint-age threshold (stream-clock ticks since the last
/// completed snapshot).
pub const CHECKPOINT_AGE_TICKS: u64 = 1_000_000;

/// The built-in watcher set, mirroring what an operator greps for
/// first. `checkpointing` gates the snapshot-age rule (meaningless —
/// and forever firing — when checkpoints are off).
#[must_use]
pub fn builtin_watchers(checkpointing: bool) -> Vec<WatchSpec> {
    let mut specs = vec![
        WatchSpec::new("shard-backlog", Metric::ShardQueueDepth)
            .at_least(BACKLOG_THRESHOLD)
            .sustained_for(3)
            .severity(Severity::Warning),
        WatchSpec::new("watermark-stall", Metric::WatermarkStalled)
            .sustained_for(3)
            .severity(Severity::Critical),
        WatchSpec::new("evaluate-slo", Metric::StageP99(Stage::Evaluate))
            .at_least(EVALUATE_P99_SLO_NS)
            .sustained_for(2)
            .severity(Severity::Warning),
        WatchSpec::new(
            "fsync-debt",
            Metric::GaugeDelta("wal_records".into(), "wal_fsyncs".into()),
        )
        .at_least(FSYNC_DEBT_THRESHOLD)
        .sustained_for(2)
        .severity(Severity::Warning),
    ];
    if checkpointing {
        specs.push(
            WatchSpec::new("snapshot-age", Metric::Gauge("checkpoint_age_ticks".into()))
                .at_least(CHECKPOINT_AGE_TICKS)
                .sustained_for(2)
                .severity(Severity::Warning),
        );
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_follows_the_metric() {
        assert_eq!(Metric::ShardQueueDepth.scope(), Scope::PerShard);
        assert_eq!(Metric::ShardGauge("x".into()).scope(), Scope::PerShard);
        assert_eq!(Metric::Gauge("x".into()).scope(), Scope::Engine);
        assert_eq!(Metric::WatermarkStalled.scope(), Scope::Engine);
        assert_eq!(Metric::StageP99(Stage::Evaluate).scope(), Scope::Engine);
    }

    #[test]
    fn builder_clamps_and_defaults() {
        let spec = WatchSpec::new("x", Metric::ShardQueueDepth).sustained_for(0);
        assert_eq!(spec.for_snapshots, 1, "zero-sample sustain clamps to 1");
        assert_eq!(spec.severity, Severity::Warning);
        assert_eq!(spec.threshold, 1);
    }

    #[test]
    fn builtins_cover_the_issue_list_and_gate_snapshot_age() {
        let with = builtin_watchers(true);
        let names: Vec<&str> = with.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "shard-backlog",
                "watermark-stall",
                "evaluate-slo",
                "fsync-debt",
                "snapshot-age"
            ]
        );
        let without = builtin_watchers(false);
        assert!(!without.iter().any(|s| s.name == "snapshot-age"));
    }

    #[test]
    fn severity_names_round_trip() {
        for s in [Severity::Info, Severity::Warning, Severity::Critical] {
            assert_eq!(Severity::from_name(s.name()), Some(s));
        }
        assert_eq!(Severity::from_name("panic"), None);
        assert!(Severity::Info < Severity::Critical);
    }
}
