//! Deriving the meta event stream: one telemetry snapshot in, a batch
//! of spatio-temporal [`EventInstance`]s out.
//!
//! Every metric in an [`ObsSnapshot`] becomes an instance on the
//! reserved `meta.` event-id prefix, observed by
//! [`stem_core::META_OBSERVER`] at [`Layer::Cyber`] (the engine is its
//! own highest-level observer):
//!
//! | id                        | scope     | value                  |
//! |---------------------------|-----------|------------------------|
//! | `meta.shard.queue_depth`  | per shard | channel backlog        |
//! | `meta.shard.<gauge>`      | per shard | that shard's gauge     |
//! | `meta.gauge.<name>`       | engine    | merged gauge level     |
//! | `meta.counter.<name>`     | engine    | merged counter         |
//! | `meta.stage.<stage>`      | engine    | stage latency p99      |
//! | `meta.hist.<name>`        | engine    | named histogram p99    |
//! | `meta.ticks`              | engine    | stream-clock high water|
//!
//! Per-shard instances are located at the owning shard's region (the
//! union of its `ShardMap` cells); engine-wide instances at the world
//! extent. Timestamps ride the stream clock (the snapshot's high-water
//! tick, falling back to the snapshot seq before any ingest), so the
//! stream is identical under wall and virtual clocks.

use stem_core::{Attributes, EventId, EventInstance, Layer, META_OBSERVER};
use stem_obs::ObsSnapshot;
use stem_spatial::{Field, Rect, SpatialExtent};
use stem_temporal::{TemporalExtent, TimePoint};

/// The timestamp a snapshot's meta events carry: the stream-clock
/// high-water tick, or the snapshot sequence before any ingest (both
/// are identical across wall/virtual clock modes).
#[must_use]
pub fn meta_time(snapshot: &ObsSnapshot) -> TimePoint {
    TimePoint::new(snapshot.ticks.unwrap_or(snapshot.seq))
}

/// Builds one meta event instance.
fn instance(
    id: String,
    time: TimePoint,
    region: Rect,
    seq: u64,
    shard: Option<usize>,
    value: u64,
) -> EventInstance {
    let mut attributes = Attributes::new()
        .with("value", value as f64)
        .with("seq", seq as f64);
    if let Some(shard) = shard {
        attributes = attributes.with("shard", shard as f64);
    }
    EventInstance::builder(META_OBSERVER, EventId::new(id), Layer::Cyber)
        .generated(time, region.center())
        .estimated(
            TemporalExtent::punctual(time),
            SpatialExtent::field(Field::rect(region)),
        )
        .attributes(attributes)
        .build()
}

/// Re-materializes a telemetry snapshot as meta event instances.
///
/// `regions[s]` is shard `s`'s owned region; shards beyond the slice
/// (or an empty slice) fall back to the world extent. The ordering is
/// deterministic: per-shard rows in shard order, then engine-wide
/// gauges, counters, stages, hists, and the stream clock, each in the
/// snapshot's own (name-sorted) order.
#[must_use]
pub fn derive(snapshot: &ObsSnapshot, regions: &[Rect], world: Rect) -> Vec<EventInstance> {
    let time = meta_time(snapshot);
    let seq = snapshot.seq;
    let mut out = Vec::new();
    for row in &snapshot.shards {
        let region = regions.get(row.shard).copied().unwrap_or(world);
        out.push(instance(
            "meta.shard.queue_depth".to_owned(),
            time,
            region,
            seq,
            Some(row.shard),
            row.queue_depth,
        ));
        for &(name, value) in &row.gauges {
            out.push(instance(
                format!("meta.shard.{name}"),
                time,
                region,
                seq,
                Some(row.shard),
                value,
            ));
        }
    }
    for &(name, value) in &snapshot.gauges {
        out.push(instance(
            format!("meta.gauge.{name}"),
            time,
            world,
            seq,
            None,
            value,
        ));
    }
    for &(name, value) in &snapshot.counters {
        out.push(instance(
            format!("meta.counter.{name}"),
            time,
            world,
            seq,
            None,
            value,
        ));
    }
    for &(stage, summary) in &snapshot.stages {
        out.push(instance(
            format!("meta.stage.{}", stage.name()),
            time,
            world,
            seq,
            None,
            summary.p99,
        ));
    }
    for &(name, summary) in &snapshot.hists {
        out.push(instance(
            format!("meta.hist.{name}"),
            time,
            world,
            seq,
            None,
            summary.p99,
        ));
    }
    if let Some(ticks) = snapshot.ticks {
        out.push(instance(
            "meta.ticks".to_owned(),
            time,
            world,
            seq,
            None,
            ticks,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stem_core::is_meta_event;
    use stem_obs::{Recorder, ShardRow, Stage};
    use stem_spatial::Point;

    fn world() -> Rect {
        Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
    }

    fn snapshot() -> ObsSnapshot {
        let mut merged = Recorder::new();
        merged.inc("ingested", 10);
        merged.set_gauge("routed", 4);
        merged.record_stage(Stage::Evaluate, 900);
        merged.record("watermark_lag", 3);
        ObsSnapshot::build(
            0,
            7,
            Some(1200),
            &merged,
            vec![ShardRow {
                shard: 0,
                queue_depth: 5,
                gauges: vec![("reorder_depth", 2)],
            }],
        )
    }

    #[test]
    fn every_derived_instance_is_a_valid_meta_event() {
        let events = derive(&snapshot(), &[world()], world());
        assert!(!events.is_empty());
        for e in &events {
            assert!(is_meta_event(e.event()), "{} is meta-prefixed", e.event());
            assert_eq!(e.observer(), META_OBSERVER);
            assert_eq!(e.layer(), Layer::Cyber);
            assert_eq!(e.generation_time(), TimePoint::new(1200));
            assert_eq!(e.attributes().get_f64("seq"), Some(7.0));
        }
    }

    #[test]
    fn shard_metrics_sit_on_the_shard_region_engine_metrics_on_the_world() {
        let region = Rect::new(Point::new(0.0, 0.0), Point::new(50.0, 100.0));
        let events = derive(&snapshot(), &[region], world());
        let depth = events
            .iter()
            .find(|e| e.event().as_str() == "meta.shard.queue_depth")
            .expect("queue depth instance");
        assert_eq!(depth.attributes().get_f64("value"), Some(5.0));
        assert_eq!(depth.attributes().get_f64("shard"), Some(0.0));
        assert!(depth.estimated_location().covers(Point::new(25.0, 50.0)));
        assert!(!depth.estimated_location().covers(Point::new(75.0, 50.0)));
        let routed = events
            .iter()
            .find(|e| e.event().as_str() == "meta.gauge.routed")
            .expect("engine gauge instance");
        assert_eq!(routed.attributes().get_f64("value"), Some(4.0));
        assert!(routed.estimated_location().covers(Point::new(75.0, 50.0)));
        assert!(events
            .iter()
            .any(|e| e.event().as_str() == "meta.stage.evaluate"));
        assert!(events
            .iter()
            .any(|e| e.event().as_str() == "meta.hist.watermark_lag"));
        assert!(events.iter().any(|e| e.event().as_str() == "meta.ticks"));
    }

    #[test]
    fn missing_ticks_fall_back_to_seq_and_omit_the_clock_event() {
        let snap = ObsSnapshot::build(0, 3, None, &Recorder::new(), Vec::new());
        assert_eq!(meta_time(&snap), TimePoint::new(3));
        let events = derive(&snap, &[], world());
        assert!(!events.iter().any(|e| e.event().as_str() == "meta.ticks"));
    }
}
