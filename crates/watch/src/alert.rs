//! Health alerts: the bounded ring, the schema-v3 JSON-lines encoding,
//! and its strict parser.

use crate::spec::Severity;
use std::collections::VecDeque;
use stem_obs::json::{self, Value};

/// The `v` field of every alert line (in lockstep with the other
/// schema-v3 exporters, [`stem_obs::SCHEMA_VERSION`]).
pub const ALERT_SCHEMA_VERSION: u64 = 3;

/// Cap on the constituent snapshot seqs an alert carries: enough to
/// resolve the whole sustain window of any sane rule, bounded so a
/// months-long episode cannot bloat the ring.
pub const MAX_CONSTITUENTS: usize = 32;

/// One fired watch rule, with full provenance: which rule, over which
/// shard, confirmed at which snapshot, built from which snapshot seqs.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthAlert {
    /// The [`crate::WatchSpec`] name that fired.
    pub rule: String,
    /// The rule's severity.
    pub severity: Severity,
    /// The shard the rule held on (`None` for engine-wide rules).
    pub shard: Option<u64>,
    /// The run epoch the alert was raised in.
    pub epoch: u64,
    /// Snapshot seq at which the condition started holding.
    pub began_seq: u64,
    /// Snapshot seq at which the sustain window was reached and the
    /// alert fired.
    pub fired_seq: u64,
    /// The stream-clock high water at fire time, when known.
    pub ticks: Option<u64>,
    /// The metric value at fire time.
    pub value: u64,
    /// The rule's threshold.
    pub threshold: u64,
    /// The constituent snapshot seqs (`began_seq..=fired_seq`, newest
    /// kept when capped at [`MAX_CONSTITUENTS`]) — each resolves to a
    /// real `ObsSnapshot` in the registry ring or export.
    pub constituents: Vec<u64>,
}

impl HealthAlert {
    /// Encodes the alert as one JSON object on one line (no trailing
    /// newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(160);
        out.push_str(&format!(
            "{{\"v\":{ALERT_SCHEMA_VERSION},\"kind\":\"alert\",\"epoch\":{},\"rule\":\"{}\",\"severity\":\"{}\"",
            self.epoch,
            escape(&self.rule),
            self.severity.name()
        ));
        match self.shard {
            Some(shard) => out.push_str(&format!(",\"shard\":{shard}")),
            None => out.push_str(",\"shard\":null"),
        }
        out.push_str(&format!(
            ",\"seq\":{},\"began\":{}",
            self.fired_seq, self.began_seq
        ));
        match self.ticks {
            Some(t) => out.push_str(&format!(",\"ticks\":{t}")),
            None => out.push_str(",\"ticks\":null"),
        }
        out.push_str(&format!(
            ",\"value\":{},\"threshold\":{},\"constituents\":[",
            self.value, self.threshold
        ));
        for (i, c) in self.constituents.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&c.to_string());
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a rule name for embedding in a JSON string literal (rule
/// names are user-chosen, unlike the static telemetry keys).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

const ALLOWED_FIELDS: &[&str] = &[
    "v",
    "kind",
    "epoch",
    "rule",
    "severity",
    "shard",
    "seq",
    "began",
    "ticks",
    "value",
    "threshold",
    "constituents",
];

/// Parses and validates one schema-v3 alert line.
///
/// Strictness mirrors the trace parser
/// ([`stem_obs::parse_trace_line_epoch`]): one complete JSON object,
/// exact version, exact field set, known severity, `began <= seq`, and
/// non-empty strictly-increasing constituents all at or before `seq`.
///
/// # Errors
///
/// Returns a message naming the first violated rule.
pub fn parse_alert_line(line: &str) -> Result<HealthAlert, String> {
    let value = json::parse(line)?;
    let Value::Object(map) = &value else {
        return Err("alert record must be a JSON object".to_string());
    };
    let v = field_u64(&value, "v")?;
    if v != ALERT_SCHEMA_VERSION {
        return Err(format!("unsupported alert schema v{v}"));
    }
    let kind = value
        .get("kind")
        .and_then(Value::as_str)
        .ok_or("missing or non-string \"kind\"")?;
    if kind != "alert" {
        return Err(format!("unknown alert kind {kind:?}"));
    }
    for key in map.keys() {
        if !ALLOWED_FIELDS.contains(&key.as_str()) {
            return Err(format!("unknown field {key:?} in alert record"));
        }
    }
    let severity = value
        .get("severity")
        .and_then(Value::as_str)
        .ok_or("missing or non-string \"severity\"")?;
    let severity =
        Severity::from_name(severity).ok_or_else(|| format!("unknown severity {severity:?}"))?;
    let shard = match value.get("shard") {
        Some(Value::Null) => None,
        Some(v) => Some(v.as_u64().ok_or("non-u64 \"shard\"")?),
        None => return Err("missing \"shard\"".to_string()),
    };
    let ticks = match value.get("ticks") {
        Some(Value::Null) => None,
        Some(v) => Some(v.as_u64().ok_or("non-u64 \"ticks\"")?),
        None => return Err("missing \"ticks\"".to_string()),
    };
    let fired_seq = field_u64(&value, "seq")?;
    let began_seq = field_u64(&value, "began")?;
    if began_seq > fired_seq {
        return Err(format!("began ({began_seq}) after seq ({fired_seq})"));
    }
    let items = value
        .get("constituents")
        .and_then(Value::as_array)
        .ok_or("missing or non-array \"constituents\"")?;
    if items.is_empty() {
        return Err("alert must carry at least one constituent".to_string());
    }
    let mut constituents = Vec::with_capacity(items.len());
    let mut last: Option<u64> = None;
    for (i, item) in items.iter().enumerate() {
        let seq = item
            .as_u64()
            .ok_or_else(|| format!("constituent {i} is not a u64"))?;
        if last.is_some_and(|prev| seq <= prev) {
            return Err("constituent seqs must be strictly increasing".to_string());
        }
        if seq > fired_seq {
            return Err(format!(
                "constituent {seq} after the firing seq {fired_seq}"
            ));
        }
        last = Some(seq);
        constituents.push(seq);
    }
    Ok(HealthAlert {
        rule: value
            .get("rule")
            .and_then(Value::as_str)
            .ok_or("missing or non-string \"rule\"")?
            .to_owned(),
        severity,
        shard,
        epoch: field_u64(&value, "epoch")?,
        began_seq,
        fired_seq,
        ticks,
        value: field_u64(&value, "value")?,
        threshold: field_u64(&value, "threshold")?,
        constituents,
    })
}

/// Parses a whole exported alert stream (one record per line, blank
/// lines ignored).
///
/// # Errors
///
/// Fails on the first invalid line, naming its 1-based line number.
pub fn parse_alert_stream(text: &str) -> Result<Vec<HealthAlert>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_alert_line(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

fn field_u64(value: &Value, key: &str) -> Result<u64, String> {
    value
        .get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-u64 {key:?}"))
}

/// A bounded ring of alerts: pushing past capacity evicts the oldest
/// (the same shape as the engine's flight-recorder ring).
#[derive(Debug)]
pub struct AlertRing {
    alerts: VecDeque<HealthAlert>,
    capacity: usize,
    evicted: u64,
}

impl AlertRing {
    /// An empty ring holding at most `capacity` alerts (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        AlertRing {
            alerts: VecDeque::new(),
            capacity: capacity.max(1),
            evicted: 0,
        }
    }

    /// Appends an alert, evicting the oldest if the ring is full.
    pub fn push(&mut self, alert: HealthAlert) {
        if self.alerts.len() == self.capacity {
            self.alerts.pop_front();
            self.evicted += 1;
        }
        self.alerts.push_back(alert);
    }

    /// The retained alerts, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<HealthAlert> {
        self.alerts.iter().cloned().collect()
    }

    /// Alerts evicted so far.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Number of retained alerts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.alerts.len()
    }

    /// Whether the ring holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.alerts.is_empty()
    }
}

/// The health section of an engine report: the alert ring's contents
/// at shutdown.
#[derive(Debug, Clone, Default)]
pub struct HealthReport {
    /// Every alert retained at shutdown, oldest first.
    pub alerts: Vec<HealthAlert>,
    /// Alerts the ring evicted over the run.
    pub evicted: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alert() -> HealthAlert {
        HealthAlert {
            rule: "shard-backlog".to_owned(),
            severity: Severity::Warning,
            shard: Some(2),
            epoch: 1,
            began_seq: 12,
            fired_seq: 14,
            ticks: Some(9_000),
            value: 5_000,
            threshold: 4_096,
            constituents: vec![12, 13, 14],
        }
    }

    #[test]
    fn alerts_round_trip_through_json() {
        let a = alert();
        let line = a.to_json_line();
        assert_eq!(parse_alert_line(&line).expect("own output parses"), a);
        // Engine-scoped, unknown-clock variant.
        let b = HealthAlert {
            shard: None,
            ticks: None,
            rule: "watermark-stall".to_owned(),
            severity: Severity::Critical,
            ..alert()
        };
        assert_eq!(parse_alert_line(&b.to_json_line()).unwrap(), b);
        let stream = format!("{}\n\n{}\n", a.to_json_line(), b.to_json_line());
        assert_eq!(parse_alert_stream(&stream).unwrap(), vec![a, b]);
    }

    #[test]
    fn rule_names_are_escaped() {
        let tricky = HealthAlert {
            rule: "odd \"rule\"\\name\nwith control".to_owned(),
            ..alert()
        };
        let line = tricky.to_json_line();
        assert_eq!(parse_alert_line(&line).unwrap().rule, tricky.rule);
    }

    #[test]
    fn truncations_never_parse() {
        let line = alert().to_json_line();
        for cut in 1..line.len() {
            assert!(
                parse_alert_line(&line[..cut]).is_err(),
                "accepted truncation at byte {cut}"
            );
        }
    }

    #[test]
    fn strictness_rules_are_enforced() {
        let cases = [
            // Wrong version.
            r#"{"v":2,"kind":"alert","epoch":0,"rule":"r","severity":"info","shard":null,"seq":1,"began":0,"ticks":null,"value":1,"threshold":1,"constituents":[0,1]}"#,
            // Wrong kind.
            r#"{"v":3,"kind":"alarm","epoch":0,"rule":"r","severity":"info","shard":null,"seq":1,"began":0,"ticks":null,"value":1,"threshold":1,"constituents":[0,1]}"#,
            // Unknown field.
            r#"{"v":3,"kind":"alert","epoch":0,"rule":"r","severity":"info","shard":null,"seq":1,"began":0,"ticks":null,"value":1,"threshold":1,"constituents":[0,1],"note":"x"}"#,
            // Unknown severity.
            r#"{"v":3,"kind":"alert","epoch":0,"rule":"r","severity":"meh","shard":null,"seq":1,"began":0,"ticks":null,"value":1,"threshold":1,"constituents":[0,1]}"#,
            // began after seq.
            r#"{"v":3,"kind":"alert","epoch":0,"rule":"r","severity":"info","shard":null,"seq":1,"began":2,"ticks":null,"value":1,"threshold":1,"constituents":[1]}"#,
            // Empty constituents.
            r#"{"v":3,"kind":"alert","epoch":0,"rule":"r","severity":"info","shard":null,"seq":1,"began":0,"ticks":null,"value":1,"threshold":1,"constituents":[]}"#,
            // Non-monotone constituents.
            r#"{"v":3,"kind":"alert","epoch":0,"rule":"r","severity":"info","shard":null,"seq":1,"began":0,"ticks":null,"value":1,"threshold":1,"constituents":[1,1]}"#,
            // Constituent after the firing seq.
            r#"{"v":3,"kind":"alert","epoch":0,"rule":"r","severity":"info","shard":null,"seq":1,"began":0,"ticks":null,"value":1,"threshold":1,"constituents":[0,1,2]}"#,
            // Missing epoch.
            r#"{"v":3,"kind":"alert","rule":"r","severity":"info","shard":null,"seq":1,"began":0,"ticks":null,"value":1,"threshold":1,"constituents":[0,1]}"#,
            // Not an object.
            r#"[1]"#,
        ];
        for bad in cases {
            assert!(parse_alert_line(bad).is_err(), "accepted {bad}");
        }
        let err = parse_alert_stream("not json\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
    }

    #[test]
    fn ring_evicts_oldest_and_counts() {
        let mut ring = AlertRing::new(2);
        assert!(ring.is_empty());
        for fired in 0..4u64 {
            ring.push(HealthAlert {
                fired_seq: fired,
                ..alert()
            });
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.evicted(), 2);
        let kept: Vec<u64> = ring.snapshot().iter().map(|a| a.fired_seq).collect();
        assert_eq!(kept, vec![2, 3], "oldest gave way");
    }
}
