//! # stem-watch — the engine watching itself
//!
//! The paper's thesis applied reflexively: engine health metrics *are*
//! spatio-temporal events. A shard owns a spatial region (its
//! `ShardMap` cells), every telemetry snapshot carries a stream-clock
//! tick, so "shard 2 has been backlogged for 5 samples" is exactly the
//! kind of sustained spatio-temporal condition the engine already
//! detects for its users — and this crate detects it *about* the
//! engine, with the same `stem-cep` machinery, no second engine.
//!
//! The pipeline, one [`Watcher::observe`] call per telemetry sample
//! (so zero cost on the per-event hot path):
//!
//! 1. [`meta::derive`] re-materializes an [`stem_obs::ObsSnapshot`] as
//!    meta [`stem_core::EventInstance`]s on the reserved `meta.` id
//!    prefix ([`stem_core::META_EVENT_PREFIX`]): per-shard gauges
//!    located at the owning shard's region, engine-wide metrics at the
//!    world extent, timestamped on the stream clock.
//! 2. Each [`WatchSpec`] rule reads its [`Metric`] off that stream and
//!    feeds a [`stem_cep::SustainedDetector`] on the snapshot-sequence
//!    time axis — identical under wall and virtual clocks, so
//!    deterministic runs stay bit-identical with watch enabled.
//! 3. A rule that holds for its sustain window emits a [`HealthAlert`]
//!    carrying provenance — the constituent snapshot seqs and the rule
//!    that fired — into a bounded [`AlertRing`] and (optionally) a
//!    schema-v3 JSON-lines export.
//!
//! [`builtin_watchers`] covers the operational basics (sustained shard
//! backlog, watermark stall, stage-latency SLO breach, fsync debt,
//! checkpoint age); [`WatchSpec`] is the builder for custom rules.
//!
//! ```
//! use stem_watch::{Metric, Severity, WatchSpec, Watcher};
//! use stem_spatial::{Point, Rect};
//!
//! let world = Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
//! let spec = WatchSpec::new("ingest-backlog", Metric::ShardQueueDepth)
//!     .at_least(500)
//!     .sustained_for(3)
//!     .severity(Severity::Warning);
//! let watcher = Watcher::new(vec![spec], 64, None, vec![world], world).unwrap();
//! assert_eq!(watcher.alerts().len(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alert;
pub mod meta;
mod spec;
mod watcher;

pub use alert::{
    parse_alert_line, parse_alert_stream, AlertRing, HealthAlert, HealthReport,
    ALERT_SCHEMA_VERSION,
};
pub use spec::{builtin_watchers, Metric, Scope, Severity, WatchSpec};
pub use watcher::{HealthHandle, Watcher};
