//! The embedded watchdog evaluator: sustained detectors over the meta
//! event stream, one `observe` call per telemetry sample.

use crate::alert::{AlertRing, HealthAlert, HealthReport, MAX_CONSTITUENTS};
use crate::meta;
use crate::spec::{Metric, WatchSpec};
use std::collections::{BTreeMap, VecDeque};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};
use stem_cep::{SustainedConfig, SustainedDetector, SustainedEvent};
use stem_obs::ObsSnapshot;
use stem_spatial::Rect;
use stem_temporal::{Duration, TimePoint};

/// The watchdog evaluator. Owns one [`SustainedDetector`] per
/// `(rule, shard)` pair, fed on the snapshot-sequence time axis — a
/// strictly monotone clock that is identical in wall and virtual runs,
/// which is what keeps deterministic executions bit-identical with
/// watch enabled.
///
/// There is intentionally no second engine here: the detectors are the
/// same `stem-cep` machinery the engine evaluates user subscriptions
/// with, applied to the meta stream [`meta::derive`] materializes from
/// each snapshot.
pub struct Watcher {
    specs: Vec<WatchSpec>,
    regions: Vec<Rect>,
    world: Rect,
    epoch: u64,
    detectors: BTreeMap<(usize, Option<usize>), SustainedDetector>,
    /// Recently observed snapshot seqs, newest last — the pool alert
    /// constituents are resolved from, so provenance always names
    /// snapshots that actually passed through `observe`.
    observed: VecDeque<u64>,
    last_seq: Option<u64>,
    prev_ticks: Option<u64>,
    ring: AlertRing,
    exporter: Option<BufWriter<File>>,
}

impl Watcher {
    /// A watcher over the given rules. `regions[s]` is shard `s`'s
    /// owned region (engine-wide meta events sit on `world`); the ring
    /// holds the newest `ring_capacity` alerts; `export`, when given,
    /// receives one schema-v3 JSON line per alert (truncated if it
    /// exists).
    ///
    /// # Errors
    ///
    /// Fails when the export file cannot be created.
    pub fn new(
        specs: Vec<WatchSpec>,
        ring_capacity: usize,
        export: Option<&Path>,
        regions: Vec<Rect>,
        world: Rect,
    ) -> io::Result<Self> {
        let exporter = match export {
            Some(path) => {
                if let Some(parent) = path.parent() {
                    if !parent.as_os_str().is_empty() {
                        std::fs::create_dir_all(parent)?;
                    }
                }
                Some(BufWriter::new(File::create(path)?))
            }
            None => None,
        };
        Ok(Watcher {
            specs,
            regions,
            world,
            epoch: 0,
            detectors: BTreeMap::new(),
            observed: VecDeque::new(),
            last_seq: None,
            prev_ticks: None,
            ring: AlertRing::new(ring_capacity),
            exporter,
        })
    }

    /// Sets the run epoch stamped into subsequent alerts (recovery
    /// bumps it in lockstep with the telemetry registry's).
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// The configured rules.
    #[must_use]
    pub fn specs(&self) -> &[WatchSpec] {
        &self.specs
    }

    /// Feeds one telemetry snapshot through every rule, returning the
    /// alerts that fired on it (also retained in the ring and written
    /// to the export). Out-of-order or repeated snapshots are ignored:
    /// the detectors run on a strictly monotone seq axis.
    ///
    /// # Panics
    ///
    /// Panics if the alert export cannot be written — watch export was
    /// explicitly configured, the same contract as telemetry export.
    pub fn observe(&mut self, snapshot: &ObsSnapshot) -> Vec<HealthAlert> {
        if self.last_seq.is_some_and(|last| snapshot.seq <= last) {
            return Vec::new();
        }
        self.last_seq = Some(snapshot.seq);
        if self.observed.len() == MAX_CONSTITUENTS {
            self.observed.pop_front();
        }
        self.observed.push_back(snapshot.seq);

        let events = meta::derive(snapshot, &self.regions, self.world);
        let mut by_id: BTreeMap<&str, Vec<(Option<usize>, u64)>> = BTreeMap::new();
        for e in &events {
            let shard = e.attributes().get_f64("shard").map(|s| s as usize);
            let value = e.attributes().get_f64("value").unwrap_or(0.0) as u64;
            by_id
                .entry(e.event().as_str())
                .or_default()
                .push((shard, value));
        }

        let t = TimePoint::new(snapshot.seq);
        let mut fired = Vec::new();
        for idx in 0..self.specs.len() {
            let spec = self.specs[idx].clone();
            match &spec.metric {
                Metric::WatermarkStalled => {
                    let Some(ticks) = snapshot.ticks else {
                        continue; // no stream clock yet: nothing to stall
                    };
                    let active = self.prev_ticks == Some(ticks);
                    let event = self.detector(idx, None, &spec).update(t, active);
                    self.raise(&mut fired, &spec, None, ticks, event, snapshot);
                }
                Metric::GaugeDelta(a, b) => {
                    let read = |name: &String| {
                        by_id
                            .get(format!("meta.gauge.{name}").as_str())
                            .and_then(|v| v.first())
                            .map(|&(_, value)| value)
                    };
                    let Some(lead) = read(a) else { continue };
                    let debt = lead.saturating_sub(read(b).unwrap_or(0));
                    let event = self.detector(idx, None, &spec).update_value(t, debt as f64);
                    self.raise(&mut fired, &spec, None, debt, event, snapshot);
                }
                metric => {
                    let Some(samples) = by_id.get(metric.meta_id().as_str()) else {
                        continue; // metric absent this sample
                    };
                    for &(shard, value) in samples.clone().iter() {
                        let event = self
                            .detector(idx, shard, &spec)
                            .update_value(t, value as f64);
                        self.raise(&mut fired, &spec, shard, value, event, snapshot);
                    }
                }
            }
        }
        self.prev_ticks = snapshot.ticks;
        fired
    }

    /// The detector for one `(rule, shard)` key, created on first use.
    fn detector(
        &mut self,
        idx: usize,
        shard: Option<usize>,
        spec: &WatchSpec,
    ) -> &mut SustainedDetector {
        self.detectors.entry((idx, shard)).or_insert_with(|| {
            // The condition holding at seqs s..s+d-1 spans d samples but
            // an elapsed duration of d-1 on the seq axis.
            let sustain = Duration::new(spec.for_snapshots.saturating_sub(1));
            let config = match spec.metric {
                Metric::WatermarkStalled => SustainedConfig::boolean(sustain),
                _ => SustainedConfig {
                    min_duration: sustain,
                    enter_threshold: spec.threshold as f64,
                    exit_threshold: spec.threshold as f64,
                },
            };
            SustainedDetector::new(config)
        })
    }

    /// Turns a detector `Began` into a [`HealthAlert`], pushes it into
    /// the ring and export, and collects it for the caller. `Ended`
    /// events close the episode silently (the detector re-arms).
    fn raise(
        &mut self,
        fired: &mut Vec<HealthAlert>,
        spec: &WatchSpec,
        shard: Option<usize>,
        value: u64,
        event: Option<SustainedEvent>,
        snapshot: &ObsSnapshot,
    ) {
        let Some(SustainedEvent::Began { since, .. }) = event else {
            return;
        };
        let began_seq = since.ticks();
        let alert = HealthAlert {
            rule: spec.name.clone(),
            severity: spec.severity,
            shard: shard.map(|s| s as u64),
            epoch: self.epoch,
            began_seq,
            fired_seq: snapshot.seq,
            ticks: snapshot.ticks,
            value,
            threshold: spec.threshold,
            constituents: self
                .observed
                .iter()
                .copied()
                .filter(|&s| s >= began_seq && s <= snapshot.seq)
                .collect(),
        };
        if let Some(writer) = self.exporter.as_mut() {
            writeln!(writer, "{}", alert.to_json_line())
                .and_then(|()| writer.flush())
                .unwrap_or_else(|e| panic!("alert export write failed: {e}"));
        }
        self.ring.push(alert.clone());
        fired.push(alert);
    }

    /// The ring's alerts, oldest first.
    #[must_use]
    pub fn alerts(&self) -> Vec<HealthAlert> {
        self.ring.snapshot()
    }

    /// Alerts evicted from the ring so far.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.ring.evicted()
    }

    /// Folds the watcher into its end-of-run report.
    #[must_use]
    pub fn report(&self) -> HealthReport {
        HealthReport {
            alerts: self.ring.snapshot(),
            evicted: self.ring.evicted(),
        }
    }
}

impl std::fmt::Debug for Watcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Watcher")
            .field("specs", &self.specs.len())
            .field("alerts", &self.ring.len())
            .finish_non_exhaustive()
    }
}

/// A live, cloneable view over a shared [`Watcher`], handed out by
/// `Engine::health` (mirroring `Engine::obs` / `Engine::trace`).
#[derive(Debug, Clone)]
pub struct HealthHandle {
    watcher: Arc<Mutex<Watcher>>,
}

impl HealthHandle {
    /// Wraps a shared watcher.
    #[must_use]
    pub fn new(watcher: Arc<Mutex<Watcher>>) -> Self {
        HealthHandle { watcher }
    }

    /// A point-in-time copy of the alert ring, oldest first.
    #[must_use]
    pub fn alerts(&self) -> Vec<HealthAlert> {
        self.watcher.lock().expect("watcher poisoned").alerts()
    }

    /// Alerts evicted from the ring so far.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.watcher.lock().expect("watcher poisoned").evicted()
    }

    /// The end-of-run health report as it stands now.
    #[must_use]
    pub fn report(&self) -> HealthReport {
        self.watcher.lock().expect("watcher poisoned").report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{builtin_watchers, Severity};
    use stem_obs::{Recorder, ShardRow};
    use stem_spatial::Point;

    fn world() -> Rect {
        Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
    }

    /// A snapshot with one shard at the given queue depth.
    fn snap(seq: u64, ticks: u64, depth: u64) -> ObsSnapshot {
        ObsSnapshot::build(
            0,
            seq,
            Some(ticks),
            &Recorder::new(),
            vec![ShardRow {
                shard: 0,
                queue_depth: depth,
                gauges: Vec::new(),
            }],
        )
    }

    fn backlog_watcher(sustain: u64) -> Watcher {
        let spec = WatchSpec::new("backlog", Metric::ShardQueueDepth)
            .at_least(100)
            .sustained_for(sustain)
            .severity(Severity::Warning);
        Watcher::new(vec![spec], 8, None, vec![world()], world()).unwrap()
    }

    #[test]
    fn sustained_backlog_fires_once_with_full_provenance() {
        let mut w = backlog_watcher(3);
        assert!(w.observe(&snap(0, 10, 500)).is_empty(), "1 of 3");
        assert!(w.observe(&snap(1, 20, 500)).is_empty(), "2 of 3");
        let fired = w.observe(&snap(2, 30, 600));
        assert_eq!(fired.len(), 1, "3 of 3 confirms");
        let alert = &fired[0];
        assert_eq!(alert.rule, "backlog");
        assert_eq!(alert.shard, Some(0));
        assert_eq!(alert.began_seq, 0);
        assert_eq!(alert.fired_seq, 2);
        assert_eq!(alert.value, 600);
        assert_eq!(alert.ticks, Some(30));
        assert_eq!(
            alert.constituents,
            vec![0, 1, 2],
            "provenance spans the episode"
        );
        // Still holding: no re-fire within the same episode.
        assert!(w.observe(&snap(3, 40, 700)).is_empty());
        // Drop below, then sustain again: a fresh episode fires anew.
        assert!(w.observe(&snap(4, 50, 5)).is_empty());
        for (i, seq) in (5..7u64).enumerate() {
            assert!(w.observe(&snap(seq, 60 + i as u64, 900)).is_empty());
        }
        let again = w.observe(&snap(7, 70, 900));
        assert_eq!(again.len(), 1);
        assert_eq!(again[0].began_seq, 5);
        assert_eq!(w.alerts().len(), 2, "the ring retains both");
    }

    #[test]
    fn below_threshold_or_short_episodes_never_fire() {
        let mut w = backlog_watcher(3);
        for seq in 0..10 {
            assert!(w.observe(&snap(seq, seq * 10, 99)).is_empty());
        }
        // Two-sample spikes under a three-sample sustain stay silent.
        let mut w = backlog_watcher(3);
        for base in (0..30u64).step_by(3) {
            assert!(w.observe(&snap(base, base, 500)).is_empty());
            assert!(w.observe(&snap(base + 1, base + 1, 500)).is_empty());
            assert!(w.observe(&snap(base + 2, base + 2, 0)).is_empty());
        }
    }

    #[test]
    fn watermark_stall_fires_when_ticks_freeze() {
        let spec = WatchSpec::new("stall", Metric::WatermarkStalled)
            .sustained_for(3)
            .severity(Severity::Critical);
        let mut w = Watcher::new(vec![spec], 8, None, vec![world()], world()).unwrap();
        // Advancing clock: healthy.
        for seq in 0..4u64 {
            assert!(w.observe(&snap(seq, 100 * (seq + 1), 0)).is_empty());
        }
        // Clock freezes at 400. The first frozen *comparison* is seq 4.
        assert!(w.observe(&snap(4, 400, 0)).is_empty(), "1 of 3");
        assert!(w.observe(&snap(5, 400, 0)).is_empty(), "2 of 3");
        let fired = w.observe(&snap(6, 400, 0));
        assert_eq!(fired.len(), 1, "3 of 3 confirms the stall");
        assert_eq!(fired[0].rule, "stall");
        assert_eq!(fired[0].shard, None, "engine-wide rule");
        assert_eq!(fired[0].began_seq, 4);
        assert_eq!(fired[0].constituents, vec![4, 5, 6]);
        // The clock moves again: the episode closes, no extra alert.
        assert!(w.observe(&snap(7, 500, 0)).is_empty());
    }

    #[test]
    fn gauge_delta_measures_fsync_debt() {
        let spec = WatchSpec::new(
            "fsync-debt",
            Metric::GaugeDelta("wal_records".into(), "wal_fsyncs".into()),
        )
        .at_least(50)
        .sustained_for(2);
        let mut w = Watcher::new(vec![spec], 8, None, vec![world()], world()).unwrap();
        let snap_with = |seq: u64, records: u64, fsyncs: u64| {
            let mut r = Recorder::new();
            r.set_gauge("wal_records", records);
            r.set_gauge("wal_fsyncs", fsyncs);
            ObsSnapshot::build(0, seq, Some(seq), &r, Vec::new())
        };
        assert!(
            w.observe(&snap_with(0, 100, 90)).is_empty(),
            "debt 10: fine"
        );
        assert!(
            w.observe(&snap_with(1, 200, 140)).is_empty(),
            "debt 60: 1 of 2"
        );
        let fired = w.observe(&snap_with(2, 300, 160));
        assert_eq!(fired.len(), 1, "debt 140 sustained");
        assert_eq!(fired[0].value, 140);
    }

    #[test]
    fn out_of_order_and_repeated_snapshots_are_ignored() {
        let mut w = backlog_watcher(1);
        let fired = w.observe(&snap(5, 10, 500));
        assert_eq!(fired.len(), 1, "sustain 1 fires immediately");
        assert!(w.observe(&snap(5, 10, 500)).is_empty(), "repeat ignored");
        assert!(
            w.observe(&snap(3, 10, 500)).is_empty(),
            "regression ignored"
        );
    }

    #[test]
    fn export_writes_parseable_alert_lines() {
        let path =
            std::env::temp_dir().join(format!("stem-watch-export-{}.jsonl", std::process::id()));
        let spec = WatchSpec::new("backlog", Metric::ShardQueueDepth).at_least(100);
        let mut w = Watcher::new(vec![spec], 8, Some(&path), vec![world()], world()).unwrap();
        w.set_epoch(2);
        let fired = w.observe(&snap(0, 10, 500));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].epoch, 2, "epoch stamps alerts");
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = crate::alert::parse_alert_stream(&text).expect("valid export");
        assert_eq!(parsed, fired);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn builtins_run_clean_over_a_healthy_stream() {
        let mut w = Watcher::new(builtin_watchers(true), 8, None, vec![world()], world()).unwrap();
        for seq in 0..20u64 {
            let mut r = Recorder::new();
            r.set_gauge("wal_records", seq * 10);
            r.set_gauge("wal_fsyncs", seq * 10);
            r.set_gauge("checkpoint_age_ticks", 5);
            let s = ObsSnapshot::build(
                0,
                seq,
                Some(seq * 100),
                &r,
                vec![ShardRow {
                    shard: 0,
                    queue_depth: 3,
                    gauges: Vec::new(),
                }],
            );
            assert!(w.observe(&s).is_empty(), "healthy stream stays silent");
        }
        assert!(w.alerts().is_empty());
        assert_eq!(w.report().evicted, 0);
    }

    #[test]
    fn handle_views_the_shared_watcher() {
        let w = backlog_watcher(1);
        let shared = Arc::new(Mutex::new(w));
        let handle = HealthHandle::new(Arc::clone(&shared));
        assert!(handle.alerts().is_empty());
        shared.lock().unwrap().observe(&snap(0, 10, 500));
        assert_eq!(handle.alerts().len(), 1);
        assert_eq!(handle.report().alerts.len(), 1);
        assert_eq!(handle.evicted(), 0);
    }
}
