//! The deterministic discrete-event simulation kernel.
//!
//! A classic event-list simulator: a priority queue of `(time, priority,
//! sequence)`-ordered entries, each holding a closure over the simulation
//! state. Ties break by explicit priority, then by insertion sequence, so
//! execution order is total and reproducible — the foundation for every
//! experiment in this repository (same seed ⇒ identical output).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use stem_temporal::{Duration, TimePoint};

/// An event handler: runs against the simulation state and may schedule
/// follow-up events through the [`Scheduler`].
pub type EventFn<S> = Box<dyn FnOnce(&mut S, &mut Scheduler<S>)>;

/// Handle for a scheduled event, usable with [`Scheduler::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

/// Scheduling priority for events that fire at the same tick: lower values
/// run first.
///
/// Used to impose deterministic intra-tick phase ordering (e.g. "radio
/// deliveries before sensor samples before application timers").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Priority(pub u8);

impl Priority {
    /// The default priority for ordinary events.
    pub const NORMAL: Priority = Priority(128);
    /// Runs before normal events in the same tick.
    pub const EARLY: Priority = Priority(32);
    /// Runs after normal events in the same tick.
    pub const LATE: Priority = Priority(224);
}

struct Entry<S> {
    time: TimePoint,
    priority: Priority,
    seq: u64,
    id: u64,
    action: EventFn<S>,
}

impl<S> PartialEq for Entry<S> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_key() == other.cmp_key()
    }
}

impl<S> Eq for Entry<S> {}

impl<S> PartialOrd for Entry<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<S> Ord for Entry<S> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: reverse so the earliest entry pops first.
        other.cmp_key().cmp(&self.cmp_key())
    }
}

impl<S> Entry<S> {
    fn cmp_key(&self) -> (TimePoint, Priority, u64) {
        (self.time, self.priority, self.seq)
    }
}

/// The event queue and clock, passed to every handler so it can schedule
/// follow-ups.
pub struct Scheduler<S> {
    now: TimePoint,
    queue: BinaryHeap<Entry<S>>,
    seq: u64,
    next_id: u64,
    /// Ids scheduled but not yet executed or cancelled.
    pending_ids: HashSet<u64>,
    /// Ids cancelled but still sitting in the heap (lazy deletion).
    cancelled: HashSet<u64>,
}

impl<S> Scheduler<S> {
    fn new() -> Self {
        Scheduler {
            now: TimePoint::EPOCH,
            queue: BinaryHeap::new(),
            seq: 0,
            next_id: 0,
            pending_ids: HashSet::new(),
            cancelled: HashSet::new(),
        }
    }

    /// The current simulation time.
    #[must_use]
    pub fn now(&self) -> TimePoint {
        self.now
    }

    /// Number of pending (non-cancelled, not-yet-executed) events.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending_ids.len()
    }

    /// Schedules `action` to run `delay` ticks from now at normal priority.
    pub fn schedule<F>(&mut self, delay: Duration, action: F) -> EventHandle
    where
        F: FnOnce(&mut S, &mut Scheduler<S>) + 'static,
    {
        let at = self.now.checked_add(delay).unwrap_or(TimePoint::MAX);
        self.schedule_at(at, Priority::NORMAL, action)
    }

    /// Schedules `action` at an absolute time with a priority.
    ///
    /// Scheduling in the past is clamped to "now" (it will still run after
    /// everything already queued for the current tick with lower-or-equal
    /// priority, preserving determinism).
    pub fn schedule_at<F>(&mut self, at: TimePoint, priority: Priority, action: F) -> EventHandle
    where
        F: FnOnce(&mut S, &mut Scheduler<S>) + 'static,
    {
        let time = at.max(self.now);
        let id = self.next_id;
        self.next_id += 1;
        let seq = self.seq;
        self.seq += 1;
        self.pending_ids.insert(id);
        self.queue.push(Entry {
            time,
            priority,
            seq,
            id,
            action: Box::new(action),
        });
        EventHandle(id)
    }

    /// Cancels a scheduled event. Returns `true` only if the event was
    /// still pending (not yet executed and not already cancelled).
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if self.pending_ids.remove(&handle.0) {
            self.cancelled.insert(handle.0);
            true
        } else {
            false
        }
    }
}

/// A discrete-event simulation over state `S`.
///
/// # Example
///
/// ```
/// use stem_des::{Simulation, Priority};
/// use stem_temporal::{Duration, TimePoint};
///
/// let mut sim = Simulation::new(0u32);
/// sim.scheduler_mut().schedule(Duration::new(10), |count, sched| {
///     *count += 1;
///     // Chain a follow-up event.
///     sched.schedule(Duration::new(5), |count, _| *count += 10);
/// });
/// sim.run_until(TimePoint::new(100));
/// assert_eq!(*sim.state(), 11);
/// assert_eq!(sim.now(), TimePoint::new(15));
/// ```
pub struct Simulation<S> {
    state: S,
    sched: Scheduler<S>,
    executed: u64,
}

impl<S> Simulation<S> {
    /// Creates a simulation with the given initial state at the epoch.
    #[must_use]
    pub fn new(state: S) -> Self {
        Simulation {
            state,
            sched: Scheduler::new(),
            executed: 0,
        }
    }

    /// The current simulation time (the time of the last executed event).
    #[must_use]
    pub fn now(&self) -> TimePoint {
        self.sched.now
    }

    /// Shared access to the simulation state.
    #[must_use]
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Exclusive access to the simulation state.
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.state
    }

    /// Consumes the simulation, returning the final state.
    #[must_use]
    pub fn into_state(self) -> S {
        self.state
    }

    /// Access to the scheduler for seeding initial events.
    pub fn scheduler_mut(&mut self) -> &mut Scheduler<S> {
        &mut self.sched
    }

    /// Total number of events executed so far.
    #[must_use]
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Executes the next event, if any. Returns `false` when the queue is
    /// exhausted.
    pub fn step(&mut self) -> bool {
        loop {
            let Some(entry) = self.sched.queue.pop() else {
                return false;
            };
            if self.sched.cancelled.remove(&entry.id) {
                continue;
            }
            self.sched.pending_ids.remove(&entry.id);
            debug_assert!(entry.time >= self.sched.now, "time must be monotone");
            self.sched.now = entry.time;
            (entry.action)(&mut self.state, &mut self.sched);
            self.executed += 1;
            return true;
        }
    }

    /// Runs until the queue empties or the next event would fire after
    /// `deadline`. The clock never advances past the last executed event.
    pub fn run_until(&mut self, deadline: TimePoint) {
        loop {
            // Skip cancelled heads without executing.
            while let Some(head) = self.sched.queue.peek() {
                if self.sched.cancelled.contains(&head.id) {
                    let e = self.sched.queue.pop().expect("peeked");
                    self.sched.cancelled.remove(&e.id);
                } else {
                    break;
                }
            }
            match self.sched.queue.peek() {
                Some(head) if head.time <= deadline => {
                    self.step();
                }
                _ => return,
            }
        }
    }

    /// Runs to queue exhaustion, with a safety cap on executed events.
    ///
    /// # Panics
    ///
    /// Panics if the cap is reached — an indication of a runaway
    /// self-scheduling loop in a model.
    pub fn run_to_completion(&mut self, max_events: u64) {
        let start = self.executed;
        while self.step() {
            assert!(
                self.executed - start <= max_events,
                "simulation exceeded {max_events} events — runaway event loop?"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Simulation::new(Vec::<u64>::new());
        for &t in &[30u64, 10, 20] {
            sim.scheduler_mut().schedule_at(
                TimePoint::new(t),
                Priority::NORMAL,
                move |log: &mut Vec<u64>, _| {
                    log.push(t);
                },
            );
        }
        sim.run_until(TimePoint::MAX);
        assert_eq!(sim.state(), &vec![10, 20, 30]);
        assert_eq!(sim.executed(), 3);
    }

    #[test]
    fn same_tick_orders_by_priority_then_insertion() {
        let mut sim = Simulation::new(Vec::<&'static str>::new());
        let s = sim.scheduler_mut();
        s.schedule_at(TimePoint::new(5), Priority::LATE, |log: &mut Vec<_>, _| {
            log.push("late")
        });
        s.schedule_at(
            TimePoint::new(5),
            Priority::NORMAL,
            |log: &mut Vec<_>, _| log.push("n1"),
        );
        s.schedule_at(TimePoint::new(5), Priority::EARLY, |log: &mut Vec<_>, _| {
            log.push("early")
        });
        s.schedule_at(
            TimePoint::new(5),
            Priority::NORMAL,
            |log: &mut Vec<_>, _| log.push("n2"),
        );
        sim.run_until(TimePoint::MAX);
        assert_eq!(sim.state(), &vec!["early", "n1", "n2", "late"]);
    }

    #[test]
    fn handlers_can_chain_events() {
        let mut sim = Simulation::new(0u64);
        sim.scheduler_mut().schedule(Duration::new(1), |_, sched| {
            sched.schedule(Duration::new(1), |_, sched| {
                sched.schedule(Duration::new(1), |n, _| *n = 42);
            });
        });
        sim.run_until(TimePoint::new(10));
        assert_eq!(*sim.state(), 42);
        assert_eq!(sim.now(), TimePoint::new(3));
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = Simulation::new(0u32);
        for t in [5u64, 10, 15] {
            sim.scheduler_mut().schedule_at(
                TimePoint::new(t),
                Priority::NORMAL,
                |n: &mut u32, _| *n += 1,
            );
        }
        sim.run_until(TimePoint::new(10));
        assert_eq!(*sim.state(), 2);
        assert_eq!(sim.now(), TimePoint::new(10));
        sim.run_until(TimePoint::new(20));
        assert_eq!(*sim.state(), 3);
    }

    #[test]
    fn cancellation_prevents_execution() {
        let mut sim = Simulation::new(0u32);
        let keep = sim
            .scheduler_mut()
            .schedule(Duration::new(5), |n: &mut u32, _| *n += 1);
        let drop_ = sim
            .scheduler_mut()
            .schedule(Duration::new(6), |n: &mut u32, _| *n += 10);
        assert_eq!(sim.scheduler_mut().pending(), 2);
        assert!(sim.scheduler_mut().cancel(drop_));
        assert!(
            !sim.scheduler_mut().cancel(drop_),
            "double cancel is a no-op"
        );
        assert_eq!(sim.scheduler_mut().pending(), 1);
        let _ = keep;
        sim.run_until(TimePoint::MAX);
        assert_eq!(*sim.state(), 1);
    }

    #[test]
    fn cancel_of_unknown_handle_is_false() {
        let mut sim = Simulation::<u32>::new(0);
        assert!(!sim.scheduler_mut().cancel(EventHandle(999)));
    }

    #[test]
    fn cancel_after_execution_is_false() {
        let mut sim = Simulation::new(0u32);
        let h = sim
            .scheduler_mut()
            .schedule(Duration::new(1), |n: &mut u32, _| *n += 1);
        sim.run_until(TimePoint::MAX);
        assert_eq!(*sim.state(), 1, "event ran");
        assert!(
            !sim.scheduler_mut().cancel(h),
            "an executed event cannot be cancelled"
        );
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut sim = Simulation::new(Vec::<u64>::new());
        sim.scheduler_mut().schedule_at(
            TimePoint::new(10),
            Priority::NORMAL,
            |log: &mut Vec<u64>, sched| {
                log.push(sched.now().ticks());
                // "Yesterday" clamps to now=10.
                sched.schedule_at(
                    TimePoint::new(3),
                    Priority::NORMAL,
                    |log: &mut Vec<u64>, sched| {
                        log.push(sched.now().ticks());
                    },
                );
            },
        );
        sim.run_until(TimePoint::MAX);
        assert_eq!(sim.state(), &vec![10, 10]);
    }

    #[test]
    #[should_panic(expected = "runaway event loop")]
    fn run_to_completion_caps_runaway_loops() {
        let mut sim = Simulation::new(());
        fn respawn(_: &mut (), sched: &mut Scheduler<()>) {
            sched.schedule(Duration::new(1), respawn);
        }
        sim.scheduler_mut().schedule(Duration::new(1), respawn);
        sim.run_to_completion(1000);
    }

    proptest! {
        /// The clock is monotone over any schedule of events.
        #[test]
        fn clock_is_monotone(times in proptest::collection::vec(0u64..1000, 1..50)) {
            let mut sim = Simulation::new(Vec::<u64>::new());
            for &t in &times {
                sim.scheduler_mut().schedule_at(
                    TimePoint::new(t),
                    Priority::NORMAL,
                    move |log: &mut Vec<u64>, sched| log.push(sched.now().ticks()),
                );
            }
            sim.run_until(TimePoint::MAX);
            let log = sim.state();
            prop_assert_eq!(log.len(), times.len());
            for w in log.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
        }

        /// Two identical schedules execute identically (determinism).
        #[test]
        fn deterministic_execution(times in proptest::collection::vec((0u64..100, 0u8..4), 1..40)) {
            let run = || {
                let mut sim = Simulation::new(Vec::<(u64, u8)>::new());
                for &(t, p) in &times {
                    sim.scheduler_mut().schedule_at(
                        TimePoint::new(t),
                        Priority(p),
                        move |log: &mut Vec<(u64, u8)>, _| log.push((t, p)),
                    );
                }
                sim.run_until(TimePoint::MAX);
                sim.into_state()
            };
            prop_assert_eq!(run(), run());
        }
    }
}
