//! # stem-des — deterministic discrete-event simulation kernel
//!
//! The evaluation substrate for the STEM reproduction. The paper's CPS is
//! a distributed system of motes, sinks, and control units; every
//! experiment here runs that system inside a single-threaded, determin-
//! istic event-list simulator so that results are exactly reproducible
//! from a scenario seed (see DESIGN.md, "Determinism").
//!
//! * [`Simulation`] / [`Scheduler`] — the event loop: time-ordered queue
//!   with explicit intra-tick [`Priority`] and stable FIFO tie-breaking,
//!   event cancellation, deadline-bounded runs.
//! * [`stream`] / [`derive_seed`] — per-component seeded RNG streams
//!   (SplitMix64 keying) plus the normal/exponential/geometric samplers
//!   the network models draw from.
//! * [`Counter`], [`Histogram`], [`TimeSeries`], [`MetricSet`] — metric
//!   recorders behind the experiment tables.
//!
//! # Example
//!
//! ```
//! use stem_des::Simulation;
//! use stem_temporal::{Duration, TimePoint};
//!
//! let mut sim = Simulation::new(Vec::new());
//! sim.scheduler_mut().schedule(Duration::new(3), |log: &mut Vec<u64>, sched| {
//!     log.push(sched.now().ticks());
//! });
//! sim.run_until(TimePoint::new(100));
//! assert_eq!(sim.state(), &vec![3]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod rng;
mod sim;
mod stats;

pub use rng::{
    derive_seed, sample_exponential, sample_geometric, sample_normal, sample_standard_normal,
    stream,
};
pub use sim::{EventFn, EventHandle, Priority, Scheduler, Simulation};
pub use stats::{Counter, Histogram, MetricSet, TimeSeries};
