//! Metric recorders: counters, sample histograms with quantiles, and time
//! series. The experiment harness prints its tables from these.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use stem_temporal::TimePoint;

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// The current count.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A sample-recording histogram with exact quantiles.
///
/// Stores every sample (experiments here record at most a few hundred
/// thousand), sorting lazily on first quantile query after new data.
///
/// # Example
///
/// ```
/// use stem_des::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
///     h.record(v);
/// }
/// assert_eq!(h.mean(), Some(3.0));
/// assert_eq!(h.quantile(0.5), Some(3.0));
/// assert_eq!(h.max(), Some(5.0));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Histogram {
    samples: Vec<f64>,
    #[serde(skip)]
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Records a sample. Non-finite samples are rejected (and counted
    /// nowhere) — they would poison every downstream statistic.
    pub fn record(&mut self, value: f64) {
        if value.is_finite() {
            self.samples.push(value);
            self.sorted = false;
        }
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if no samples were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Population standard deviation, or `None` when empty.
    #[must_use]
    pub fn std_dev(&self) -> Option<f64> {
        let mean = self.mean()?;
        let var = self.samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
            / self.samples.len() as f64;
        Some(var.sqrt())
    }

    /// Minimum sample, or `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::min)
    }

    /// Maximum sample, or `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::max)
    }

    /// The `q`-quantile (nearest-rank on the sorted samples), `q ∈ [0, 1]`.
    ///
    /// Requires `&mut self` to sort lazily.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted = true;
        }
        let idx = ((self.samples.len() as f64 - 1.0) * q).round() as usize;
        Some(self.samples[idx])
    }

    /// A compact one-line summary: `n, mean, p50, p95, p99, max`.
    #[must_use]
    pub fn summary(&mut self) -> String {
        if self.is_empty() {
            return "n=0".to_owned();
        }
        format!(
            "n={} mean={:.2} p50={:.2} p95={:.2} p99={:.2} max={:.2}",
            self.count(),
            self.mean().expect("non-empty"),
            self.quantile(0.50).expect("non-empty"),
            self.quantile(0.95).expect("non-empty"),
            self.quantile(0.99).expect("non-empty"),
            self.max().expect("non-empty"),
        )
    }

    /// The raw samples (unsorted order not guaranteed).
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// A time-stamped series of values (e.g. per-tick queue depth).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(TimePoint, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    #[must_use]
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Appends an observation.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the last recorded point (series are
    /// append-only in time).
    pub fn record(&mut self, at: TimePoint, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(at >= last, "time series must be recorded in time order");
        }
        self.points.push((at, value));
    }

    /// The recorded points in time order.
    #[must_use]
    pub fn points(&self) -> &[(TimePoint, f64)] {
        &self.points
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if no points were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The value at or before `at` (step interpolation), if any.
    #[must_use]
    pub fn value_at(&self, at: TimePoint) -> Option<f64> {
        match self.points.binary_search_by_key(&at, |&(t, _)| t) {
            Ok(i) => Some(self.points[i].1),
            Err(0) => None,
            Err(i) => Some(self.points[i - 1].1),
        }
    }
}

/// A named collection of histograms and counters — one per metric — used
/// by the scenario runner to gather per-layer statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricSet {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricSet {
    /// Creates an empty metric set.
    #[must_use]
    pub fn new() -> Self {
        MetricSet::default()
    }

    /// Increments the named counter (creating it at zero).
    pub fn inc(&mut self, name: &str) {
        self.counters.entry(name.to_owned()).or_default().inc();
    }

    /// Adds to the named counter (creating it at zero).
    pub fn add(&mut self, name: &str, n: u64) {
        self.counters.entry(name.to_owned()).or_default().add(n);
    }

    /// Records a sample into the named histogram (creating it).
    pub fn record(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .record(value);
    }

    /// Reads a counter (zero if absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).map_or(0, Counter::get)
    }

    /// Reads a histogram, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Exclusive access to a histogram (for quantile queries), creating it
    /// if absent.
    pub fn histogram_mut(&mut self, name: &str) -> &mut Histogram {
        self.histograms.entry(name.to_owned()).or_default()
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), v.get()))
    }

    /// Iterates histogram names in order.
    pub fn histogram_names(&self) -> impl Iterator<Item = &str> {
        self.histograms.keys().map(String::as_str)
    }

    /// Merges another metric set into this one (counters add, histograms
    /// concatenate).
    pub fn merge(&mut self, other: &MetricSet) {
        for (k, v) in &other.counters {
            self.counters.entry(k.clone()).or_default().add(v.get());
        }
        for (k, h) in &other.histograms {
            let target = self.histograms.entry(k.clone()).or_default();
            for &s in h.samples() {
                target.record(s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counter_behaviour() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.to_string(), "5");
    }

    #[test]
    fn histogram_statistics() {
        let mut h = Histogram::new();
        for v in [4.0, 1.0, 3.0, 2.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), Some(2.5));
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(4.0));
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(4.0));
        let sd = h.std_dev().unwrap();
        assert!((sd - 1.118033988749895).abs() < 1e-12);
    }

    #[test]
    fn histogram_rejects_non_finite() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(2.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), Some(2.0));
    }

    #[test]
    fn histogram_empty_queries() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.summary(), "n=0");
    }

    #[test]
    fn histogram_interleaves_record_and_quantile() {
        let mut h = Histogram::new();
        h.record(5.0);
        assert_eq!(h.quantile(0.5), Some(5.0));
        h.record(1.0);
        assert_eq!(h.quantile(0.0), Some(1.0), "re-sorts after new data");
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0, 1]")]
    fn histogram_rejects_bad_quantile() {
        let mut h = Histogram::new();
        h.record(1.0);
        let _ = h.quantile(1.5);
    }

    #[test]
    fn time_series_step_lookup() {
        let mut ts = TimeSeries::new();
        ts.record(TimePoint::new(10), 1.0);
        ts.record(TimePoint::new(20), 2.0);
        assert_eq!(ts.value_at(TimePoint::new(5)), None);
        assert_eq!(ts.value_at(TimePoint::new(10)), Some(1.0));
        assert_eq!(ts.value_at(TimePoint::new(15)), Some(1.0));
        assert_eq!(ts.value_at(TimePoint::new(20)), Some(2.0));
        assert_eq!(ts.value_at(TimePoint::new(99)), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn time_series_rejects_regression() {
        let mut ts = TimeSeries::new();
        ts.record(TimePoint::new(10), 1.0);
        ts.record(TimePoint::new(5), 2.0);
    }

    #[test]
    fn metric_set_merge() {
        let mut a = MetricSet::new();
        a.inc("events");
        a.record("latency", 5.0);
        let mut b = MetricSet::new();
        b.add("events", 2);
        b.record("latency", 7.0);
        b.record("loss", 1.0);
        a.merge(&b);
        assert_eq!(a.counter("events"), 3);
        assert_eq!(a.histogram("latency").unwrap().count(), 2);
        assert_eq!(a.histogram("loss").unwrap().count(), 1);
        assert_eq!(a.counter("missing"), 0);
    }

    proptest! {
        /// Quantiles are monotone in q and bounded by min/max.
        #[test]
        fn quantiles_monotone(samples in proptest::collection::vec(-100.0f64..100.0, 1..60)) {
            let mut h = Histogram::new();
            for &s in &samples {
                h.record(s);
            }
            let min = h.min().unwrap();
            let max = h.max().unwrap();
            let mut prev = min;
            for i in 0..=10 {
                let q = h.quantile(i as f64 / 10.0).unwrap();
                prop_assert!(q >= prev - 1e-12);
                prop_assert!(q >= min && q <= max);
                prev = q;
            }
        }

        /// Mean lies within [min, max].
        #[test]
        fn mean_bounded(samples in proptest::collection::vec(-100.0f64..100.0, 1..60)) {
            let mut h = Histogram::new();
            for &s in &samples {
                h.record(s);
            }
            let mean = h.mean().unwrap();
            prop_assert!(mean >= h.min().unwrap() - 1e-9);
            prop_assert!(mean <= h.max().unwrap() + 1e-9);
        }
    }
}
