//! Deterministic per-component random streams and the distributions the
//! simulators draw from.
//!
//! Every stochastic component gets its own stream keyed by
//! `(scenario_seed, component_key)` so that adding or re-ordering
//! components never perturbs the draws of existing ones — the property
//! that makes parameter sweeps comparable run-to-run.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Derives a child seed from `(seed, key)` using SplitMix64 finalization.
///
/// SplitMix64 is the standard seeding mixer (Steele et al., "Fast
/// splittable pseudorandom number generators"): every bit of the inputs
/// avalanches into the output.
#[must_use]
pub fn derive_seed(seed: u64, key: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(key.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Creates the random stream for component `key` under scenario `seed`.
///
/// # Example
///
/// ```
/// use rand::Rng;
/// use stem_des::stream;
///
/// let mut a1 = stream(42, 7);
/// let mut a2 = stream(42, 7);
/// assert_eq!(a1.gen::<u64>(), a2.gen::<u64>(), "same key, same stream");
/// let mut b = stream(42, 8);
/// assert_ne!(stream(42, 7).gen::<u64>(), b.gen::<u64>());
/// ```
#[must_use]
pub fn stream(seed: u64, key: u64) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(seed, key))
}

/// Samples a standard normal variate via the Box–Muller transform.
///
/// (The `rand` crate alone ships no normal distribution — that lives in
/// `rand_distr`, which is outside the approved dependency set — so the
/// transform is implemented here and property-tested against moment
/// bounds.)
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Draw u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples `N(mean, std_dev²)`.
///
/// # Panics
///
/// Panics if `std_dev` is negative.
pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(std_dev >= 0.0, "standard deviation must be non-negative");
    mean + std_dev * sample_standard_normal(rng)
}

/// Samples an exponential variate with the given rate (inverse transform).
///
/// # Panics
///
/// Panics if `rate` is not positive.
pub fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "rate must be positive");
    let u: f64 = 1.0 - rng.gen::<f64>();
    -u.ln() / rate
}

/// Samples a geometric "number of failures before success" with success
/// probability `p` (used for retransmission counts).
///
/// # Panics
///
/// Panics if `p` is not in `(0, 1]`.
pub fn sample_geometric<R: Rng + ?Sized>(rng: &mut R, p: f64) -> u64 {
    assert!(p > 0.0 && p <= 1.0, "p must be in (0, 1]");
    if (p - 1.0).abs() < f64::EPSILON {
        return 0;
    }
    let u: f64 = 1.0 - rng.gen::<f64>();
    (u.ln() / (1.0 - p).ln()).floor() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_deterministic_and_spreads() {
        assert_eq!(derive_seed(1, 2), derive_seed(1, 2));
        assert_ne!(derive_seed(1, 2), derive_seed(1, 3));
        assert_ne!(derive_seed(1, 2), derive_seed(2, 2));
        // Nearby keys produce far-apart seeds (avalanche sanity).
        let a = derive_seed(0, 0);
        let b = derive_seed(0, 1);
        assert!((a ^ b).count_ones() > 10);
    }

    #[test]
    fn streams_reproduce_exactly() {
        let seq1: Vec<u64> = {
            let mut r = stream(99, 5);
            (0..32).map(|_| r.gen()).collect()
        };
        let seq2: Vec<u64> = {
            let mut r = stream(99, 5);
            (0..32).map(|_| r.gen()).collect()
        };
        assert_eq!(seq1, seq2);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = stream(7, 0);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_normal(&mut rng, 10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = stream(8, 0);
        let n = 20_000;
        let mean = (0..n)
            .map(|_| sample_exponential(&mut rng, 0.5))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn geometric_edge_cases() {
        let mut rng = stream(9, 0);
        assert_eq!(sample_geometric(&mut rng, 1.0), 0);
        let n = 10_000;
        let mean = (0..n)
            .map(|_| sample_geometric(&mut rng, 0.5) as f64)
            .sum::<f64>()
            / n as f64;
        // E[failures before success] = (1-p)/p = 1.
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_zero_rate() {
        let mut rng = stream(1, 1);
        let _ = sample_exponential(&mut rng, 0.0);
    }

    #[test]
    #[should_panic(expected = "standard deviation must be non-negative")]
    fn normal_rejects_negative_std() {
        let mut rng = stream(1, 1);
        let _ = sample_normal(&mut rng, 0.0, -1.0);
    }
}
