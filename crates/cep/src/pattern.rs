//! Composite event patterns with interval semantics.
//!
//! The paper requires "support [for] both punctual and interval events"
//! and cites Snoop [21] / SnoopIB [6] as the composition baseline
//! (Sec. 2). This module implements the Snoop operator family — sequence,
//! conjunction, disjunction, negation — over [`EventInstance`] streams
//! with SnoopIB-style *interval* semantics: the occurrence extent of a
//! composite match is the convex hull of its constituents' extents, and
//! the detection time is the arrival that completed the match.

use serde::{Deserialize, Serialize};
use std::fmt;
use stem_core::codec::{self, StateCodec};
use stem_core::{EventId, EventInstance, TraceId};
use stem_temporal::{Duration, TemporalExtent, TimePoint};

/// Tag for instances processed through the untraced entry points —
/// [`TraceId::NONE`] as a raw value.
pub const NO_TAG: u64 = TraceId::NONE.0;

/// Event consumption mode (Snoop's "parameter contexts"): how stored
/// partial matches are reused or consumed when a composite completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConsumptionMode {
    /// Only the most recent constituent on each side is retained; it is
    /// reused (not consumed) by later completions.
    Recent,
    /// Constituents pair oldest-first and are consumed by the pairing.
    Chronicle,
    /// Every stored constituent pairs with every counterpart — no
    /// consumption (bound memory with a horizon).
    Continuous,
}

impl fmt::Display for ConsumptionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ConsumptionMode::Recent => "recent",
            ConsumptionMode::Chronicle => "chronicle",
            ConsumptionMode::Continuous => "continuous",
        })
    }
}

/// A composite event pattern.
///
/// Atoms carry the *entity name* the matched instance is bound to, so a
/// completed match can feed a [`stem_core::ConditionExpr`] directly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Pattern {
    /// A primitive instance of the given event type, bound to `name`.
    Atom {
        /// Binding name for condition evaluation.
        name: String,
        /// The event type to match.
        event: EventId,
    },
    /// `A ; B` — left completes strictly before right begins (Snoop
    /// sequence, interval semantics: `left.extent.end < right.extent.start`).
    Sequence(Box<Pattern>, Box<Pattern>),
    /// `A ∧ B` — both occur, any order (Snoop conjunction).
    Conjunction(Box<Pattern>, Box<Pattern>),
    /// `A ∨ B` — either occurs (Snoop disjunction).
    Disjunction(Box<Pattern>, Box<Pattern>),
    /// `NOT n (A)` — the inner pattern matches only if no instance of
    /// `absent` occurred whose extent intersects the match extent.
    Negation {
        /// The positive pattern.
        inner: Box<Pattern>,
        /// The event type whose presence blocks a match.
        absent: EventId,
    },
}

impl Pattern {
    /// Atom constructor.
    #[must_use]
    pub fn atom(name: impl Into<String>, event: impl Into<EventId>) -> Pattern {
        Pattern::Atom {
            name: name.into(),
            event: event.into(),
        }
    }

    /// Sequence constructor (`self ; then`).
    #[must_use]
    pub fn then(self, then: Pattern) -> Pattern {
        Pattern::Sequence(Box::new(self), Box::new(then))
    }

    /// Conjunction constructor.
    #[must_use]
    pub fn and(self, other: Pattern) -> Pattern {
        Pattern::Conjunction(Box::new(self), Box::new(other))
    }

    /// Disjunction constructor.
    #[must_use]
    pub fn or(self, other: Pattern) -> Pattern {
        Pattern::Disjunction(Box::new(self), Box::new(other))
    }

    /// Negation constructor: `self` matches only without `absent`.
    #[must_use]
    pub fn unless(self, absent: impl Into<EventId>) -> Pattern {
        Pattern::Negation {
            inner: Box::new(self),
            absent: absent.into(),
        }
    }

    /// The event types the pattern consumes (including negated ones).
    #[must_use]
    pub fn event_types(&self) -> Vec<EventId> {
        let mut out = Vec::new();
        self.collect_events(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_events(&self, out: &mut Vec<EventId>) {
        match self {
            Pattern::Atom { event, .. } => out.push(event.clone()),
            Pattern::Sequence(l, r) | Pattern::Conjunction(l, r) | Pattern::Disjunction(l, r) => {
                l.collect_events(out);
                r.collect_events(out);
            }
            Pattern::Negation { inner, absent } => {
                inner.collect_events(out);
                out.push(absent.clone());
            }
        }
    }

    /// The binding names of the pattern's atoms, in left-to-right order.
    #[must_use]
    pub fn binding_names(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_names(&mut out);
        out
    }

    fn collect_names(&self, out: &mut Vec<String>) {
        match self {
            Pattern::Atom { name, .. } => out.push(name.clone()),
            Pattern::Sequence(l, r) | Pattern::Conjunction(l, r) | Pattern::Disjunction(l, r) => {
                l.collect_names(out);
                r.collect_names(out);
            }
            Pattern::Negation { inner, .. } => inner.collect_names(out),
        }
    }
}

/// A completed composite match.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternMatch {
    /// `(binding name, matched instance)` pairs in atom order.
    pub bindings: Vec<(String, EventInstance)>,
    /// Per-binding trace tags, parallel to `bindings`: the global
    /// ingest sequence of each constituent, or [`NO_TAG`] for instances
    /// fed through the untraced entry points.
    pub tags: Vec<u64>,
    /// SnoopIB occurrence extent: hull of constituent extents.
    pub extent: TemporalExtent,
    /// When the completing constituent was generated (detection time).
    pub detected_at: TimePoint,
}

impl PatternMatch {
    fn single(name: &str, inst: &EventInstance, tag: u64) -> PatternMatch {
        PatternMatch {
            bindings: vec![(name.to_owned(), inst.clone())],
            tags: vec![tag],
            extent: *inst.estimated_time(),
            detected_at: inst.generation_time(),
        }
    }

    fn merge(left: &PatternMatch, right: &PatternMatch) -> PatternMatch {
        let mut bindings = left.bindings.clone();
        bindings.extend(right.bindings.iter().cloned());
        let mut tags = left.tags.clone();
        tags.extend(right.tags.iter().copied());
        PatternMatch {
            bindings,
            tags,
            extent: left.extent.hull(&right.extent),
            detected_at: left.detected_at.max(right.detected_at),
        }
    }
}

/// Stateful detector for one [`Pattern`].
///
/// Feed instances in arrival order with [`PatternDetector::process`];
/// completed matches come back immediately (detection time = the arrival
/// that completed them). Use a horizon to bound stored partial state.
///
/// # Example
///
/// ```
/// use stem_cep::{ConsumptionMode, Pattern, PatternDetector};
/// use stem_core::{EventId, EventInstance, Layer, MoteId, ObserverId};
/// use stem_spatial::Point;
/// use stem_temporal::{TemporalExtent, TimePoint};
///
/// let mk = |event: &str, t: u64| {
///     EventInstance::builder(
///         ObserverId::Mote(MoteId::new(1)), EventId::new(event), Layer::Sensor,
///     )
///     .generated(TimePoint::new(t), Point::new(0.0, 0.0))
///     .estimated(
///         TemporalExtent::punctual(TimePoint::new(t)),
///         stem_spatial::SpatialExtent::point(Point::new(0.0, 0.0)),
///     )
///     .build()
/// };
/// let pattern = Pattern::atom("a", "door").then(Pattern::atom("b", "motion"));
/// let mut det = PatternDetector::new(pattern, ConsumptionMode::Chronicle, None);
/// assert!(det.process(&mk("door", 10)).is_empty());
/// let matches = det.process(&mk("motion", 20));
/// assert_eq!(matches.len(), 1);
/// assert_eq!(matches[0].extent.start(), TimePoint::new(10));
/// assert_eq!(matches[0].extent.end(), TimePoint::new(20));
/// ```
#[derive(Debug, Clone)]
pub struct PatternDetector {
    node: Node,
    mode: ConsumptionMode,
    horizon: Option<Duration>,
    latest: TimePoint,
}

#[derive(Debug, Clone)]
enum Node {
    Atom {
        name: String,
        event: EventId,
    },
    Binary {
        kind: BinaryKind,
        left: Box<Node>,
        right: Box<Node>,
        left_store: Vec<PatternMatch>,
        right_store: Vec<PatternMatch>,
    },
    Negation {
        inner: Box<Node>,
        absent: EventId,
        absent_extents: Vec<TemporalExtent>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BinaryKind {
    Sequence,
    Conjunction,
    Disjunction,
}

fn build(pattern: &Pattern) -> Node {
    match pattern {
        Pattern::Atom { name, event } => Node::Atom {
            name: name.clone(),
            event: event.clone(),
        },
        Pattern::Sequence(l, r) => Node::Binary {
            kind: BinaryKind::Sequence,
            left: Box::new(build(l)),
            right: Box::new(build(r)),
            left_store: Vec::new(),
            right_store: Vec::new(),
        },
        Pattern::Conjunction(l, r) => Node::Binary {
            kind: BinaryKind::Conjunction,
            left: Box::new(build(l)),
            right: Box::new(build(r)),
            left_store: Vec::new(),
            right_store: Vec::new(),
        },
        Pattern::Disjunction(l, r) => Node::Binary {
            kind: BinaryKind::Disjunction,
            left: Box::new(build(l)),
            right: Box::new(build(r)),
            left_store: Vec::new(),
            right_store: Vec::new(),
        },
        Pattern::Negation { inner, absent } => Node::Negation {
            inner: Box::new(build(inner)),
            absent: absent.clone(),
            absent_extents: Vec::new(),
        },
    }
}

impl PatternDetector {
    /// Creates a detector for `pattern` under a consumption mode, with an
    /// optional horizon: stored partials whose extent ended more than
    /// `horizon` before the latest seen generation time are discarded.
    #[must_use]
    pub fn new(pattern: Pattern, mode: ConsumptionMode, horizon: Option<Duration>) -> Self {
        PatternDetector {
            node: build(&pattern),
            mode,
            horizon,
            latest: TimePoint::EPOCH,
        }
    }

    /// The consumption mode.
    #[must_use]
    pub fn mode(&self) -> ConsumptionMode {
        self.mode
    }

    /// Processes one arriving instance; returns matches completed by it.
    ///
    /// When a horizon is set, partials that expired relative to the
    /// arriving instance's generation time are pruned *before* pairing,
    /// so stale constituents can never participate in a match.
    pub fn process(&mut self, instance: &EventInstance) -> Vec<PatternMatch> {
        self.process_tagged(instance, NO_TAG)
    }

    /// [`PatternDetector::process`], with the instance's trace tag (its
    /// global ingest sequence) recorded into every match it joins —
    /// completed matches report their constituents via
    /// [`PatternMatch::tags`].
    pub fn process_tagged(&mut self, instance: &EventInstance, tag: u64) -> Vec<PatternMatch> {
        self.latest = self.latest.max(instance.generation_time());
        let mut node = std::mem::replace(
            &mut self.node,
            Node::Atom {
                name: String::new(),
                event: EventId::new(""),
            },
        );
        if let Some(h) = self.horizon {
            let cutoff = self.latest.checked_sub(h).unwrap_or(TimePoint::EPOCH);
            prune_node(&mut node, cutoff);
        }
        let out = process_node(&mut node, instance, tag, self.mode);
        self.node = node;
        out
    }

    /// Number of stored partial matches across all operator nodes
    /// (memory diagnostic; bounded by the horizon).
    #[must_use]
    pub fn stored_partials(&self) -> usize {
        count_stored(&self.node)
    }
}

/// The detector's mutable state is its stream clock plus the partial
/// matches (and negation blockers) stored at every operator node. The
/// tree *shape* is configuration — rebuilt from the [`Pattern`] at
/// restore time — so the walk writes a tag per node and load fails with
/// [`CodecError::Invalid`](stem_core::codec::CodecError) when the
/// stored shape does not match the pattern it is loaded into.
impl StateCodec for PatternDetector {
    fn save_state(&self, buf: &mut Vec<u8>) {
        codec::encode_time_point(self.latest, buf);
        save_node(&self.node, buf);
    }

    fn load_state(&mut self, bytes: &mut &[u8]) -> codec::CodecResult<()> {
        self.latest = codec::decode_time_point(bytes)?;
        load_node(&mut self.node, bytes)
    }
}

fn encode_match(m: &PatternMatch, buf: &mut Vec<u8>) {
    codec::put_u32(buf, u32::try_from(m.bindings.len()).unwrap_or(u32::MAX));
    for (i, (name, inst)) in m.bindings.iter().enumerate() {
        codec::put_str(buf, name);
        codec::encode_instance(inst, buf);
        codec::put_u64(buf, m.tags.get(i).copied().unwrap_or(NO_TAG));
    }
    codec::encode_temporal_extent(&m.extent, buf);
    codec::encode_time_point(m.detected_at, buf);
}

fn decode_match(bytes: &mut &[u8]) -> codec::CodecResult<PatternMatch> {
    let n = codec::get_u32(bytes)? as usize;
    let mut bindings = Vec::with_capacity(n.min(4096));
    let mut tags = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let name = codec::get_str(bytes)?;
        let inst = codec::decode_instance(bytes)?;
        bindings.push((name, inst));
        tags.push(codec::get_u64(bytes)?);
    }
    let extent = codec::decode_temporal_extent(bytes)?;
    let detected_at = codec::decode_time_point(bytes)?;
    Ok(PatternMatch {
        bindings,
        tags,
        extent,
        detected_at,
    })
}

fn encode_match_store(store: &[PatternMatch], buf: &mut Vec<u8>) {
    codec::put_u32(buf, u32::try_from(store.len()).unwrap_or(u32::MAX));
    for m in store {
        encode_match(m, buf);
    }
}

fn decode_match_store(bytes: &mut &[u8]) -> codec::CodecResult<Vec<PatternMatch>> {
    let n = codec::get_u32(bytes)? as usize;
    let mut store = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        store.push(decode_match(bytes)?);
    }
    Ok(store)
}

const NODE_TAG_ATOM: u8 = 0;
const NODE_TAG_BINARY: u8 = 1;
const NODE_TAG_NEGATION: u8 = 2;

fn save_node(node: &Node, buf: &mut Vec<u8>) {
    match node {
        Node::Atom { .. } => codec::put_u8(buf, NODE_TAG_ATOM),
        Node::Binary {
            left,
            right,
            left_store,
            right_store,
            ..
        } => {
            codec::put_u8(buf, NODE_TAG_BINARY);
            encode_match_store(left_store, buf);
            encode_match_store(right_store, buf);
            save_node(left, buf);
            save_node(right, buf);
        }
        Node::Negation {
            inner,
            absent_extents,
            ..
        } => {
            codec::put_u8(buf, NODE_TAG_NEGATION);
            codec::put_u32(buf, u32::try_from(absent_extents.len()).unwrap_or(u32::MAX));
            for e in absent_extents {
                codec::encode_temporal_extent(e, buf);
            }
            save_node(inner, buf);
        }
    }
}

fn load_node(node: &mut Node, bytes: &mut &[u8]) -> codec::CodecResult<()> {
    let tag = codec::get_u8(bytes)?;
    match node {
        Node::Atom { .. } => {
            if tag != NODE_TAG_ATOM {
                return Err(codec::CodecError::Invalid("PatternDetector state shape"));
            }
            Ok(())
        }
        Node::Binary {
            left,
            right,
            left_store,
            right_store,
            ..
        } => {
            if tag != NODE_TAG_BINARY {
                return Err(codec::CodecError::Invalid("PatternDetector state shape"));
            }
            *left_store = decode_match_store(bytes)?;
            *right_store = decode_match_store(bytes)?;
            load_node(left, bytes)?;
            load_node(right, bytes)
        }
        Node::Negation {
            inner,
            absent_extents,
            ..
        } => {
            if tag != NODE_TAG_NEGATION {
                return Err(codec::CodecError::Invalid("PatternDetector state shape"));
            }
            let n = codec::get_u32(bytes)? as usize;
            absent_extents.clear();
            for _ in 0..n {
                absent_extents.push(codec::decode_temporal_extent(bytes)?);
            }
            load_node(inner, bytes)
        }
    }
}

fn count_stored(node: &Node) -> usize {
    match node {
        Node::Atom { .. } => 0,
        Node::Binary {
            left,
            right,
            left_store,
            right_store,
            ..
        } => left_store.len() + right_store.len() + count_stored(left) + count_stored(right),
        Node::Negation {
            inner,
            absent_extents,
            ..
        } => absent_extents.len() + count_stored(inner),
    }
}

fn prune_node(node: &mut Node, cutoff: TimePoint) {
    match node {
        Node::Atom { .. } => {}
        Node::Binary {
            left,
            right,
            left_store,
            right_store,
            ..
        } => {
            left_store.retain(|m| m.extent.end() >= cutoff);
            right_store.retain(|m| m.extent.end() >= cutoff);
            prune_node(left, cutoff);
            prune_node(right, cutoff);
        }
        Node::Negation {
            inner,
            absent_extents,
            ..
        } => {
            absent_extents.retain(|e| e.end() >= cutoff);
            prune_node(inner, cutoff);
        }
    }
}

fn process_node(
    node: &mut Node,
    instance: &EventInstance,
    tag: u64,
    mode: ConsumptionMode,
) -> Vec<PatternMatch> {
    match node {
        Node::Atom { name, event } => {
            if instance.event() == event {
                vec![PatternMatch::single(name, instance, tag)]
            } else {
                Vec::new()
            }
        }
        Node::Binary {
            kind,
            left,
            right,
            left_store,
            right_store,
        } => {
            let new_left = process_node(left, instance, tag, mode);
            let new_right = process_node(right, instance, tag, mode);
            let mut out = Vec::new();
            match kind {
                BinaryKind::Disjunction => {
                    out.extend(new_left);
                    out.extend(new_right);
                }
                BinaryKind::Sequence => {
                    // Completed rights pair with stored lefts that ended
                    // strictly before the right begins.
                    for r in &new_right {
                        pair_sequence(left_store, r, mode, &mut out);
                    }
                    store(left_store, new_left, mode);
                }
                BinaryKind::Conjunction => {
                    for l in &new_left {
                        pair_all(right_store, l, mode, true, &mut out);
                    }
                    for r in &new_right {
                        pair_all(left_store, r, mode, false, &mut out);
                    }
                    store(left_store, new_left, mode);
                    store(right_store, new_right, mode);
                }
            }
            out
        }
        Node::Negation {
            inner,
            absent,
            absent_extents,
        } => {
            if instance.event() == absent {
                absent_extents.push(*instance.estimated_time());
            }
            process_node(inner, instance, tag, mode)
                .into_iter()
                .filter(|m| {
                    !absent_extents
                        .iter()
                        .any(|blocker| blocker.intersects(&m.extent))
                })
                .collect()
        }
    }
}

/// Pairs a completed right-side sequence match against the left store.
fn pair_sequence(
    left_store: &mut Vec<PatternMatch>,
    right: &PatternMatch,
    mode: ConsumptionMode,
    out: &mut Vec<PatternMatch>,
) {
    let qualifies = |l: &PatternMatch| l.extent.end() < right.extent.start();
    match mode {
        ConsumptionMode::Recent => {
            // Most recent qualifying left; reused, not consumed.
            if let Some(l) = left_store
                .iter()
                .filter(|l| qualifies(l))
                .max_by_key(|l| (l.extent.end(), l.detected_at))
            {
                out.push(PatternMatch::merge(l, right));
            }
        }
        ConsumptionMode::Chronicle => {
            // Oldest qualifying left; consumed.
            if let Some(idx) = left_store
                .iter()
                .enumerate()
                .filter(|(_, l)| qualifies(l))
                .min_by_key(|(_, l)| (l.extent.start(), l.detected_at))
                .map(|(i, _)| i)
            {
                let l = left_store.remove(idx);
                out.push(PatternMatch::merge(&l, right));
            }
        }
        ConsumptionMode::Continuous => {
            for l in left_store.iter().filter(|l| qualifies(l)) {
                out.push(PatternMatch::merge(l, right));
            }
        }
    }
}

/// Pairs a completed match against the opposite store (conjunction).
fn pair_all(
    other_store: &mut Vec<PatternMatch>,
    m: &PatternMatch,
    mode: ConsumptionMode,
    m_is_left: bool,
    out: &mut Vec<PatternMatch>,
) {
    let emit = |other: &PatternMatch| {
        if m_is_left {
            PatternMatch::merge(m, other)
        } else {
            PatternMatch::merge(other, m)
        }
    };
    match mode {
        ConsumptionMode::Recent => {
            if let Some(other) = other_store
                .iter()
                .max_by_key(|o| (o.extent.end(), o.detected_at))
            {
                out.push(emit(other));
            }
        }
        ConsumptionMode::Chronicle => {
            if !other_store.is_empty() {
                let idx = other_store
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, o)| (o.extent.start(), o.detected_at))
                    .map(|(i, _)| i)
                    .expect("non-empty");
                let other = other_store.remove(idx);
                out.push(emit(&other));
            }
        }
        ConsumptionMode::Continuous => {
            for other in other_store.iter() {
                out.push(emit(other));
            }
        }
    }
}

/// Adds freshly completed sub-matches to a store, honoring the mode.
fn store(target: &mut Vec<PatternMatch>, new: Vec<PatternMatch>, mode: ConsumptionMode) {
    match mode {
        ConsumptionMode::Recent => {
            if let Some(last) = new.into_iter().last() {
                target.clear();
                target.push(last);
            }
        }
        ConsumptionMode::Chronicle | ConsumptionMode::Continuous => {
            target.extend(new);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use stem_core::{Layer, MoteId, ObserverId};
    use stem_spatial::{Point, SpatialExtent};
    use stem_temporal::TimeInterval;

    fn mk(event: &str, start: u64, end: u64) -> EventInstance {
        EventInstance::builder(
            ObserverId::Mote(MoteId::new(1)),
            EventId::new(event),
            Layer::Sensor,
        )
        .generated(TimePoint::new(end), Point::new(0.0, 0.0))
        .estimated(
            if start == end {
                TemporalExtent::punctual(TimePoint::new(start))
            } else {
                TemporalExtent::interval(
                    TimeInterval::new(TimePoint::new(start), TimePoint::new(end)).unwrap(),
                )
            },
            SpatialExtent::point(Point::new(0.0, 0.0)),
        )
        .build()
    }

    fn seq_ab() -> Pattern {
        Pattern::atom("a", "A").then(Pattern::atom("b", "B"))
    }

    #[test]
    fn sequence_requires_strict_before() {
        let mut det = PatternDetector::new(seq_ab(), ConsumptionMode::Chronicle, None);
        assert!(det.process(&mk("A", 10, 10)).is_empty());
        // Overlapping B does not match (10 not < 10).
        assert!(det.process(&mk("B", 10, 10)).is_empty());
        // Later B matches.
        let out = det.process(&mk("B", 11, 11));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].bindings[0].0, "a");
        assert_eq!(out[0].bindings[1].0, "b");
    }

    #[test]
    fn interval_semantics_hull_extent() {
        let mut det = PatternDetector::new(seq_ab(), ConsumptionMode::Chronicle, None);
        det.process(&mk("A", 5, 8));
        let out = det.process(&mk("B", 12, 20));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].extent.start(), TimePoint::new(5));
        assert_eq!(out[0].extent.end(), TimePoint::new(20));
        assert_eq!(out[0].detected_at, TimePoint::new(20));
    }

    #[test]
    fn consumption_modes_differ_on_multiple_lefts() {
        let feed = |mode| {
            let mut det = PatternDetector::new(seq_ab(), mode, None);
            det.process(&mk("A", 1, 1));
            det.process(&mk("A", 2, 2));
            det.process(&mk("B", 10, 10))
        };
        // Recent: pairs with the latest A only.
        let recent = feed(ConsumptionMode::Recent);
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].extent.start(), TimePoint::new(2));
        // Chronicle: pairs with the oldest A.
        let chron = feed(ConsumptionMode::Chronicle);
        assert_eq!(chron.len(), 1);
        assert_eq!(chron[0].extent.start(), TimePoint::new(1));
        // Continuous: pairs with both.
        let cont = feed(ConsumptionMode::Continuous);
        assert_eq!(cont.len(), 2);
    }

    #[test]
    fn chronicle_consumes_continuous_does_not() {
        let feed = |mode| {
            let mut det = PatternDetector::new(seq_ab(), mode, None);
            det.process(&mk("A", 1, 1));
            let first = det.process(&mk("B", 5, 5)).len();
            let second = det.process(&mk("B", 6, 6)).len();
            (first, second)
        };
        assert_eq!(
            feed(ConsumptionMode::Chronicle),
            (1, 0),
            "A consumed by first B"
        );
        assert_eq!(feed(ConsumptionMode::Continuous), (1, 1), "A reused");
        assert_eq!(
            feed(ConsumptionMode::Recent),
            (1, 1),
            "most recent A persists"
        );
    }

    #[test]
    fn conjunction_matches_any_order() {
        let p = Pattern::atom("a", "A").and(Pattern::atom("b", "B"));
        let mut det = PatternDetector::new(p.clone(), ConsumptionMode::Chronicle, None);
        assert!(det.process(&mk("B", 5, 5)).is_empty());
        let out = det.process(&mk("A", 10, 10));
        assert_eq!(out.len(), 1, "B-then-A still matches conjunction");
        // Bindings stay in atom order (a first).
        assert_eq!(out[0].bindings[0].0, "a");
    }

    #[test]
    fn disjunction_matches_either() {
        let p = Pattern::atom("a", "A").or(Pattern::atom("b", "B"));
        let mut det = PatternDetector::new(p, ConsumptionMode::Chronicle, None);
        assert_eq!(det.process(&mk("B", 5, 5)).len(), 1);
        assert_eq!(det.process(&mk("A", 6, 6)).len(), 1);
        assert!(det.process(&mk("C", 7, 7)).is_empty());
    }

    #[test]
    fn negation_blocks_intersecting_matches() {
        // A;B unless N occurred during the span.
        let p = seq_ab().unless("N");
        let mut det = PatternDetector::new(p.clone(), ConsumptionMode::Chronicle, None);
        det.process(&mk("A", 10, 10));
        det.process(&mk("N", 15, 15)); // inside the would-be hull [10, 20]
        assert!(det.process(&mk("B", 20, 20)).is_empty(), "N blocks");

        let mut det2 = PatternDetector::new(p, ConsumptionMode::Chronicle, None);
        det2.process(&mk("A", 10, 10));
        det2.process(&mk("N", 5, 5)); // before the hull
        assert_eq!(
            det2.process(&mk("B", 20, 20)).len(),
            1,
            "outside N is harmless"
        );
    }

    #[test]
    fn nested_pattern_three_stage_sequence() {
        // (A;B);C
        let p = seq_ab().then(Pattern::atom("c", "C"));
        let mut det = PatternDetector::new(p, ConsumptionMode::Chronicle, None);
        det.process(&mk("A", 1, 1));
        det.process(&mk("B", 5, 5));
        let out = det.process(&mk("C", 9, 9));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].bindings.len(), 3);
        assert_eq!(out[0].extent.start(), TimePoint::new(1));
        assert_eq!(out[0].extent.end(), TimePoint::new(9));
    }

    #[test]
    fn horizon_prunes_stale_partials() {
        let mut det = PatternDetector::new(
            seq_ab(),
            ConsumptionMode::Continuous,
            Some(Duration::new(10)),
        );
        det.process(&mk("A", 1, 1));
        det.process(&mk("A", 2, 2));
        assert_eq!(det.stored_partials(), 2);
        // An event at t=50 pushes the cutoff to 40, dropping both As
        // before the B can pair with them.
        let out = det.process(&mk("B", 50, 50));
        assert!(out.is_empty(), "stale lefts must be pruned before pairing");
        assert_eq!(det.stored_partials(), 0);
    }

    #[test]
    fn tags_follow_constituents_through_merge() {
        let mut det = PatternDetector::new(seq_ab(), ConsumptionMode::Chronicle, None);
        assert!(det.process_tagged(&mk("A", 1, 1), 101).is_empty());
        let out = det.process_tagged(&mk("B", 5, 5), 202);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].tags, vec![101, 202], "tags parallel the bindings");

        let mut untraced = PatternDetector::new(seq_ab(), ConsumptionMode::Chronicle, None);
        untraced.process(&mk("A", 1, 1));
        let out = untraced.process(&mk("B", 5, 5));
        assert_eq!(out[0].tags, vec![NO_TAG, NO_TAG]);
    }

    #[test]
    fn tags_survive_state_round_trip() {
        let mut live = PatternDetector::new(seq_ab(), ConsumptionMode::Chronicle, None);
        live.process_tagged(&mk("A", 1, 1), 7);
        let mut buf = Vec::new();
        live.save_state(&mut buf);
        let mut resumed = PatternDetector::new(seq_ab(), ConsumptionMode::Chronicle, None);
        let mut bytes = buf.as_slice();
        resumed.load_state(&mut bytes).unwrap();
        let out = resumed.process_tagged(&mk("B", 5, 5), 9);
        assert_eq!(out[0].tags, vec![7, 9], "stored partial keeps its tag");
    }

    #[test]
    fn pattern_introspection() {
        let p = seq_ab().unless("N");
        assert_eq!(
            p.event_types(),
            vec![EventId::new("A"), EventId::new("B"), EventId::new("N")]
        );
        assert_eq!(p.binding_names(), vec!["a".to_string(), "b".to_string()]);
    }

    /// Snapshot round-trip over every operator shape and consumption
    /// mode: a restored detector (fresh compile of the same pattern +
    /// loaded state) completes matches exactly as the original would.
    #[test]
    fn state_round_trips_across_operator_shapes_and_modes() {
        let patterns = vec![
            seq_ab(),
            Pattern::atom("a", "A").and(Pattern::atom("b", "B")),
            Pattern::atom("a", "A").or(Pattern::atom("b", "B")),
            seq_ab().unless("N"),
            seq_ab().then(Pattern::atom("c", "C")),
        ];
        for pattern in patterns {
            for mode in [
                ConsumptionMode::Recent,
                ConsumptionMode::Chronicle,
                ConsumptionMode::Continuous,
            ] {
                let mut live = PatternDetector::new(pattern.clone(), mode, Some(Duration::new(50)));
                // Accumulate partial state: lefts, a blocker, no completion yet.
                live.process(&mk("A", 1, 2));
                live.process(&mk("N", 3, 3));
                live.process(&mk("A", 4, 5));

                let mut buf = Vec::new();
                live.save_state(&mut buf);
                let mut resumed =
                    PatternDetector::new(pattern.clone(), mode, Some(Duration::new(50)));
                let mut bytes = buf.as_slice();
                resumed.load_state(&mut bytes).unwrap();
                assert!(bytes.is_empty());
                assert_eq!(resumed.stored_partials(), live.stored_partials());

                for inst in [mk("B", 7, 7), mk("C", 9, 9), mk("B", 60, 60)] {
                    let a = live.process(&inst);
                    let b = resumed.process(&inst);
                    assert_eq!(a, b, "pattern {pattern:?} mode {mode} diverged");
                }
            }
        }
    }

    /// Loading state saved from a different pattern shape is a
    /// configuration error, reported — never silently restored.
    #[test]
    fn state_shape_mismatch_is_rejected() {
        let mut seq = PatternDetector::new(seq_ab(), ConsumptionMode::Chronicle, None);
        seq.process(&mk("A", 1, 1));
        let mut buf = Vec::new();
        seq.save_state(&mut buf);
        let mut atom =
            PatternDetector::new(Pattern::atom("a", "A"), ConsumptionMode::Chronicle, None);
        let mut bytes = buf.as_slice();
        assert!(atom.load_state(&mut bytes).is_err());
    }

    proptest! {
        /// Continuous-mode sequence detection equals the quadratic oracle:
        /// every (A, B) pair with A.end < B.start, exactly once.
        #[test]
        fn continuous_sequence_matches_oracle(
            events in proptest::collection::vec((0u8..2, 0u64..50), 1..40)
        ) {
            let mut det = PatternDetector::new(seq_ab(), ConsumptionMode::Continuous, None);
            let mut a_times: Vec<u64> = Vec::new();
            let mut found = 0usize;
            let mut expected = 0usize;
            // Feed in arrival order = time order (in-order stream).
            let mut sorted = events.clone();
            sorted.sort_by_key(|&(_, t)| t);
            for (kind, t) in sorted {
                if kind == 0 {
                    det.process(&mk("A", t, t));
                    a_times.push(t);
                } else {
                    expected += a_times.iter().filter(|&&at| at < t).count();
                    found += det.process(&mk("B", t, t)).len();
                }
            }
            prop_assert_eq!(found, expected);
        }

        /// Matches' extents always cover all constituent extents.
        #[test]
        fn match_extent_covers_constituents(
            times in proptest::collection::vec(0u64..100, 2..30)
        ) {
            let mut det = PatternDetector::new(
                Pattern::atom("a", "A").and(Pattern::atom("b", "B")),
                ConsumptionMode::Continuous,
                None,
            );
            let mut sorted = times.clone();
            sorted.sort_unstable();
            for (i, t) in sorted.into_iter().enumerate() {
                let ev = if i % 2 == 0 { "A" } else { "B" };
                for m in det.process(&mk(ev, t, t)) {
                    for (_, inst) in &m.bindings {
                        prop_assert!(
                            m.extent.as_interval().contains_interval(
                                inst.estimated_time().as_interval()
                            )
                        );
                    }
                }
            }
        }
    }
}
