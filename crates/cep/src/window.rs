//! Time- and count-based windows over instance streams.

use std::collections::VecDeque;
use stem_core::EventInstance;
use stem_temporal::{Duration, TimePoint};

/// A sliding time window: retains instances whose generation time lies
/// within `duration` of the latest generation time seen.
///
/// # Example
///
/// ```
/// use stem_cep::TimeWindow;
/// use stem_core::{EventId, EventInstance, Layer, MoteId, ObserverId};
/// use stem_spatial::Point;
/// use stem_temporal::{Duration, TimePoint};
///
/// let mk = |t: u64| EventInstance::builder(
///     ObserverId::Mote(MoteId::new(1)), EventId::new("e"), Layer::Sensor,
/// ).generated(TimePoint::new(t), Point::new(0.0, 0.0)).build();
///
/// let mut w = TimeWindow::new(Duration::new(10));
/// w.push(mk(100));
/// w.push(mk(105));
/// w.push(mk(120)); // evicts t=100 and t=105
/// assert_eq!(w.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TimeWindow {
    duration: Duration,
    items: VecDeque<EventInstance>,
}

impl TimeWindow {
    /// Creates a window of the given span.
    #[must_use]
    pub fn new(duration: Duration) -> Self {
        TimeWindow {
            duration,
            items: VecDeque::new(),
        }
    }

    /// The window span.
    #[must_use]
    pub fn duration(&self) -> Duration {
        self.duration
    }

    /// Inserts an instance (assumed in generation-time order) and evicts
    /// anything that fell out of the window.
    pub fn push(&mut self, instance: EventInstance) {
        let now = instance.generation_time();
        self.items.push_back(instance);
        self.evict_before(now.checked_sub(self.duration).unwrap_or(TimePoint::EPOCH));
    }

    /// Evicts instances generated strictly before `cutoff`.
    pub fn evict_before(&mut self, cutoff: TimePoint) {
        while let Some(front) = self.items.front() {
            if front.generation_time() < cutoff {
                self.items.pop_front();
            } else {
                break;
            }
        }
    }

    /// Current contents in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &EventInstance> {
        self.items.iter()
    }

    /// Number of retained instances.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if the window is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A count window: retains the most recent `capacity` instances.
#[derive(Debug, Clone)]
pub struct CountWindow {
    capacity: usize,
    items: VecDeque<EventInstance>,
}

impl CountWindow {
    /// Creates a window holding at most `capacity` instances.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        CountWindow {
            capacity,
            items: VecDeque::with_capacity(capacity),
        }
    }

    /// Inserts an instance, evicting the oldest when full.
    pub fn push(&mut self, instance: EventInstance) {
        if self.items.len() == self.capacity {
            self.items.pop_front();
        }
        self.items.push_back(instance);
    }

    /// Current contents, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &EventInstance> {
        self.items.iter()
    }

    /// Number of retained instances.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if the window is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stem_core::{EventId, Layer, MoteId, ObserverId};
    use stem_spatial::Point;

    fn mk(t: u64) -> EventInstance {
        EventInstance::builder(
            ObserverId::Mote(MoteId::new(1)),
            EventId::new("e"),
            Layer::Sensor,
        )
        .generated(TimePoint::new(t), Point::new(0.0, 0.0))
        .build()
    }

    #[test]
    fn time_window_keeps_inclusive_boundary() {
        let mut w = TimeWindow::new(Duration::new(10));
        w.push(mk(100));
        w.push(mk(110)); // cutoff 100: t=100 stays (not strictly before)
        assert_eq!(w.len(), 2);
        w.push(mk(111)); // cutoff 101: t=100 evicted
        assert_eq!(w.len(), 2);
        let times: Vec<u64> = w.iter().map(|i| i.generation_time().ticks()).collect();
        assert_eq!(times, vec![110, 111]);
    }

    #[test]
    fn time_window_manual_eviction() {
        let mut w = TimeWindow::new(Duration::new(100));
        for t in [1, 2, 3] {
            w.push(mk(t));
        }
        w.evict_before(TimePoint::new(3));
        assert_eq!(w.len(), 1);
        assert!(!w.is_empty());
    }

    #[test]
    fn count_window_evicts_oldest() {
        let mut w = CountWindow::new(3);
        for t in 0..5 {
            w.push(mk(t));
        }
        assert_eq!(w.len(), 3);
        let times: Vec<u64> = w.iter().map(|i| i.generation_time().ticks()).collect();
        assert_eq!(times, vec![2, 3, 4]);
        assert_eq!(w.capacity(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn count_window_rejects_zero() {
        let _ = CountWindow::new(0);
    }
}
