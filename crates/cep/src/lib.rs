//! # stem-cep — complex event processing with interval semantics
//!
//! The online detection engine for the STEM event model. The paper
//! requires composite events built from "AND, OR, NOT" plus temporal
//! sequencing (Secs. 2, 4.1), support for *both* punctual and interval
//! events, and deployment in a distributed setting where arrival order is
//! imperfect. This crate provides:
//!
//! * [`Pattern`] / [`PatternDetector`] — Snoop-style composite operators
//!   (sequence, conjunction, disjunction, negation) with SnoopIB interval
//!   semantics and selectable [`ConsumptionMode`]s
//!   (recent/chronicle/continuous),
//! * [`CompositeDetector`] — pattern matching fused with the paper's
//!   composite condition evaluation (Eq. 4.5) and instance generation
//!   (Def. 4.3/4.4),
//! * [`SustainedDetector`] — interval events à la "user A is nearby
//!   window B for the last 30 minutes", with hysteresis and minimum
//!   duration,
//! * [`ReorderBuffer`] — watermark-based out-of-order handling,
//! * [`TimeWindow`] / [`CountWindow`] — stream windows.
//!
//! This crate depends only on `stem-core` (+ the time/space crates): it is
//! usable as a standalone CEP library over any [`stem_core::EventInstance`]
//! stream, independent of the simulators.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod detector;
mod pattern;
mod reorder;
mod sustained;
mod window;

pub use detector::CompositeDetector;
pub use pattern::{ConsumptionMode, Pattern, PatternDetector, PatternMatch, NO_TAG};
pub use reorder::ReorderBuffer;
pub use sustained::{SustainedConfig, SustainedDetector, SustainedEvent};
pub use window::{CountWindow, TimeWindow};
