//! Sustained-condition (interval event) detection.
//!
//! The paper's running example — "user A is nearby window B for the last
//! 30 minutes" — is an *interval event*: it "starts once the user is
//! detected entering into the area and ends once the user is detected
//! leaving this area" (Sec. 4.2). This detector turns a sampled predicate
//! (or thresholded value with hysteresis) into begin/end notifications and
//! completed intervals with a minimum-duration filter.

use serde::{Deserialize, Serialize};
use stem_core::codec::{self, StateCodec};
use stem_temporal::{Duration, TimeInterval, TimePoint};

/// A notification from the sustained detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SustainedEvent {
    /// The condition has now held for the minimum duration (emitted once
    /// per episode, at the instant the threshold is crossed).
    Began {
        /// When the condition started holding.
        since: TimePoint,
        /// The sample time at which the minimum duration was reached.
        confirmed_at: TimePoint,
    },
    /// The condition stopped holding after a qualifying episode; the
    /// full closed interval is reported.
    Ended {
        /// The completed occurrence interval.
        interval: TimeInterval,
    },
}

/// Configuration for [`SustainedDetector`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SustainedConfig {
    /// The episode must hold at least this long to count (the "for the
    /// last 30 minutes" part). Zero reports every episode.
    pub min_duration: Duration,
    /// Value must rise to `enter_threshold` to start an episode…
    pub enter_threshold: f64,
    /// …and fall below `exit_threshold` to end it (hysteresis;
    /// `exit_threshold <= enter_threshold`).
    pub exit_threshold: f64,
}

impl SustainedConfig {
    /// A boolean-predicate configuration (no hysteresis band).
    #[must_use]
    pub fn boolean(min_duration: Duration) -> Self {
        SustainedConfig {
            min_duration,
            enter_threshold: 0.5,
            exit_threshold: 0.5,
        }
    }
}

/// Detects sustained episodes of a sampled condition.
///
/// Feed time-ordered samples via [`SustainedDetector::update_value`] (or
/// [`SustainedDetector::update`] for booleans). The detector emits
/// [`SustainedEvent::Began`] when an episode reaches the minimum duration
/// and [`SustainedEvent::Ended`] when it stops; short episodes emit
/// nothing.
///
/// # Example
///
/// ```
/// use stem_cep::{SustainedConfig, SustainedDetector, SustainedEvent};
/// use stem_temporal::{Duration, TimePoint};
///
/// let mut det = SustainedDetector::new(SustainedConfig::boolean(Duration::new(10)));
/// assert_eq!(det.update(TimePoint::new(0), false), None);
/// assert_eq!(det.update(TimePoint::new(5), true), None);
/// // Held since t=5; at t=15 the 10-tick minimum is reached.
/// assert!(matches!(
///     det.update(TimePoint::new(15), true),
///     Some(SustainedEvent::Began { .. })
/// ));
/// // Ends at t=30.
/// assert!(matches!(
///     det.update(TimePoint::new(30), false),
///     Some(SustainedEvent::Ended { .. })
/// ));
/// ```
#[derive(Debug, Clone)]
pub struct SustainedDetector {
    config: SustainedConfig,
    holding_since: Option<TimePoint>,
    began_emitted: bool,
    last_sample: Option<TimePoint>,
    last_true: Option<TimePoint>,
}

impl SustainedDetector {
    /// Creates a detector.
    ///
    /// # Panics
    ///
    /// Panics if `exit_threshold > enter_threshold`.
    #[must_use]
    pub fn new(config: SustainedConfig) -> Self {
        assert!(
            config.exit_threshold <= config.enter_threshold,
            "hysteresis requires exit_threshold <= enter_threshold"
        );
        SustainedDetector {
            config,
            holding_since: None,
            began_emitted: false,
            last_sample: None,
            last_true: None,
        }
    }

    /// Returns the start of the currently-holding episode, if any.
    #[must_use]
    pub fn holding_since(&self) -> Option<TimePoint> {
        self.holding_since
    }

    /// Feeds a boolean sample at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if samples go backward in time.
    pub fn update(&mut self, t: TimePoint, active: bool) -> Option<SustainedEvent> {
        let v = if active {
            self.config.enter_threshold
        } else {
            self.config.exit_threshold - 1.0
        };
        self.update_value(t, v)
    }

    /// Feeds a numeric sample at time `t`; the episode starts when the
    /// value reaches `enter_threshold` and ends when it drops below
    /// `exit_threshold`.
    ///
    /// # Panics
    ///
    /// Panics if samples go backward in time.
    pub fn update_value(&mut self, t: TimePoint, value: f64) -> Option<SustainedEvent> {
        if let Some(last) = self.last_sample {
            assert!(t >= last, "samples must be time-ordered");
        }
        self.last_sample = Some(t);

        match self.holding_since {
            None => {
                if value >= self.config.enter_threshold {
                    self.holding_since = Some(t);
                    self.last_true = Some(t);
                    self.began_emitted = false;
                    // Zero minimum: confirmed immediately.
                    if self.config.min_duration.is_zero() {
                        self.began_emitted = true;
                        return Some(SustainedEvent::Began {
                            since: t,
                            confirmed_at: t,
                        });
                    }
                }
                None
            }
            Some(since) => {
                if value < self.config.exit_threshold {
                    // Episode ends at the last time it was observed true.
                    let end = self.last_true.unwrap_or(t);
                    let qualified = self.began_emitted
                        || end
                            .duration_since(since)
                            .is_some_and(|d| d >= self.config.min_duration);
                    self.holding_since = None;
                    self.last_true = None;
                    let was_emitted = self.began_emitted;
                    self.began_emitted = false;
                    if qualified || was_emitted {
                        return Some(SustainedEvent::Ended {
                            interval: TimeInterval::spanning(since, end),
                        });
                    }
                    None
                } else {
                    self.last_true = Some(t);
                    if !self.began_emitted
                        && t.duration_since(since)
                            .is_some_and(|d| d >= self.config.min_duration)
                    {
                        self.began_emitted = true;
                        return Some(SustainedEvent::Began {
                            since,
                            confirmed_at: t,
                        });
                    }
                    None
                }
            }
        }
    }

    /// Flushes an in-progress qualifying episode at the stream horizon
    /// `t`, returning its interval (used at simulation end).
    pub fn finish(&mut self, t: TimePoint) -> Option<SustainedEvent> {
        let since = self.holding_since.take()?;
        let end = self.last_true.unwrap_or(t).min(t);
        let qualified = self.began_emitted
            || end
                .duration_since(since)
                .is_some_and(|d| d >= self.config.min_duration);
        self.began_emitted = false;
        self.last_true = None;
        if qualified {
            Some(SustainedEvent::Ended {
                interval: TimeInterval::spanning(since, end),
            })
        } else {
            None
        }
    }
}

/// The episode-tracking state (the configuration — thresholds and
/// minimum duration — is re-supplied at construction and validated by
/// the caller, not stored).
impl StateCodec for SustainedDetector {
    fn save_state(&self, buf: &mut Vec<u8>) {
        codec::encode_opt_time_point(self.holding_since, buf);
        codec::put_u8(buf, u8::from(self.began_emitted));
        codec::encode_opt_time_point(self.last_sample, buf);
        codec::encode_opt_time_point(self.last_true, buf);
    }

    fn load_state(&mut self, bytes: &mut &[u8]) -> codec::CodecResult<()> {
        self.holding_since = codec::decode_opt_time_point(bytes)?;
        self.began_emitted = codec::get_u8(bytes)? != 0;
        self.last_sample = codec::decode_opt_time_point(bytes)?;
        self.last_true = codec::decode_opt_time_point(bytes)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn boolean(min: u64) -> SustainedDetector {
        SustainedDetector::new(SustainedConfig::boolean(Duration::new(min)))
    }

    #[test]
    fn short_episode_is_silent() {
        let mut det = boolean(10);
        assert_eq!(det.update(TimePoint::new(0), true), None);
        assert_eq!(det.update(TimePoint::new(5), true), None);
        assert_eq!(det.update(TimePoint::new(8), false), None, "8 < 10 ticks");
        assert_eq!(det.holding_since(), None);
    }

    #[test]
    fn qualifying_episode_emits_began_then_ended() {
        let mut det = boolean(10);
        det.update(TimePoint::new(0), true);
        let began = det.update(TimePoint::new(10), true).unwrap();
        assert_eq!(
            began,
            SustainedEvent::Began {
                since: TimePoint::new(0),
                confirmed_at: TimePoint::new(10)
            }
        );
        // No duplicate Began.
        assert_eq!(det.update(TimePoint::new(20), true), None);
        let ended = det.update(TimePoint::new(25), false).unwrap();
        assert_eq!(
            ended,
            SustainedEvent::Ended {
                interval: TimeInterval::spanning(TimePoint::new(0), TimePoint::new(20))
            },
            "interval ends at the last true sample"
        );
    }

    #[test]
    fn zero_minimum_reports_every_episode() {
        let mut det = boolean(0);
        let began = det.update(TimePoint::new(3), true).unwrap();
        assert!(matches!(began, SustainedEvent::Began { since, .. } if since == TimePoint::new(3)));
        let ended = det.update(TimePoint::new(4), false).unwrap();
        assert!(matches!(ended, SustainedEvent::Ended { .. }));
    }

    #[test]
    fn hysteresis_prevents_flapping() {
        let mut det = SustainedDetector::new(SustainedConfig {
            min_duration: Duration::new(0),
            enter_threshold: 30.0,
            exit_threshold: 25.0,
        });
        assert!(det.update_value(TimePoint::new(0), 20.0).is_none());
        assert!(matches!(
            det.update_value(TimePoint::new(1), 31.0),
            Some(SustainedEvent::Began { .. })
        ));
        // Dipping to 27 (between thresholds) does NOT end the episode.
        assert!(det.update_value(TimePoint::new(2), 27.0).is_none());
        assert!(det.holding_since().is_some());
        // Dropping below 25 ends it.
        assert!(matches!(
            det.update_value(TimePoint::new(3), 24.0),
            Some(SustainedEvent::Ended { .. })
        ));
    }

    #[test]
    fn finish_flushes_open_episode() {
        let mut det = boolean(5);
        det.update(TimePoint::new(0), true);
        det.update(TimePoint::new(7), true);
        let flushed = det.finish(TimePoint::new(7)).unwrap();
        assert_eq!(
            flushed,
            SustainedEvent::Ended {
                interval: TimeInterval::spanning(TimePoint::new(0), TimePoint::new(7))
            }
        );
        assert_eq!(det.finish(TimePoint::new(8)), None, "nothing left to flush");
    }

    #[test]
    fn finish_of_short_episode_is_none() {
        let mut det = boolean(50);
        det.update(TimePoint::new(0), true);
        det.update(TimePoint::new(3), true);
        assert_eq!(det.finish(TimePoint::new(3)), None);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn rejects_backward_samples() {
        let mut det = boolean(1);
        det.update(TimePoint::new(10), true);
        det.update(TimePoint::new(5), true);
    }

    #[test]
    #[should_panic(expected = "hysteresis requires")]
    fn rejects_inverted_thresholds() {
        let _ = SustainedDetector::new(SustainedConfig {
            min_duration: Duration::ZERO,
            enter_threshold: 10.0,
            exit_threshold: 20.0,
        });
    }

    /// Snapshot round-trip across every episode phase: idle, holding
    /// but unconfirmed, and confirmed-open. The restored detector must
    /// continue the episode exactly where the original left it.
    #[test]
    fn state_round_trips_across_episode_phases() {
        let phases: [&[(u64, bool)]; 3] = [
            &[(0, false)],                       // idle
            &[(0, true), (5, true)],             // holding, not yet confirmed
            &[(0, true), (5, true), (12, true)], // Began emitted, episode open
        ];
        for (i, samples) in phases.iter().enumerate() {
            let mut live = boolean(10);
            let mut resumed = boolean(10);
            for &(t, b) in *samples {
                let _ = live.update(TimePoint::new(t), b);
            }
            let mut buf = Vec::new();
            live.save_state(&mut buf);
            let mut bytes = buf.as_slice();
            resumed.load_state(&mut bytes).unwrap();
            assert!(bytes.is_empty(), "phase {i}: trailing bytes");
            assert_eq!(resumed.holding_since(), live.holding_since(), "phase {i}");
            // Both close identically from here on.
            for t in [20u64, 30, 40] {
                assert_eq!(
                    live.update(TimePoint::new(t), t < 30),
                    resumed.update(TimePoint::new(t), t < 30),
                    "phase {i} diverged at t={t}"
                );
            }
            assert_eq!(
                live.finish(TimePoint::new(50)),
                resumed.finish(TimePoint::new(50))
            );
        }
    }

    proptest! {
        /// Every Ended interval is at least min_duration long, and Began /
        /// Ended alternate.
        #[test]
        fn episodes_respect_minimum(
            samples in proptest::collection::vec(proptest::bool::ANY, 1..120),
            min in 0u64..20,
        ) {
            let mut det = boolean(min);
            let mut expecting_end = false;
            let mut process = |ev: Option<SustainedEvent>| -> Result<(), TestCaseError> {
                match ev {
                    Some(SustainedEvent::Began { .. }) => {
                        prop_assert!(!expecting_end, "double Began");
                        expecting_end = true;
                    }
                    Some(SustainedEvent::Ended { interval }) => {
                        prop_assert!(expecting_end, "Ended without Began");
                        prop_assert!(interval.length().ticks() >= min);
                        expecting_end = false;
                    }
                    None => {}
                }
                Ok(())
            };
            for (i, &b) in samples.iter().enumerate() {
                process(det.update(TimePoint::new(i as u64 * 2), b))?;
            }
            process(det.finish(TimePoint::new(samples.len() as u64 * 2)))?;
        }
    }
}
