//! Out-of-order arrival handling.
//!
//! "In a distributed environment, it may only be possible to achieve
//! partial ordering … for the events" (Sec. 2); stream engines typically
//! assume "the events have already been ordered by a third party" [14].
//! This buffer *is* that third party: it holds arrivals for a slack
//! period and releases them in generation-time order behind a watermark.
//! EXP-A1 measures the accuracy/latency trade-off of the slack.

use std::collections::BTreeMap;
use stem_core::{codec, EventInstance};
use stem_temporal::{Duration, TimePoint};

/// A watermark-based reorder buffer.
///
/// Items are buffered under an explicit ordering key (for
/// [`EventInstance`]s, their generation time via
/// [`ReorderBuffer::push`]); whenever the watermark (latest seen key
/// minus the slack) advances, all buffered items at or below it are
/// released in order. Items arriving with a key already behind the
/// watermark are *late*: they are dropped and counted.
///
/// The payload type is generic so stream stages can carry metadata
/// through the reordering (the engine's shard workers buffer
/// `(evaluation time, instance)` pairs keyed by evaluation time).
///
/// # Example
///
/// ```
/// use stem_cep::ReorderBuffer;
/// use stem_core::{EventId, EventInstance, Layer, MoteId, ObserverId};
/// use stem_spatial::Point;
/// use stem_temporal::{Duration, TimePoint};
///
/// let mk = |t: u64| EventInstance::builder(
///     ObserverId::Mote(MoteId::new(1)), EventId::new("e"), Layer::Sensor,
/// ).generated(TimePoint::new(t), Point::new(0.0, 0.0)).build();
///
/// let mut buf = ReorderBuffer::new(Duration::new(10));
/// assert!(buf.push(mk(100)).is_empty(), "held back within slack");
/// // t=120 advances the watermark to 110, releasing the t=100 instance.
/// let released = buf.push(mk(120));
/// assert_eq!(released.len(), 1);
/// assert_eq!(released[0].generation_time(), TimePoint::new(100));
/// ```
#[derive(Debug, Clone)]
pub struct ReorderBuffer<T = EventInstance> {
    slack: Duration,
    buffer: BTreeMap<(TimePoint, u64), T>,
    max_seen: Option<TimePoint>,
    tie: u64,
    late_dropped: u64,
    released: u64,
    recovering: bool,
}

impl<T> Default for ReorderBuffer<T> {
    fn default() -> Self {
        ReorderBuffer::new(Duration::ZERO)
    }
}

impl<T> ReorderBuffer<T> {
    /// Creates a buffer with the given watermark slack.
    #[must_use]
    pub fn new(slack: Duration) -> Self {
        ReorderBuffer {
            slack,
            buffer: BTreeMap::new(),
            max_seen: None,
            tie: 0,
            late_dropped: 0,
            released: 0,
            recovering: false,
        }
    }

    /// Marks the buffer as replaying a durable log (crash recovery).
    ///
    /// The buffer itself behaves identically while the flag is set —
    /// replayed pushes and heartbeat observations must rebuild state
    /// bit-for-bit, so nothing may be suppressed *here*. The flag exists
    /// for the embedding stream stage: out-of-band, side-effecting work
    /// keyed off heartbeat observation — silence probes above all — must
    /// check [`ReorderBuffer::is_recovering`] and stand down, because
    /// the log already carries every probe that fired before the crash
    /// and replaying it will fire them again. A live probe accepted
    /// mid-recovery would therefore double-fire.
    pub fn begin_recovery(&mut self) {
        self.recovering = true;
    }

    /// Clears the recovery flag: the log has been replayed and live
    /// stream input (including live silence probes) may resume.
    pub fn end_recovery(&mut self) {
        self.recovering = false;
    }

    /// Whether the buffer is currently replaying a durable log.
    #[must_use]
    pub fn is_recovering(&self) -> bool {
        self.recovering
    }

    /// The configured slack.
    #[must_use]
    pub fn slack(&self) -> Duration {
        self.slack
    }

    /// The current watermark: instances at or before it are final.
    #[must_use]
    pub fn watermark(&self) -> Option<TimePoint> {
        self.max_seen
            .map(|m| m.checked_sub(self.slack).unwrap_or(TimePoint::EPOCH))
    }

    /// Instances dropped as late so far.
    #[must_use]
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    /// Instances released in order so far.
    #[must_use]
    pub fn released(&self) -> u64 {
        self.released
    }

    /// Instances currently held.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buffer.len()
    }

    /// Accepts an arrival under an explicit ordering key and returns any
    /// items now releasable, in key order (FIFO among equal keys).
    pub fn push_at(&mut self, key: TimePoint, item: T) -> Vec<T> {
        if let Some(w) = self.watermark() {
            if key < w {
                self.late_dropped += 1;
                return Vec::new();
            }
        }
        self.tie += 1;
        self.buffer.insert((key, self.tie), item);
        self.max_seen = Some(self.max_seen.map_or(key, |m| m.max(key)));
        self.drain()
    }

    /// Advances the watermark from an out-of-band time observation and
    /// returns any items that become releasable, in order.
    ///
    /// A sharded ingest path needs this: each shard's buffer only sees
    /// the instances routed to it, so its locally-observed maximum
    /// generation time lags the stream's. The router broadcasts its
    /// global maximum as a heartbeat and every shard applies it here,
    /// keeping late-drop decisions aligned with a single-shard run.
    pub fn observe(&mut self, t: TimePoint) -> Vec<T> {
        self.max_seen = Some(self.max_seen.map_or(t, |m| m.max(t)));
        self.drain()
    }

    /// Releases everything still buffered (stream end), in order.
    pub fn flush(&mut self) -> Vec<T> {
        let out: Vec<T> = std::mem::take(&mut self.buffer).into_values().collect();
        self.released += out.len() as u64;
        out
    }

    /// Serializes the buffer's runtime state — watermark clock, tie and
    /// drop/release counters, and every held item — into `buf`, using
    /// `encode_item` for the generic payloads. The slack is
    /// configuration, not state: it is re-supplied at construction.
    pub fn save_state(&self, buf: &mut Vec<u8>, mut encode_item: impl FnMut(&T, &mut Vec<u8>)) {
        codec::encode_opt_time_point(self.max_seen, buf);
        codec::put_u64(buf, self.tie);
        codec::put_u64(buf, self.late_dropped);
        codec::put_u64(buf, self.released);
        codec::put_u32(buf, u32::try_from(self.buffer.len()).unwrap_or(u32::MAX));
        for ((key, tie), item) in &self.buffer {
            codec::encode_time_point(*key, buf);
            codec::put_u64(buf, *tie);
            encode_item(item, buf);
        }
    }

    /// Restores state saved by [`ReorderBuffer::save_state`] into this
    /// buffer, replacing whatever it held, with `decode_item` decoding
    /// the generic payloads.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`](stem_core::codec::CodecError) on
    /// truncation or payloads that fail to decode.
    pub fn load_state(
        &mut self,
        bytes: &mut &[u8],
        mut decode_item: impl FnMut(&mut &[u8]) -> stem_core::codec::CodecResult<T>,
    ) -> stem_core::codec::CodecResult<()> {
        self.max_seen = codec::decode_opt_time_point(bytes)?;
        self.tie = codec::get_u64(bytes)?;
        self.late_dropped = codec::get_u64(bytes)?;
        self.released = codec::get_u64(bytes)?;
        let n = codec::get_u32(bytes)? as usize;
        self.buffer.clear();
        for _ in 0..n {
            let key = codec::decode_time_point(bytes)?;
            let tie = codec::get_u64(bytes)?;
            let item = decode_item(bytes)?;
            self.buffer.insert((key, tie), item);
        }
        Ok(())
    }

    fn drain(&mut self) -> Vec<T> {
        let Some(w) = self.watermark() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        while let Some(entry) = self.buffer.first_entry() {
            if entry.key().0 <= w {
                out.push(entry.remove());
            } else {
                break;
            }
        }
        self.released += out.len() as u64;
        out
    }
}

impl ReorderBuffer<EventInstance> {
    /// Accepts an instance keyed by its generation time and returns any
    /// instances now releasable, in generation-time order (FIFO among
    /// equal times).
    pub fn push(&mut self, instance: EventInstance) -> Vec<EventInstance> {
        let t = instance.generation_time();
        self.push_at(t, instance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use stem_core::{EventId, Layer, MoteId, ObserverId};
    use stem_spatial::Point;

    fn mk(t: u64) -> EventInstance {
        EventInstance::builder(
            ObserverId::Mote(MoteId::new(1)),
            EventId::new("e"),
            Layer::Sensor,
        )
        .generated(TimePoint::new(t), Point::new(0.0, 0.0))
        .build()
    }

    #[test]
    fn reorders_within_slack() {
        let mut buf = ReorderBuffer::new(Duration::new(10));
        assert!(buf.push(mk(105)).is_empty());
        assert!(
            buf.push(mk(100)).is_empty(),
            "older arrival buffered, not dropped"
        );
        let out = buf.push(mk(120));
        let times: Vec<u64> = out.iter().map(|i| i.generation_time().ticks()).collect();
        assert_eq!(times, vec![100, 105], "released in generation order");
        assert_eq!(buf.pending(), 1, "the 120 instance is still held");
        assert_eq!(buf.late_dropped(), 0);
    }

    #[test]
    fn drops_late_arrivals_beyond_slack() {
        let mut buf = ReorderBuffer::new(Duration::new(5));
        buf.push(mk(100));
        buf.push(mk(200)); // watermark now 195
        assert!(buf.push(mk(100)).is_empty());
        assert_eq!(buf.late_dropped(), 1);
    }

    #[test]
    fn zero_slack_releases_immediately_in_order() {
        let mut buf = ReorderBuffer::new(Duration::ZERO);
        let out = buf.push(mk(10));
        assert_eq!(
            out.len(),
            1,
            "watermark equals max seen, so t=10 releases at once"
        );
        // An out-of-order arrival is dropped immediately.
        assert!(buf.push(mk(5)).is_empty());
        assert_eq!(buf.late_dropped(), 1);
    }

    #[test]
    fn observe_advances_watermark_without_enqueueing() {
        let mut buf = ReorderBuffer::new(Duration::new(10));
        assert!(buf.push(mk(100)).is_empty());
        // A heartbeat for t=120 releases the t=100 instance exactly as a
        // t=120 arrival would, but holds nothing new.
        let out = buf.observe(TimePoint::new(120));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].generation_time(), TimePoint::new(100));
        assert_eq!(buf.pending(), 0);
        assert_eq!(buf.watermark(), Some(TimePoint::new(110)));
        // Late arrivals behind the observed watermark are dropped.
        assert!(buf.push(mk(50)).is_empty());
        assert_eq!(buf.late_dropped(), 1);
        // Heartbeats never move the watermark backwards.
        buf.observe(TimePoint::new(60));
        assert_eq!(buf.watermark(), Some(TimePoint::new(110)));
    }

    #[test]
    fn recovery_flag_flips_without_changing_stream_behaviour() {
        // Re-ingesting a log during recovery must rebuild state exactly,
        // so the buffer's accept/release/late-drop behaviour is
        // identical with the flag set; the flag only tells the embedding
        // stage to hold side-effecting heartbeat work (silence probes)
        // until the replay is done.
        let mut live = ReorderBuffer::new(Duration::new(10));
        let mut recovering = ReorderBuffer::new(Duration::new(10));
        recovering.begin_recovery();
        assert!(recovering.is_recovering());
        assert!(!live.is_recovering());
        for t in [105, 100, 120, 90, 130] {
            let a: Vec<u64> = live
                .push(mk(t))
                .iter()
                .map(|i| i.generation_time().ticks())
                .collect();
            let b: Vec<u64> = recovering
                .push(mk(t))
                .iter()
                .map(|i| i.generation_time().ticks())
                .collect();
            assert_eq!(a, b, "push at {t} diverged under recovery");
        }
        let a = live.observe(TimePoint::new(160)).len();
        let b = recovering.observe(TimePoint::new(160)).len();
        assert_eq!(a, b, "heartbeat observation diverged under recovery");
        assert_eq!(live.late_dropped(), recovering.late_dropped());
        assert_eq!(live.watermark(), recovering.watermark());
        recovering.end_recovery();
        assert!(!recovering.is_recovering());
    }

    #[test]
    fn flush_releases_remainder() {
        let mut buf = ReorderBuffer::new(Duration::new(100));
        buf.push(mk(10));
        buf.push(mk(20));
        assert_eq!(buf.pending(), 2);
        let out = buf.flush();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].generation_time(), TimePoint::new(10));
        assert_eq!(buf.pending(), 0);
        assert_eq!(buf.released(), 2);
    }

    #[test]
    fn keyed_payloads_reorder_by_explicit_key() {
        // The generic path: payloads carry metadata (here an evaluation
        // time) and order by an explicit key, not by generation time.
        let mut buf: ReorderBuffer<(u64, &str)> = ReorderBuffer::new(Duration::new(10));
        assert!(buf.push_at(TimePoint::new(105), (105, "b")).is_empty());
        assert!(buf.push_at(TimePoint::new(100), (100, "a")).is_empty());
        let out = buf.push_at(TimePoint::new(120), (120, "c"));
        assert_eq!(out, vec![(100, "a"), (105, "b")]);
        assert_eq!(buf.flush(), vec![(120, "c")]);
        assert_eq!(buf.released(), 3);
    }

    #[test]
    fn equal_timestamps_release_fifo() {
        let mut buf = ReorderBuffer::new(Duration::new(1));
        let a = mk(10).with_seq(stem_core::SeqNo::new(1));
        let b = mk(10).with_seq(stem_core::SeqNo::new(2));
        buf.push(a);
        buf.push(b);
        let out = buf.push(mk(50));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].seq().raw(), 1);
        assert_eq!(out[1].seq().raw(), 2);
    }

    /// Snapshot round-trip with items in flight: the restored buffer
    /// holds the same pending items, watermark, and counters, and makes
    /// identical accept/release/late-drop decisions afterwards.
    #[test]
    fn state_round_trips_with_pending_items() {
        let mut live: ReorderBuffer<(u64, String)> = ReorderBuffer::new(Duration::new(20));
        live.push_at(TimePoint::new(100), (100, "a".into()));
        live.push_at(TimePoint::new(90), (90, "b".into()));
        live.push_at(TimePoint::new(130), (130, "c".into())); // releases 90 + 100
        live.push_at(TimePoint::new(50), (50, "late".into())); // dropped

        let mut buf = Vec::new();
        live.save_state(&mut buf, |item, buf| {
            codec::put_u64(buf, item.0);
            codec::put_str(buf, &item.1);
        });
        let mut resumed: ReorderBuffer<(u64, String)> = ReorderBuffer::new(Duration::new(20));
        let mut bytes = buf.as_slice();
        resumed
            .load_state(&mut bytes, |bytes| {
                Ok((codec::get_u64(bytes)?, codec::get_str(bytes)?))
            })
            .unwrap();
        assert!(bytes.is_empty());
        assert_eq!(resumed.pending(), live.pending());
        assert_eq!(resumed.watermark(), live.watermark());
        assert_eq!(resumed.late_dropped(), live.late_dropped());
        assert_eq!(resumed.released(), live.released());

        for t in [120u64, 160, 40] {
            let a = live.push_at(TimePoint::new(t), (t, format!("t{t}")));
            let b = resumed.push_at(TimePoint::new(t), (t, format!("t{t}")));
            assert_eq!(a, b, "diverged at t={t}");
        }
        assert_eq!(live.flush(), resumed.flush());
    }

    proptest! {
        /// Whatever the arrival order, (released ++ flush) is sorted by
        /// generation time and nothing within slack is ever dropped when
        /// disorder is bounded by the slack.
        #[test]
        fn released_stream_is_ordered(
            times in proptest::collection::vec(0u64..200, 1..60),
            slack in 0u64..50,
        ) {
            let mut buf = ReorderBuffer::new(Duration::new(slack));
            let mut released = Vec::new();
            for &t in &times {
                released.extend(buf.push(mk(t)));
            }
            released.extend(buf.flush());
            for w in released.windows(2) {
                prop_assert!(w[0].generation_time() <= w[1].generation_time());
            }
            prop_assert_eq!(
                released.len() as u64 + buf.late_dropped(),
                times.len() as u64
            );
        }

        /// With disorder bounded by the slack, nothing is dropped.
        #[test]
        fn bounded_disorder_is_lossless(
            deltas in proptest::collection::vec(0u64..10, 1..50),
            slack in 10u64..40,
        ) {
            // Build a sorted stream with gaps < 10 (< slack), then swap
            // adjacent pairs: the disorder is bounded by the gap, hence
            // always within the slack.
            let mut times = Vec::with_capacity(deltas.len());
            let mut t = 0u64;
            for d in &deltas {
                t += d;
                times.push(t);
            }
            let mut disordered = times.clone();
            for pair in disordered.chunks_mut(2) {
                pair.reverse();
            }
            let mut buf = ReorderBuffer::new(Duration::new(slack));
            let mut count = 0;
            for &t in &disordered {
                count += buf.push(mk(t)).len();
            }
            count += buf.flush().len();
            prop_assert_eq!(count, times.len());
            prop_assert_eq!(buf.late_dropped(), 0);
        }
    }
}
