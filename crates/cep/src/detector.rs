//! The composite detector: pattern matching + condition evaluation +
//! instance generation, fused into the observer workflow of Fig. 1
//! ("Sensor / Cyber-Physical Event Conditions Evaluation" → "Generate New
//! Cyber-Event Instance?").

use crate::{ConsumptionMode, Pattern, PatternDetector, PatternMatch};
use stem_core::codec::{self, StateCodec};
use stem_core::{Bindings, ConditionObserver, EvalError, EventDefinition, EventInstance};
use stem_temporal::Duration;

/// A full event detector for one [`EventDefinition`]:
///
/// 1. a [`PatternDetector`] collects constituent instances into candidate
///    matches (with SnoopIB interval semantics),
/// 2. the definition's composite condition (Eq. 4.5) is evaluated over the
///    match's bindings,
/// 3. on success, a [`ConditionObserver`] generates the next
///    [`EventInstance`] with the definition's estimation policies.
///
/// # Example
///
/// ```
/// use stem_cep::{CompositeDetector, ConsumptionMode, Pattern};
/// use stem_core::{
///     dsl, Attributes, ConditionObserver, EventDefinition, EventId, EventInstance,
///     Layer, MoteId, ObserverId,
/// };
/// use stem_spatial::{Point, SpatialExtent};
/// use stem_temporal::{TemporalExtent, TimePoint};
///
/// // The paper's S1: x before y, within 5 m.
/// let def = EventDefinition::new(
///     "s1",
///     Layer::Sensor,
///     dsl::parse("(time(x) before time(y)) and (dist(loc(x), loc(y)) < 5)").unwrap(),
/// );
/// let pattern = Pattern::atom("x", "obs-x").and(Pattern::atom("y", "obs-y"));
/// let observer = ConditionObserver::new(
///     ObserverId::Mote(MoteId::new(1)), Point::new(0.0, 0.0), 1.0,
/// );
/// let mut det = CompositeDetector::new(def, pattern, ConsumptionMode::Chronicle, None, observer);
///
/// let mk = |event: &str, t: u64, x: f64| EventInstance::builder(
///     ObserverId::Mote(MoteId::new(2)), EventId::new(event), Layer::Sensor,
/// )
/// .generated(TimePoint::new(t), Point::new(x, 0.0))
/// .estimated(
///     TemporalExtent::punctual(TimePoint::new(t)),
///     SpatialExtent::point(Point::new(x, 0.0)),
/// )
/// .build();
///
/// assert!(det.process(&mk("obs-x", 10, 0.0)).unwrap().is_empty());
/// let out = det.process(&mk("obs-y", 20, 3.0)).unwrap();
/// assert_eq!(out.len(), 1);
/// assert_eq!(out[0].event().as_str(), "s1");
/// ```
#[derive(Debug, Clone)]
pub struct CompositeDetector {
    definition: EventDefinition,
    pattern: PatternDetector,
    observer: ConditionObserver,
    matches_seen: u64,
    matches_accepted: u64,
}

impl CompositeDetector {
    /// Creates a detector that evaluates `definition` over matches of
    /// `pattern`.
    #[must_use]
    pub fn new(
        definition: EventDefinition,
        pattern: Pattern,
        mode: ConsumptionMode,
        horizon: Option<Duration>,
        observer: ConditionObserver,
    ) -> Self {
        CompositeDetector {
            definition,
            pattern: PatternDetector::new(pattern, mode, horizon),
            observer,
            matches_seen: 0,
            matches_accepted: 0,
        }
    }

    /// The event definition being detected.
    #[must_use]
    pub fn definition(&self) -> &EventDefinition {
        &self.definition
    }

    /// Candidate matches seen / accepted so far (selectivity diagnostic).
    #[must_use]
    pub fn selectivity(&self) -> (u64, u64) {
        (self.matches_seen, self.matches_accepted)
    }

    /// Processes one arriving instance. For every pattern match completed
    /// by it whose condition holds, generates an output instance stamped
    /// at the match's detection time (the completing constituent's
    /// generation time) — appropriate when the detector is co-located
    /// with the producers. Observers that run elsewhere (a sink or CCU
    /// receiving instances over a network) should use
    /// [`CompositeDetector::process_at`] with their own local clock.
    ///
    /// # Errors
    ///
    /// Propagates [`EvalError`] if the condition references entities or
    /// attributes the pattern does not bind — a configuration error worth
    /// surfacing rather than swallowing.
    pub fn process(&mut self, instance: &EventInstance) -> Result<Vec<EventInstance>, EvalError> {
        self.process_at(instance, instance.generation_time())
    }

    /// Like [`CompositeDetector::process`], but stamps generated
    /// instances' `t^g` with the observer's local time `now` — the
    /// arrival-plus-processing time at a sink or CCU.
    ///
    /// # Errors
    ///
    /// See [`CompositeDetector::process`].
    pub fn process_at(
        &mut self,
        instance: &EventInstance,
        now: stem_temporal::TimePoint,
    ) -> Result<Vec<EventInstance>, EvalError> {
        Ok(self
            .process_traced_at(instance, now, crate::NO_TAG)?
            .into_iter()
            .map(|(inst, _)| inst)
            .collect())
    }

    /// Like [`CompositeDetector::process_at`], but threads the arriving
    /// instance's trace tag (its global ingest sequence) through the
    /// pattern store: each generated instance comes back with its
    /// constituents as `(trace tag, constituent seq)` pairs in binding
    /// order, where the seq is the constituent's observer-assigned
    /// sequence number.
    ///
    /// # Errors
    ///
    /// See [`CompositeDetector::process`].
    #[allow(clippy::type_complexity)]
    pub fn process_traced_at(
        &mut self,
        instance: &EventInstance,
        now: stem_temporal::TimePoint,
        tag: u64,
    ) -> Result<Vec<(EventInstance, Vec<(u64, u64)>)>, EvalError> {
        let candidates = self.pattern.process_tagged(instance, tag);
        let mut out = Vec::new();
        for m in candidates {
            self.matches_seen += 1;
            let bindings = bindings_of(&m);
            if self.definition.condition.eval(&bindings)? {
                self.matches_accepted += 1;
                let generated_at = now.max(m.detected_at);
                let inst = self
                    .observer
                    .generate(&self.definition, &bindings, generated_at);
                let constituents = m
                    .bindings
                    .iter()
                    .enumerate()
                    .map(|(i, (_, bound))| {
                        (
                            m.tags.get(i).copied().unwrap_or(crate::NO_TAG),
                            bound.seq().raw(),
                        )
                    })
                    .collect();
                out.push((inst, constituents));
            }
        }
        Ok(out)
    }
}

/// Everything that accumulates across the stream: the pattern
/// detector's partial matches, the generating observer's sequence
/// counters, and the selectivity diagnostics.
impl StateCodec for CompositeDetector {
    fn save_state(&self, buf: &mut Vec<u8>) {
        self.pattern.save_state(buf);
        self.observer.save_state(buf);
        codec::put_u64(buf, self.matches_seen);
        codec::put_u64(buf, self.matches_accepted);
    }

    fn load_state(&mut self, bytes: &mut &[u8]) -> codec::CodecResult<()> {
        self.pattern.load_state(bytes)?;
        self.observer.load_state(bytes)?;
        self.matches_seen = codec::get_u64(bytes)?;
        self.matches_accepted = codec::get_u64(bytes)?;
        Ok(())
    }
}

/// Converts a pattern match into condition bindings.
#[must_use]
fn bindings_of(m: &PatternMatch) -> Bindings {
    let mut b = Bindings::new();
    for (name, inst) in &m.bindings {
        b.bind(name.clone(), inst.entity_data());
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use stem_core::{dsl, EventId, Layer, MoteId, ObserverId};
    use stem_spatial::{Point, SpatialExtent};
    use stem_temporal::{TemporalExtent, TimePoint};

    fn mk(event: &str, t: u64, x: f64, temp: f64) -> EventInstance {
        EventInstance::builder(
            ObserverId::Mote(MoteId::new(2)),
            EventId::new(event),
            Layer::Sensor,
        )
        .generated(TimePoint::new(t), Point::new(x, 0.0))
        .estimated(
            TemporalExtent::punctual(TimePoint::new(t)),
            SpatialExtent::point(Point::new(x, 0.0)),
        )
        .attributes(stem_core::Attributes::new().with("temp", temp))
        .build()
    }

    fn detector(condition: &str) -> CompositeDetector {
        let def = EventDefinition::new("out", Layer::CyberPhysical, dsl::parse(condition).unwrap());
        let pattern = Pattern::atom("x", "A").then(Pattern::atom("y", "B"));
        let observer = ConditionObserver::new(
            ObserverId::Sink(MoteId::new(9)),
            Point::new(50.0, 50.0),
            1.0,
        );
        CompositeDetector::new(def, pattern, ConsumptionMode::Chronicle, None, observer)
    }

    #[test]
    fn condition_filters_pattern_matches() {
        // Pattern matches but the distance condition rejects far pairs.
        let mut det = detector("dist(loc(x), loc(y)) < 5");
        det.process(&mk("A", 1, 0.0, 20.0)).unwrap();
        let far = det.process(&mk("B", 2, 100.0, 20.0)).unwrap();
        assert!(far.is_empty());
        assert_eq!(det.selectivity(), (1, 0));

        det.process(&mk("A", 3, 0.0, 20.0)).unwrap();
        let near = det.process(&mk("B", 4, 3.0, 20.0)).unwrap();
        assert_eq!(near.len(), 1);
        assert_eq!(det.selectivity(), (2, 1));
    }

    #[test]
    fn generated_instance_has_estimates_from_match() {
        let mut det = detector("avg(x.temp, y.temp) > 25");
        det.process(&mk("A", 10, 0.0, 30.0)).unwrap();
        let out = det.process(&mk("B", 20, 4.0, 30.0)).unwrap();
        assert_eq!(out.len(), 1);
        let inst = &out[0];
        // Default hull estimator: [10, 20].
        assert_eq!(inst.estimated_time().start(), TimePoint::new(10));
        assert_eq!(inst.estimated_time().end(), TimePoint::new(20));
        // Default centroid estimator: (2, 0).
        assert!(inst
            .estimated_location()
            .representative()
            .approx_eq(Point::new(2.0, 0.0)));
        // Generated by the sink observer at detection time.
        assert_eq!(inst.generation_time(), TimePoint::new(20));
        assert_eq!(inst.observer(), ObserverId::Sink(MoteId::new(9)));
        assert_eq!(inst.layer(), Layer::CyberPhysical);
    }

    #[test]
    fn sequence_numbers_advance_across_detections() {
        let mut det = detector("avg(x.temp) > 0");
        det.process(&mk("A", 1, 0.0, 20.0)).unwrap();
        let first = det.process(&mk("B", 2, 0.0, 20.0)).unwrap();
        det.process(&mk("A", 3, 0.0, 20.0)).unwrap();
        let second = det.process(&mk("B", 4, 0.0, 20.0)).unwrap();
        assert_eq!(first[0].seq().raw(), 0);
        assert_eq!(second[0].seq().raw(), 1);
    }

    /// Snapshot round-trip mid-stream: the restored composite detector
    /// (pattern partials + observer sequence counters + selectivity)
    /// generates the same derived instances — including their sequence
    /// numbers — as the uninterrupted one.
    #[test]
    fn state_round_trips_mid_stream() {
        let mut live = detector("avg(x.temp) > 0");
        live.process(&mk("A", 1, 0.0, 20.0)).unwrap();
        let _ = live.process(&mk("B", 2, 0.0, 20.0)).unwrap(); // consumes seq 0
        live.process(&mk("A", 3, 0.0, 20.0)).unwrap(); // pending left

        let mut buf = Vec::new();
        live.save_state(&mut buf);
        let mut resumed = detector("avg(x.temp) > 0");
        let mut bytes = buf.as_slice();
        resumed.load_state(&mut bytes).unwrap();
        assert!(bytes.is_empty());
        assert_eq!(resumed.selectivity(), live.selectivity());

        let a = live.process(&mk("B", 4, 0.0, 20.0)).unwrap();
        let b = resumed.process(&mk("B", 4, 0.0, 20.0)).unwrap();
        assert_eq!(a, b, "derived instances diverged after restore");
        assert_eq!(b[0].seq().raw(), 1, "sequence numbering continues");
    }

    #[test]
    fn traced_process_reports_constituent_tags_and_seqs() {
        let mut det = detector("avg(x.temp) > 0");
        assert!(det
            .process_traced_at(&mk("A", 1, 0.0, 20.0), TimePoint::new(1), 11)
            .unwrap()
            .is_empty());
        let out = det
            .process_traced_at(&mk("B", 2, 0.0, 20.0), TimePoint::new(2), 22)
            .unwrap();
        assert_eq!(out.len(), 1);
        let (inst, constituents) = &out[0];
        assert_eq!(inst.event().as_str(), "out");
        let tags: Vec<u64> = constituents.iter().map(|&(tag, _)| tag).collect();
        assert_eq!(tags, vec![11, 22], "trace tags in binding order");
    }

    #[test]
    fn unbound_entity_in_condition_is_an_error() {
        // Condition references "z" which the pattern never binds.
        let mut det = detector("z.temp > 0");
        det.process(&mk("A", 1, 0.0, 20.0)).unwrap();
        let err = det.process(&mk("B", 2, 0.0, 20.0)).unwrap_err();
        assert_eq!(err, EvalError::UnboundEntity("z".into()));
    }
}
