//! Per-worker recorders: plain structs, merged on read.

use crate::hist::Histogram;
use std::collections::BTreeMap;

/// The instrumented pipeline stages, in pipeline order.
///
/// Each stage is a span site in the engine: a worker or the engine
/// thread times the real code path and records the span duration into
/// its recorder's per-stage histogram. Durations are wall-clock
/// nanoseconds in threaded runs and deterministic virtual ticks in
/// deterministic runs (see `stem_core::timing::Clock`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// One whole `Engine::ingest` / `ingest_at` call: route + enqueue.
    /// On the columnar ingest path, one span per chunk instead.
    Ingest,
    /// Building one columnar ingest chunk: copying instances into the
    /// batch's parallel arrays and arena-backed attribute storage.
    BatchBuild,
    /// Recycling a drained columnar chunk: resetting its arrays and
    /// attribute arena in place so the next chunk reuses the capacity.
    BatchReset,
    /// The router's shard-selection pass (leaf mask + precision pass).
    Route,
    /// Handing a full batch to a shard worker (channel send; includes
    /// the backpressure wait, and in deterministic mode the inline
    /// processing itself).
    Enqueue,
    /// Reorder-buffer pushes and watermark observations on a worker.
    ReorderRelease,
    /// The per-instance subscription filter pass (scope, event, layer,
    /// region) before any evaluation.
    ScopePrune,
    /// Condition / pattern / sustained evaluation plus sink delivery.
    Evaluate,
    /// Appending a batch's records to the shard's write-ahead log.
    WalAppend,
    /// The group-commit fsync closing a batch's appends.
    WalFsync,
    /// Serializing and writing one checkpoint snapshot on a worker.
    SnapshotCut,
    /// The engine thread waiting on the all-shard sync / checkpoint
    /// barrier — the cost ROADMAP item 5's anti-scaling hides in.
    BarrierWait,
    /// The driver folding delivered notifications back into its own
    /// stream (the scenario runner's per-delivery drain).
    NotifyFoldback,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 13] = [
        Stage::Ingest,
        Stage::BatchBuild,
        Stage::BatchReset,
        Stage::Route,
        Stage::Enqueue,
        Stage::ReorderRelease,
        Stage::ScopePrune,
        Stage::Evaluate,
        Stage::WalAppend,
        Stage::WalFsync,
        Stage::SnapshotCut,
        Stage::BarrierWait,
        Stage::NotifyFoldback,
    ];

    /// Number of stages.
    pub const COUNT: usize = Stage::ALL.len();

    /// The stage's stable snake_case name (the JSON-lines schema key).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Ingest => "ingest",
            Stage::BatchBuild => "batch_build",
            Stage::BatchReset => "batch_reset",
            Stage::Route => "route",
            Stage::Enqueue => "enqueue",
            Stage::ReorderRelease => "reorder_release",
            Stage::ScopePrune => "scope_prune",
            Stage::Evaluate => "evaluate",
            Stage::WalAppend => "wal_append",
            Stage::WalFsync => "wal_fsync",
            Stage::SnapshotCut => "snapshot_cut",
            Stage::BarrierWait => "barrier_wait",
            Stage::NotifyFoldback => "notify_foldback",
        }
    }

    /// The stage's index in [`Stage::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One telemetry producer's local state: a plain struct with no
/// interior locking or atomics. Each shard worker (and the engine
/// thread, and the scenario driver) owns one, mutates it on the hot
/// path at plain-field cost, and periodically *publishes* a clone into
/// its [`crate::ObsRegistry`] slot. Readers merge published recorders;
/// writers never contend with them.
///
/// All counter arithmetic saturates: telemetry must degrade (clamp) at
/// the extremes, never wrap into nonsense or panic in debug builds.
#[derive(Debug, Clone)]
pub struct Recorder {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    stages: Vec<Histogram>,
    hists: BTreeMap<&'static str, Histogram>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// An empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Recorder {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            stages: vec![Histogram::new(); Stage::COUNT],
            hists: BTreeMap::new(),
        }
    }

    /// Adds `by` to the named monotone counter (saturating).
    pub fn inc(&mut self, name: &'static str, by: u64) {
        let slot = self.counters.entry(name).or_insert(0);
        *slot = slot.saturating_add(by);
    }

    /// Sets the named gauge to its current level.
    pub fn set_gauge(&mut self, name: &'static str, value: u64) {
        self.gauges.insert(name, value);
    }

    /// Records one span duration into a stage's histogram.
    pub fn record_stage(&mut self, stage: Stage, duration: u64) {
        self.stages[stage.index()].record(duration);
    }

    /// Records one sample into the named histogram (e.g. watermark
    /// lag, queue depth).
    pub fn record(&mut self, name: &'static str, value: u64) {
        self.hists.entry(name).or_default().record(value);
    }

    /// The named counter's value (0 if never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named gauge's last set level (0 if never set).
    #[must_use]
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// A stage's span histogram.
    #[must_use]
    pub fn stage(&self, stage: Stage) -> &Histogram {
        &self.stages[stage.index()]
    }

    /// The named histogram, if any samples were recorded.
    #[must_use]
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Iterates the counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Iterates the gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    /// Iterates the named histograms in name order.
    pub fn hists(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.hists.iter().map(|(&k, v)| (k, v))
    }

    /// Folds another recorder into this one: counters add
    /// (saturating), gauges add (a merged gauge is the total level
    /// across producers — e.g. total reorder depth), histograms merge
    /// bucket-wise. Merging per-shard recorders yields exactly what a
    /// single global recorder fed the union of events would hold.
    pub fn merge(&mut self, other: &Recorder) {
        for (name, value) in other.counters() {
            self.inc(name, value);
        }
        for (name, value) in other.gauges() {
            let slot = self.gauges.entry(name).or_insert(0);
            *slot = slot.saturating_add(value);
        }
        for (mine, theirs) in self.stages.iter_mut().zip(other.stages.iter()) {
            mine.merge(theirs);
        }
        for (name, hist) in other.hists() {
            self.hists.entry(name).or_default().merge(hist);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_are_unique_and_stable() {
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Stage::COUNT, "duplicate stage name");
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i, "ALL must be in discriminant order");
        }
    }

    #[test]
    fn counters_saturate() {
        let mut r = Recorder::new();
        r.inc("n", u64::MAX - 1);
        r.inc("n", 5);
        assert_eq!(r.counter("n"), u64::MAX);
        let mut other = Recorder::new();
        other.inc("n", 7);
        r.merge(&other);
        assert_eq!(r.counter("n"), u64::MAX, "merge saturates too");
    }

    /// The registry's core invariant: merging per-shard recorders is
    /// indistinguishable from one recorder having seen everything.
    #[test]
    fn merge_of_shards_equals_single_recorder() {
        let events: Vec<(usize, u64)> = (0..300u64).map(|i| ((i % 4) as usize, i * 13)).collect();
        let mut single = Recorder::new();
        let mut shards = vec![
            Recorder::new(),
            Recorder::new(),
            Recorder::new(),
            Recorder::new(),
        ];
        for &(shard, v) in &events {
            for r in [&mut single, &mut shards[shard]] {
                r.inc("ingested", 1);
                r.record_stage(Stage::Evaluate, v);
                r.record("watermark_lag", v % 97);
            }
        }
        let mut merged = Recorder::new();
        for shard in &shards {
            merged.merge(shard);
        }
        assert_eq!(merged.counter("ingested"), single.counter("ingested"));
        let (m, s) = (merged.stage(Stage::Evaluate), single.stage(Stage::Evaluate));
        assert_eq!(m.count(), s.count());
        assert_eq!(m.sum(), s.sum());
        assert_eq!(m.p99(), s.p99());
        let (mh, sh) = (
            merged.hist("watermark_lag").unwrap(),
            single.hist("watermark_lag").unwrap(),
        );
        assert_eq!(mh.count(), sh.count());
        assert_eq!(mh.p50(), sh.p50());
    }

    #[test]
    fn gauges_sum_across_producers() {
        let mut a = Recorder::new();
        a.set_gauge("reorder_depth", 4);
        a.set_gauge("reorder_depth", 6); // set replaces locally
        let mut b = Recorder::new();
        b.set_gauge("reorder_depth", 10);
        a.merge(&b);
        assert_eq!(a.gauge("reorder_depth"), 16, "merged gauge totals levels");
        assert_eq!(a.gauge("never_set"), 0);
    }
}
