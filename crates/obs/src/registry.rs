//! The central registry: published recorder slots, merged on read.

use crate::recorder::Recorder;
use crate::snapshot::{ObsSnapshot, ShardRow};
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// The engine-wide telemetry registry.
///
/// Producers — one per shard worker, one for the engine thread, one
/// for an external driver such as the scenario runner — each own a
/// plain [`Recorder`] they mutate without any synchronization. At
/// publish points (batch boundaries, sync barriers, checkpoints) a
/// producer *replaces* its registry slot with a clone of its cumulative
/// recorder: one mutex acquisition per publish, zero atomics on the
/// per-event hot path, and readers never block a producer mid-batch.
///
/// [`ObsRegistry::sample`] merges every published slot into one
/// [`ObsSnapshot`], appends it to a bounded in-memory ring (for live
/// consumers like `stemtop`), and — when an exporter file is attached —
/// writes it as one JSON line (see
/// [`crate::ObsSnapshot::to_json_line`]).
pub struct ObsRegistry {
    shards: Vec<Mutex<Recorder>>,
    engine: Mutex<Recorder>,
    /// The slot for a producer outside the engine (the scenario
    /// driver's notify fold-back spans). Mutated in place rather than
    /// replaced: external producers are not on the engine's hot path.
    external: Mutex<Recorder>,
    ring: Mutex<VecDeque<ObsSnapshot>>,
    ring_capacity: usize,
    next_seq: Mutex<u64>,
    /// The run epoch stamped into every snapshot (0 on a fresh start;
    /// recovery bumps it so `(epoch, seq)` stays monotone across the
    /// seq restart).
    epoch: Mutex<u64>,
    exporter: Mutex<Option<BufWriter<File>>>,
}

impl ObsRegistry {
    /// A registry with one slot per shard, a snapshot ring of
    /// `ring_capacity`, and an optional JSON-lines exporter file
    /// (truncated if it exists).
    ///
    /// # Errors
    ///
    /// Fails when the exporter file cannot be created.
    pub fn new(
        shard_count: usize,
        ring_capacity: usize,
        export: Option<&Path>,
    ) -> io::Result<Self> {
        let exporter = match export {
            Some(path) => {
                if let Some(parent) = path.parent() {
                    if !parent.as_os_str().is_empty() {
                        std::fs::create_dir_all(parent)?;
                    }
                }
                Some(BufWriter::new(File::create(path)?))
            }
            None => None,
        };
        Ok(ObsRegistry {
            shards: (0..shard_count)
                .map(|_| Mutex::new(Recorder::new()))
                .collect(),
            engine: Mutex::new(Recorder::new()),
            external: Mutex::new(Recorder::new()),
            ring: Mutex::new(VecDeque::new()),
            ring_capacity: ring_capacity.max(1),
            next_seq: Mutex::new(0),
            epoch: Mutex::new(0),
            exporter: Mutex::new(exporter),
        })
    }

    /// Sets the run epoch stamped into subsequent snapshots. Called by
    /// `Engine::recover` before any sample is cut.
    pub fn set_epoch(&self, epoch: u64) {
        *self.epoch.lock().expect("obs epoch poisoned") = epoch;
    }

    /// The current run epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        *self.epoch.lock().expect("obs epoch poisoned")
    }

    /// Number of shard slots.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Publishes a shard worker's cumulative recorder (replacing the
    /// slot's previous contents).
    pub fn publish_shard(&self, shard: usize, recorder: &Recorder) {
        *self.shards[shard].lock().expect("obs shard slot poisoned") = recorder.clone();
    }

    /// Publishes the engine thread's cumulative recorder.
    pub fn publish_engine(&self, recorder: &Recorder) {
        *self.engine.lock().expect("obs engine slot poisoned") = recorder.clone();
    }

    /// Mutates the external producer's slot in place (driver-side
    /// spans: sparse enough that a lock per record is fine).
    pub fn with_external(&self, f: impl FnOnce(&mut Recorder)) {
        f(&mut self.external.lock().expect("obs external slot poisoned"));
    }

    /// Merges every published slot into one recorder: exactly what a
    /// single global recorder would hold (see
    /// [`Recorder::merge`]).
    #[must_use]
    pub fn merged(&self) -> Recorder {
        let mut merged = self
            .engine
            .lock()
            .expect("obs engine slot poisoned")
            .clone();
        merged.merge(&self.external.lock().expect("obs external slot poisoned"));
        for slot in &self.shards {
            merged.merge(&slot.lock().expect("obs shard slot poisoned"));
        }
        merged
    }

    /// Cuts a snapshot: merges the slots, derives per-shard rows
    /// (queue depth = messages sent per `sent_per_shard` minus the
    /// shard's published `msgs_processed` counter), stamps the next
    /// sequence number, pushes onto the ring (evicting the oldest past
    /// capacity), and appends a JSON line to the exporter if one is
    /// attached.
    ///
    /// # Panics
    ///
    /// Panics if the exporter file cannot be written — telemetry was
    /// explicitly configured, the same contract as WAL appends.
    pub fn sample(&self, ticks: Option<u64>, sent_per_shard: &[u64]) -> ObsSnapshot {
        let merged = self.merged();
        let mut rows = Vec::with_capacity(self.shards.len());
        for (shard, slot) in self.shards.iter().enumerate() {
            let recorder = slot.lock().expect("obs shard slot poisoned");
            let sent = sent_per_shard.get(shard).copied().unwrap_or(0);
            // Since the PR 7 steal-queues, the worker's published
            // `msgs_processed` can momentarily exceed the engine's sent
            // snapshot: the caller reads its sent counts, then a steal
            // drain handles messages *and publishes* before this row is
            // derived. The true depth is transiently "negative"; clamp
            // to 0 at this read site rather than wrapping a u64 gauge
            // into an absurd backlog.
            rows.push(ShardRow {
                shard,
                queue_depth: {
                    let processed = recorder.counter("msgs_processed");
                    sent.saturating_sub(processed)
                },
                gauges: recorder.gauges().collect(),
            });
        }
        let seq = {
            let mut next = self.next_seq.lock().expect("obs seq poisoned");
            let seq = *next;
            *next += 1;
            seq
        };
        let snapshot = ObsSnapshot::build(self.epoch(), seq, ticks, &merged, rows);
        {
            let mut ring = self.ring.lock().expect("obs ring poisoned");
            if ring.len() == self.ring_capacity {
                ring.pop_front();
            }
            ring.push_back(snapshot.clone());
        }
        if let Some(writer) = self
            .exporter
            .lock()
            .expect("obs exporter poisoned")
            .as_mut()
        {
            writeln!(writer, "{}", snapshot.to_json_line())
                .and_then(|()| writer.flush())
                .unwrap_or_else(|e| panic!("telemetry export write failed: {e}"));
        }
        snapshot
    }

    /// The newest ring snapshot, if any sample has been cut.
    #[must_use]
    pub fn latest(&self) -> Option<ObsSnapshot> {
        self.ring.lock().expect("obs ring poisoned").back().cloned()
    }

    /// The ring's snapshots, oldest first.
    #[must_use]
    pub fn snapshots(&self) -> Vec<ObsSnapshot> {
        self.ring
            .lock()
            .expect("obs ring poisoned")
            .iter()
            .cloned()
            .collect()
    }
}

impl std::fmt::Debug for ObsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsRegistry")
            .field("shards", &self.shards.len())
            .field("ring_capacity", &self.ring_capacity)
            .finish_non_exhaustive()
    }
}

/// The end-of-run telemetry summary [`crate::ObsRegistry`] folds down
/// to: the final merged recorder plus the snapshot ring as it stood at
/// shutdown. Carried inside the engine's run report so benches can
/// compute per-stage breakdowns without keeping the registry alive.
#[derive(Debug, Clone, Default)]
pub struct ObsReport {
    /// Every producer's recorder merged at shutdown.
    pub merged: Recorder,
    /// The ring's snapshots at shutdown, oldest first.
    pub snapshots: Vec<ObsSnapshot>,
}

impl ObsRegistry {
    /// Folds the registry into its end-of-run report.
    #[must_use]
    pub fn report(&self) -> ObsReport {
        ObsReport {
            merged: self.merged(),
            snapshots: self.snapshots(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Stage;

    #[test]
    fn sample_merges_slots_and_numbers_snapshots() {
        let registry = ObsRegistry::new(2, 4, None).unwrap();
        let mut shard0 = Recorder::new();
        shard0.inc("msgs_processed", 3);
        shard0.inc("ingested", 10);
        shard0.record_stage(Stage::Evaluate, 100);
        registry.publish_shard(0, &shard0);
        let mut shard1 = Recorder::new();
        shard1.inc("msgs_processed", 1);
        shard1.inc("ingested", 5);
        registry.publish_shard(1, &shard1);
        let mut engine = Recorder::new();
        engine.record_stage(Stage::Route, 40);
        registry.publish_engine(&engine);
        registry.with_external(|r| r.record_stage(Stage::NotifyFoldback, 9));

        let snap = registry.sample(Some(77), &[5, 1]);
        assert_eq!(snap.seq, 0);
        assert_eq!(snap.ticks, Some(77));
        assert_eq!(snap.counter("ingested"), 15);
        assert_eq!(snap.shards[0].queue_depth, 2, "5 sent - 3 processed");
        assert_eq!(snap.shards[1].queue_depth, 0);
        assert!(snap.stage(Stage::Evaluate).is_some());
        assert!(snap.stage(Stage::Route).is_some());
        assert!(snap.stage(Stage::NotifyFoldback).is_some());
        assert!(snap.stage(Stage::WalFsync).is_none(), "no samples, omitted");

        let next = registry.sample(Some(78), &[5, 1]);
        assert_eq!(next.seq, 1, "snapshot sequence is monotone");
        assert_eq!(registry.snapshots().len(), 2);
        assert_eq!(registry.latest().unwrap().seq, 1);
    }

    /// Regression for the steal-queue race: a worker whose stolen
    /// backlog was drained *and published* after the engine read its
    /// sent counts reports more processed messages than the stale sent
    /// snapshot. The depth must clamp to 0, not wrap a u64.
    #[test]
    fn queue_depth_clamps_when_published_overtakes_sent_snapshot() {
        let registry = ObsRegistry::new(1, 4, None).unwrap();
        let mut shard = Recorder::new();
        shard.inc("msgs_processed", 7);
        registry.publish_shard(0, &shard);
        let snap = registry.sample(None, &[5]);
        assert_eq!(
            snap.shards[0].queue_depth, 0,
            "processed (7) > sent snapshot (5) must clamp, not wrap"
        );
        // And the clamp is per-shard, not global: a genuinely backed-up
        // shard still reports its depth.
        let registry = ObsRegistry::new(2, 4, None).unwrap();
        registry.publish_shard(0, &shard);
        let snap = registry.sample(None, &[5, 3]);
        assert_eq!(snap.shards[0].queue_depth, 0);
        assert_eq!(snap.shards[1].queue_depth, 3, "nothing published yet");
    }

    /// The recovery seam: a bumped epoch stamps every later snapshot,
    /// so `(epoch, seq)` stays monotone even though seq restarts.
    #[test]
    fn epoch_stamps_snapshots() {
        let registry = ObsRegistry::new(1, 4, None).unwrap();
        assert_eq!(
            registry.sample(None, &[0]).epoch,
            0,
            "fresh runs are epoch 0"
        );
        registry.set_epoch(3);
        assert_eq!(registry.epoch(), 3);
        assert_eq!(registry.sample(None, &[0]).epoch, 3);
    }

    #[test]
    fn ring_evicts_oldest_past_capacity() {
        let registry = ObsRegistry::new(1, 2, None).unwrap();
        for _ in 0..5 {
            let _ = registry.sample(None, &[0]);
        }
        let snaps = registry.snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].seq, 3);
        assert_eq!(snaps[1].seq, 4);
    }

    #[test]
    fn publish_replaces_rather_than_accumulates() {
        let registry = ObsRegistry::new(1, 4, None).unwrap();
        let mut r = Recorder::new();
        r.inc("ingested", 5);
        registry.publish_shard(0, &r);
        // The producer's recorder is cumulative; re-publishing must not
        // double-count.
        r.inc("ingested", 5);
        registry.publish_shard(0, &r);
        assert_eq!(registry.merged().counter("ingested"), 10);
    }

    #[test]
    fn exporter_writes_one_valid_line_per_sample() {
        let path = std::env::temp_dir().join(format!(
            "stem-obs-registry-export-{}.jsonl",
            std::process::id()
        ));
        let registry = ObsRegistry::new(1, 4, Some(&path)).unwrap();
        for i in 0..3u64 {
            let _ = registry.sample(Some(i), &[0]);
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let mut last = None;
        for line in lines {
            let v = crate::json::parse(line).expect("valid JSON line");
            let seq = v.get("seq").and_then(crate::json::Value::as_u64).unwrap();
            if let Some(prev) = last {
                assert!(seq > prev, "snapshot seqs must be monotone");
            }
            last = Some(seq);
        }
        let _ = std::fs::remove_file(&path);
    }
}
