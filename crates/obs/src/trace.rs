//! Schema v3 `trace` records: the JSON-lines encoding of the engine's
//! flight-recorder ring.
//!
//! Where the snapshot exporter ([`crate::ObsSnapshot`]) aggregates,
//! trace records capture *causality*: one line per sampled operation,
//! drop verdict, or delivered notification, carrying raw trace
//! identities (global ingest sequences) that join against the WAL
//! offline. The writer side is [`TraceRecord::to_json_line_at`]; the
//! read side is the strict [`parse_trace_line`], which rejects unknown
//! fields, truncated records, wrong-arity stamp arrays, and
//! non-monotone constituent sequences — an exported trace either
//! round-trips exactly or fails loudly, because a silently mangled
//! lineage is worse than none.
//!
//! v3 (over the original v2) adds a required `epoch` field: the run
//! epoch stamped by `Engine::recover`. Per-shard notification ids and
//! trace sequences restart after recovery, so consumers key on
//! `(epoch, seq)` via [`parse_trace_line_epoch`].

use crate::json::{self, Value};

/// The `v` field of every trace line (kept in lockstep with the
/// snapshot exporter's [`crate::SCHEMA_VERSION`] since v3).
pub const TRACE_SCHEMA_VERSION: u64 = 3;

/// Number of stages an instance record stamps (ingest → route →
/// enqueue → release).
pub const INSTANCE_STAGES: usize = 4;

/// Number of stages a notification record stamps (ingest → route →
/// enqueue → release → evaluate → notify).
pub const NOTIFY_STAGES: usize = 6;

/// One constituent of a notification: `(trace, shard, seq)` — the
/// operation's global ingest sequence, the shard that evaluated it, and
/// its observer-assigned sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TraceConstituent {
    /// Global ingest sequence (the WAL join key).
    pub trace: u64,
    /// Evaluating shard.
    pub shard: u64,
    /// Observer-assigned instance sequence number.
    pub seq: u64,
}

/// Why a traced operation was discarded before evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceDropKind {
    /// Arrived behind the shard watermark.
    Late,
    /// Pruned by the exact subscription-scope pass.
    Scope,
}

impl TraceDropKind {
    /// The stable name written to the export.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceDropKind::Late => "late",
            TraceDropKind::Scope => "scope",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        match name {
            "late" => Some(TraceDropKind::Late),
            "scope" => Some(TraceDropKind::Scope),
            _ => None,
        }
    }
}

/// One flight-recorder entry, as exported.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// A sampled operation passing through a shard (policies `always` /
    /// `1-in-N`), with its first four stage stamps.
    Instance {
        /// Shard the operation was evaluated on.
        shard: u64,
        /// Global ingest sequence.
        trace: u64,
        /// Observer-assigned instance sequence number.
        seq: u64,
        /// `[ingest, route, enqueue, release]` trace-clock stamps.
        stamps: [u64; INSTANCE_STAGES],
    },
    /// A drop/prune verdict for a near-miss operation.
    Drop {
        /// Shard that dropped it.
        shard: u64,
        /// Global ingest sequence.
        trace: u64,
        /// Why it never reached evaluation.
        verdict: TraceDropKind,
    },
    /// A delivered notification with its full causal record.
    Notify {
        /// Shard that evaluated the subscription.
        shard: u64,
        /// Per-shard notification id (dense, 0-based) — `(shard, id)`
        /// names a notification for offline reconstruction.
        id: u64,
        /// Subscription id.
        sub: u64,
        /// `[ingest, route, enqueue, release, evaluate, notify]`
        /// trace-clock stamps of the triggering operation.
        stamps: [u64; NOTIFY_STAGES],
        /// Contributing operations, sorted by strictly increasing
        /// `trace`.
        constituents: Vec<TraceConstituent>,
    },
}

impl TraceRecord {
    /// Encodes the record at epoch 0 (fresh, never-recovered runs).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        self.to_json_line_at(0)
    }

    /// Encodes the record as one JSON object on one line (no trailing
    /// newline), stamped with the given run epoch. Constituents are
    /// written as compact `[trace, shard, seq]` triples.
    #[must_use]
    pub fn to_json_line_at(&self, epoch: u64) -> String {
        let mut out = String::with_capacity(128);
        match self {
            TraceRecord::Instance {
                shard,
                trace,
                seq,
                stamps,
            } => {
                out.push_str(&format!(
                    "{{\"v\":{TRACE_SCHEMA_VERSION},\"epoch\":{epoch},\"kind\":\"instance\",\"shard\":{shard},\"trace\":{trace},\"seq\":{seq},\"stamps\":["
                ));
                push_u64s(&mut out, stamps);
                out.push_str("]}");
            }
            TraceRecord::Drop {
                shard,
                trace,
                verdict,
            } => {
                out.push_str(&format!(
                    "{{\"v\":{TRACE_SCHEMA_VERSION},\"epoch\":{epoch},\"kind\":\"drop\",\"shard\":{shard},\"trace\":{trace},\"verdict\":\"{}\"}}",
                    verdict.name()
                ));
            }
            TraceRecord::Notify {
                shard,
                id,
                sub,
                stamps,
                constituents,
            } => {
                out.push_str(&format!(
                    "{{\"v\":{TRACE_SCHEMA_VERSION},\"epoch\":{epoch},\"kind\":\"notify\",\"shard\":{shard},\"id\":{id},\"sub\":{sub},\"stamps\":["
                ));
                push_u64s(&mut out, stamps);
                out.push_str("],\"constituents\":[");
                for (i, c) in constituents.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("[{},{},{}]", c.trace, c.shard, c.seq));
                }
                out.push_str("]}");
            }
        }
        out
    }
}

fn push_u64s(out: &mut String, values: &[u64]) {
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
}

/// Parses and validates one v3 trace line, discarding the epoch.
///
/// See [`parse_trace_line_epoch`] for the strictness contract and for
/// consumers that need the `(epoch, seq)` key.
///
/// # Errors
///
/// Returns a message naming the first violated rule.
pub fn parse_trace_line(line: &str) -> Result<TraceRecord, String> {
    parse_trace_line_epoch(line).map(|(_, record)| record)
}

/// Parses and validates one v3 trace line, returning the run epoch
/// alongside the record.
///
/// Strictness contract:
///
/// * the line must be one complete JSON object (truncated lines fail in
///   the underlying [`json::parse`]),
/// * `v` must be exactly [`TRACE_SCHEMA_VERSION`] and `epoch` must be a
///   plain `u64`,
/// * `kind` must be `instance` / `drop` / `notify`, and the object must
///   carry *exactly* that kind's fields — unknown fields are rejected,
/// * stamp arrays must have the kind's exact arity, be plain `u64`s,
///   and be non-decreasing in stage order,
/// * notify constituents must be non-empty `[trace, shard, seq]`
///   triples with strictly increasing `trace`.
///
/// # Errors
///
/// Returns a message naming the first violated rule.
pub fn parse_trace_line_epoch(line: &str) -> Result<(u64, TraceRecord), String> {
    let value = json::parse(line)?;
    let Value::Object(map) = &value else {
        return Err("trace record must be a JSON object".to_string());
    };
    let v = field_u64(&value, "v")?;
    if v != TRACE_SCHEMA_VERSION {
        return Err(format!("unsupported trace schema v{v}"));
    }
    let epoch = field_u64(&value, "epoch")?;
    let kind = value
        .get("kind")
        .and_then(Value::as_str)
        .ok_or("missing or non-string \"kind\"")?;
    let allowed: &[&str] = match kind {
        "instance" => &["v", "epoch", "kind", "shard", "trace", "seq", "stamps"],
        "drop" => &["v", "epoch", "kind", "shard", "trace", "verdict"],
        "notify" => &[
            "v",
            "epoch",
            "kind",
            "shard",
            "id",
            "sub",
            "stamps",
            "constituents",
        ],
        other => return Err(format!("unknown trace kind {other:?}")),
    };
    for key in map.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(format!("unknown field {key:?} in {kind} record"));
        }
    }
    let record = match kind {
        "instance" => TraceRecord::Instance {
            shard: field_u64(&value, "shard")?,
            trace: field_u64(&value, "trace")?,
            seq: field_u64(&value, "seq")?,
            stamps: stamps_of::<INSTANCE_STAGES>(&value)?,
        },
        "drop" => {
            let verdict = value
                .get("verdict")
                .and_then(Value::as_str)
                .ok_or("missing or non-string \"verdict\"")?;
            TraceRecord::Drop {
                shard: field_u64(&value, "shard")?,
                trace: field_u64(&value, "trace")?,
                verdict: TraceDropKind::from_name(verdict)
                    .ok_or_else(|| format!("unknown drop verdict {verdict:?}"))?,
            }
        }
        _ => {
            let constituents = constituents_of(&value)?;
            TraceRecord::Notify {
                shard: field_u64(&value, "shard")?,
                id: field_u64(&value, "id")?,
                sub: field_u64(&value, "sub")?,
                stamps: stamps_of::<NOTIFY_STAGES>(&value)?,
                constituents,
            }
        }
    };
    Ok((epoch, record))
}

fn field_u64(value: &Value, key: &str) -> Result<u64, String> {
    value
        .get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-u64 {key:?}"))
}

fn stamps_of<const N: usize>(value: &Value) -> Result<[u64; N], String> {
    let items = value
        .get("stamps")
        .and_then(Value::as_array)
        .ok_or("missing or non-array \"stamps\"")?;
    if items.len() != N {
        return Err(format!("stamps must have {N} entries, got {}", items.len()));
    }
    let mut stamps = [0u64; N];
    for (i, item) in items.iter().enumerate() {
        stamps[i] = item
            .as_u64()
            .ok_or_else(|| format!("stamp {i} is not a u64"))?;
    }
    if stamps.windows(2).any(|w| w[0] > w[1]) {
        return Err("stamps must be non-decreasing in stage order".to_string());
    }
    Ok(stamps)
}

fn constituents_of(value: &Value) -> Result<Vec<TraceConstituent>, String> {
    let items = value
        .get("constituents")
        .and_then(Value::as_array)
        .ok_or("missing or non-array \"constituents\"")?;
    if items.is_empty() {
        return Err("notify record must carry at least one constituent".to_string());
    }
    let mut out = Vec::with_capacity(items.len());
    let mut last_trace: Option<u64> = None;
    for (i, item) in items.iter().enumerate() {
        let triple = item
            .as_array()
            .ok_or_else(|| format!("constituent {i} is not an array"))?;
        if triple.len() != 3 {
            return Err(format!(
                "constituent {i} must be a [trace, shard, seq] triple"
            ));
        }
        let mut parts = [0u64; 3];
        for (j, part) in triple.iter().enumerate() {
            parts[j] = part
                .as_u64()
                .ok_or_else(|| format!("constituent {i} element {j} is not a u64"))?;
        }
        if let Some(prev) = last_trace {
            if parts[0] <= prev {
                return Err(format!(
                    "constituent traces must be strictly increasing ({} after {prev})",
                    parts[0]
                ));
            }
        }
        last_trace = Some(parts[0]);
        out.push(TraceConstituent {
            trace: parts[0],
            shard: parts[1],
            seq: parts[2],
        });
    }
    Ok(out)
}

/// Parses a whole exported trace stream (one record per line, blank
/// lines ignored).
///
/// # Errors
///
/// Fails on the first invalid line, naming its 1-based line number.
pub fn parse_trace_stream(text: &str) -> Result<Vec<TraceRecord>, String> {
    Ok(parse_trace_stream_epoch(text)?
        .into_iter()
        .map(|(_, record)| record)
        .collect())
}

/// Parses a whole exported trace stream, keeping each record's run
/// epoch — the key consumers sort on when a stream spans a recovery
/// (seqs restart at 0 but the epoch bumps).
///
/// # Errors
///
/// Fails on the first invalid line, naming its 1-based line number.
pub fn parse_trace_stream_epoch(text: &str) -> Result<Vec<(u64, TraceRecord)>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_trace_line_epoch(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn notify() -> TraceRecord {
        TraceRecord::Notify {
            shard: 2,
            id: 7,
            sub: 3,
            stamps: [10, 11, 11, 14, 20, 21],
            constituents: vec![
                TraceConstituent {
                    trace: 4,
                    shard: 2,
                    seq: 0,
                },
                TraceConstituent {
                    trace: 9,
                    shard: 2,
                    seq: 5,
                },
            ],
        }
    }

    #[test]
    fn records_round_trip_through_json() {
        let records = vec![
            TraceRecord::Instance {
                shard: 1,
                trace: 42,
                seq: 6,
                stamps: [1, 2, 3, 4],
            },
            TraceRecord::Drop {
                shard: 0,
                trace: 8,
                verdict: TraceDropKind::Late,
            },
            TraceRecord::Drop {
                shard: 3,
                trace: 9,
                verdict: TraceDropKind::Scope,
            },
            notify(),
        ];
        for record in &records {
            let line = record.to_json_line();
            let back = parse_trace_line(&line).expect("own output parses");
            assert_eq!(&back, record, "round trip of {line}");
            // The epoch-aware writer/reader pair round-trips the stamp.
            let line = record.to_json_line_at(5);
            let (epoch, back) = parse_trace_line_epoch(&line).expect("own output parses");
            assert_eq!(epoch, 5);
            assert_eq!(&back, record);
        }
        let stream: String = records.iter().map(|r| r.to_json_line() + "\n").collect();
        assert_eq!(parse_trace_stream(&stream).unwrap(), records);
        for (epoch, _) in parse_trace_stream_epoch(&stream).unwrap() {
            assert_eq!(epoch, 0, "to_json_line writes epoch 0");
        }
    }

    #[test]
    fn truncated_records_are_rejected() {
        let line = notify().to_json_line();
        // Every strict prefix of a valid record fails: a torn export
        // can never be mistaken for a shorter valid one.
        for cut in 1..line.len() {
            assert!(
                parse_trace_line(&line[..cut]).is_err(),
                "accepted truncation at byte {cut}"
            );
        }
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let cases = [
            r#"{"v":3,"epoch":0,"kind":"drop","shard":0,"trace":8,"verdict":"late","extra":1}"#,
            r#"{"v":3,"epoch":0,"kind":"instance","shard":0,"trace":8,"seq":1,"stamps":[1,2,3,4],"id":9}"#,
            r#"{"v":3,"epoch":0,"kind":"notify","shard":0,"id":0,"sub":0,"stamps":[1,1,1,1,1,1],"constituents":[[1,0,0]],"note":"x"}"#,
        ];
        for bad in cases {
            let err = parse_trace_line(bad).unwrap_err();
            assert!(err.contains("unknown field"), "{bad} -> {err}");
        }
    }

    #[test]
    fn non_monotone_constituent_seqs_are_rejected() {
        let bad = r#"{"v":3,"epoch":0,"kind":"notify","shard":0,"id":0,"sub":0,"stamps":[1,1,1,1,1,1],"constituents":[[9,0,0],[4,0,1]]}"#;
        let err = parse_trace_line(bad).unwrap_err();
        assert!(err.contains("strictly increasing"), "{err}");
        // Duplicates are non-monotone too (the emitter dedups).
        let dup = r#"{"v":3,"epoch":0,"kind":"notify","shard":0,"id":0,"sub":0,"stamps":[1,1,1,1,1,1],"constituents":[[4,0,0],[4,0,0]]}"#;
        assert!(parse_trace_line(dup).is_err());
    }

    #[test]
    fn stamp_arity_version_and_kind_are_enforced() {
        let cases = [
            // Pre-epoch schema version.
            r#"{"v":2,"kind":"drop","shard":0,"trace":8,"verdict":"late"}"#,
            // Right version but the epoch stamp is missing.
            r#"{"v":3,"kind":"drop","shard":0,"trace":8,"verdict":"late"}"#,
            // Unknown kind.
            r#"{"v":3,"epoch":0,"kind":"mystery","shard":0}"#,
            // Instance stamps with notify arity.
            r#"{"v":3,"epoch":0,"kind":"instance","shard":0,"trace":8,"seq":1,"stamps":[1,2,3,4,5,6]}"#,
            // Non-monotone stamps.
            r#"{"v":3,"epoch":0,"kind":"instance","shard":0,"trace":8,"seq":1,"stamps":[4,3,2,1]}"#,
            // Empty constituents.
            r#"{"v":3,"epoch":0,"kind":"notify","shard":0,"id":0,"sub":0,"stamps":[1,1,1,1,1,1],"constituents":[]}"#,
            // Unknown verdict.
            r#"{"v":3,"epoch":0,"kind":"drop","shard":0,"trace":8,"verdict":"meh"}"#,
            // Not an object.
            r#"[1,2,3]"#,
        ];
        for bad in cases {
            assert!(parse_trace_line(bad).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn stream_errors_name_the_line() {
        let text = format!("{}\nnot json\n", notify().to_json_line());
        let err = parse_trace_stream(&text).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }
}
