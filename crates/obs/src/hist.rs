//! Log2-bucketed latency histograms.

/// Number of buckets: one for zero plus one per bit position of a
/// nonzero `u64`.
pub const BUCKET_COUNT: usize = 65;

/// A fixed-size log2-bucketed histogram of `u64` samples (latencies in
/// nanoseconds, queue depths, lag ticks — anything non-negative).
///
/// Bucket 0 holds exactly the value `0`; bucket `i >= 1` holds the
/// half-open power-of-two range `[2^(i-1), 2^i)`. Quantiles are
/// answered from bucket *upper* bounds, so they overestimate by at most
/// 2× — the right bias for latency reporting — while the exact maximum
/// is tracked separately. All accumulation saturates instead of
/// wrapping: a counter that has been alive for months clamps at
/// `u64::MAX` rather than silently restarting from zero.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; BUCKET_COUNT],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKET_COUNT],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

/// The bucket index holding `value`.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros()) as usize
    }
}

/// The inclusive `[low, high]` range of values bucket `index` holds.
///
/// # Panics
///
/// Panics if `index >= BUCKET_COUNT`.
#[must_use]
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKET_COUNT, "bucket index out of range");
    if index == 0 {
        (0, 0)
    } else if index == BUCKET_COUNT - 1 {
        (1 << (index - 1), u64::MAX)
    } else {
        (1 << (index - 1), (1 << index) - 1)
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] = self.buckets[bucket_index(value)].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The exact largest sample seen (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The quantile `q` in `[0, 1]`, answered as the upper bound of the
    /// bucket containing the `ceil(q * count)`-th smallest sample —
    /// except the top bucket, where the exact tracked maximum is the
    /// tighter (and correct) upper bound.
    ///
    /// Returns `None` when no samples have been recorded: an empty
    /// histogram has no quantiles, and the old silent-zero answer was
    /// indistinguishable from a real all-zero latency distribution.
    /// Callers that render a summary where existence of the histogram
    /// already implies samples use `unwrap_or(0)` explicitly.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // q = 1.0 is the exact tracked maximum by definition. Answering
        // it from the bucket walk is wrong under saturated counts: once
        // `count` clamps at u64::MAX the running `seen` can reach the
        // target inside an earlier bucket and report an upper bound
        // below the true max.
        if q >= 1.0 {
            return Some(self.max);
        }
        // ceil without going through floats for the rank itself.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= target {
                return Some(bucket_bounds(index).1.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Median (see [`Histogram::quantile`]; `None` when empty).
    #[must_use]
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 90th percentile (`None` when empty).
    #[must_use]
    pub fn p90(&self) -> Option<u64> {
        self.quantile(0.90)
    }

    /// 99th percentile (`None` when empty).
    #[must_use]
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Folds another histogram into this one (bucket-wise saturating
    /// addition): merging per-shard histograms of the same quantity
    /// yields exactly the histogram a single global recorder would have
    /// produced from the union of samples.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Whether no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The satellite-task boundary check: powers of two open new
    /// buckets, `2^k - 1` stays in the previous one.
    #[test]
    fn bucket_boundaries_at_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        for k in 1..63 {
            let p = 1u64 << k;
            assert_eq!(bucket_index(p), k + 1, "2^{k} opens bucket {}", k + 1);
            assert_eq!(bucket_index(p - 1), k, "2^{k}-1 stays in bucket {k}");
            let (low, high) = bucket_bounds(k + 1);
            assert_eq!(low, p, "bucket {} starts at 2^{k}", k + 1);
            assert!(high >= p, "bucket upper bound covers its lower");
        }
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_bounds(64), (1 << 63, u64::MAX));
        assert_eq!(bucket_bounds(0), (0, 0));
    }

    #[test]
    fn every_value_falls_inside_its_bucket_bounds() {
        for v in [0u64, 1, 2, 3, 4, 7, 8, 255, 256, 1 << 20, u64::MAX] {
            let (low, high) = bucket_bounds(bucket_index(v));
            assert!(low <= v && v <= high, "{v} outside [{low}, {high}]");
        }
    }

    #[test]
    fn quantiles_bound_the_samples() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        // Upper-bound semantics: each quantile is >= the true rank value
        // and <= 2x it (one bucket's width), capped by the exact max.
        let p50 = h.p50().unwrap();
        assert!((500..=1000).contains(&p50), "p50 = {p50}");
        let p99 = h.p99().unwrap();
        assert!((990..=1000).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile(1.0), Some(1000));
        assert_eq!(h.mean(), 500);
    }

    #[test]
    fn counters_saturate_instead_of_overflowing() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX, "sum clamps at u64::MAX");
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        let mut other = Histogram::new();
        other.record(u64::MAX);
        h.merge(&other);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(0.5), Some(u64::MAX));
    }

    /// Merge-of-shards equals single-recorder: the registry's merge-on-
    /// read model depends on it.
    #[test]
    fn merge_of_shards_equals_single_recorder() {
        let samples: Vec<u64> = (0..500u64).map(|i| (i * 7919) % 10_000).collect();
        let mut single = Histogram::new();
        for &v in &samples {
            single.record(v);
        }
        let mut parts = vec![Histogram::new(), Histogram::new(), Histogram::new()];
        for (i, &v) in samples.iter().enumerate() {
            parts[i % 3].record(v);
        }
        let mut merged = Histogram::new();
        for part in &parts {
            merged.merge(part);
        }
        assert_eq!(merged.count(), single.count());
        assert_eq!(merged.sum(), single.sum());
        assert_eq!(merged.max(), single.max());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(merged.quantile(q), single.quantile(q), "q = {q}");
        }
    }

    /// Watch thresholds read quantiles off histograms in every state the
    /// engine can leave them in; pin the edges. A single-bucket
    /// histogram (every sample the same value) must answer every
    /// quantile with that value exactly.
    #[test]
    fn single_bucket_quantiles_are_exact() {
        for v in [0u64, 1, 7, 1 << 20, u64::MAX] {
            let mut h = Histogram::new();
            for _ in 0..10 {
                h.record(v);
            }
            for q in [0.0, 0.5, 0.99, 1.0] {
                assert_eq!(h.quantile(q), Some(v), "value {v} quantile {q}");
            }
        }
    }

    /// `quantile(1.0)` is the exact max even when the sample count has
    /// saturated — the rank arithmetic degrades there, the tracked max
    /// does not.
    #[test]
    fn saturated_count_still_pins_quantile_one_to_max() {
        let mut h = Histogram::new();
        // Saturate the count in one cheap step: merge a histogram whose
        // count is already u64::MAX worth of small samples.
        let mut flood = Histogram::new();
        flood.record(1);
        flood.count = u64::MAX;
        flood.buckets[bucket_index(1)] = u64::MAX;
        h.merge(&flood);
        h.record(1 << 30);
        assert_eq!(h.count(), u64::MAX, "count saturates");
        assert_eq!(h.quantile(1.0), Some(1 << 30), "q=1.0 is the exact max");
        assert_eq!(h.max(), 1 << 30);
    }

    /// After `merge`, `quantile(1.0)` equals the exact max of the union.
    #[test]
    fn post_merge_quantile_one_equals_exact_max() {
        let mut a = Histogram::new();
        for v in [3u64, 9, 100] {
            a.record(v);
        }
        let mut b = Histogram::new();
        for v in [5u64, 777] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.quantile(1.0), Some(777));
        assert_eq!(a.max(), 777);
        // And the empty-merge identity holds too.
        let mut c = Histogram::new();
        c.merge(&a);
        assert_eq!(c.quantile(1.0), Some(777));
    }

    /// The satellite fix: an empty histogram has no quantiles — `None`,
    /// not a silent 0 a reader could mistake for a measured latency.
    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.p50(), None);
        assert_eq!(h.p90(), None);
        assert_eq!(h.p99(), None);
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(1.0), None);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        // One sample and quantiles exist again, even for the value 0.
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.p99(), Some(0));
    }
}
