//! A minimal JSON reader for validating exporter output.
//!
//! The build environment is offline, so there is no `serde_json` to
//! lean on. This is a small, strict, recursive-descent parser — enough
//! to check that every exporter line is well-formed JSON and to pull
//! numeric fields back out in tests, benches, and the CI smoke step.
//! It is a *validator*, not a general-purpose JSON library: numbers
//! are kept as `f64` (plus a lossless `u64` view when the text was a
//! plain non-negative integer), and object keys are unescaped UTF-8.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; the `u64` is present when the literal was a plain
    /// non-negative integer that fits.
    Number(f64, Option<u64>),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (key order normalized).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects (`None` elsewhere).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a `u64`, when it was a plain non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(_, exact) => *exact,
            _ => None,
        }
    }

    /// The value as an `f64` number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(f, _) => Some(*f),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one complete JSON document; trailing non-whitespace is an
/// error (exporter lines carry exactly one object).
///
/// # Errors
///
/// Returns a message naming the byte offset of the first problem.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                char::from(byte),
                self.pos
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key_at = self.pos;
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            // A duplicate key is a malformed exporter line, not a
            // tie-break: silently keeping the last value would let a
            // corrupted record validate with half its fields replaced.
            if map.contains_key(&key) {
                return Err(format!("duplicate key {key:?} at byte {key_at}"));
            }
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are trustworthy).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let ch = s.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let integer_end = self.pos;
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        let f: f64 = text
            .parse()
            .map_err(|_| format!("bad number at byte {start}"))?;
        let exact = if integer_end == self.pos {
            text.parse::<u64>().ok()
        } else {
            None
        };
        Ok(Value::Number(f, exact))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,2.5,{"b":"x\n"}],"c":null,"d":true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(2.5)
        );
        assert_eq!(v.get("d"), Some(&Value::Bool(true)));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "{\"a\":}", "[1,]", "{\"a\":1} extra", "nul", "\"open"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    /// The satellite fix: duplicate object keys are malformed input, at
    /// every nesting depth, with the byte offset of the repeated key.
    #[test]
    fn rejects_duplicate_object_keys() {
        let err = parse(r#"{"seq":1,"seq":2}"#).unwrap_err();
        assert!(err.contains("duplicate key \"seq\""), "got: {err}");
        assert!(err.contains("byte 9"), "offset names the repeat: {err}");
        // Nested objects are checked too.
        assert!(parse(r#"{"a":{"b":1,"b":2}}"#).is_err());
        assert!(parse(r#"{"a":[{"x":0,"x":0}]}"#).is_err());
        // Same key at different depths is fine.
        assert!(parse(r#"{"a":{"a":1},"b":{"a":2}}"#).is_ok());
    }

    #[test]
    fn large_integers_stay_exact() {
        let v = parse(&format!("{{\"n\":{}}}", u64::MAX)).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(u64::MAX));
        // A fractional number loses the exact view but keeps f64.
        let v = parse("{\"n\":1.5}").unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), None);
        assert_eq!(v.get("n").unwrap().as_f64(), Some(1.5));
    }
}
