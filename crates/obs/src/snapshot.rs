//! Point-in-time registry snapshots and their JSON-lines encoding.

use crate::hist::Histogram;
use crate::recorder::{Recorder, Stage};

/// The exporter schema version written as the `v` field of every
/// JSON line. Bump on any incompatible change to the line shape.
///
/// v3 adds the `epoch` field: the run epoch stamped by recovery.
/// Sequence numbers restart at 0 after `Engine::recover`, so consumers
/// validating continuity must key on `(epoch, seq)` — lexicographically
/// monotone across a crash/recover boundary — instead of bare `seq`.
pub const SCHEMA_VERSION: u64 = 3;

/// A five-number summary of one histogram at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSummary {
    /// Samples recorded so far.
    pub count: u64,
    /// Median (bucket-upper-bound semantics, see
    /// [`Histogram::quantile`]).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
}

impl HistSummary {
    /// Summarizes a histogram. Only summarized where samples exist
    /// (snapshots omit empty stages), so absent quantiles render as 0
    /// alongside the telltale `count: 0`.
    #[must_use]
    pub fn of(hist: &Histogram) -> Self {
        HistSummary {
            count: hist.count(),
            p50: hist.p50().unwrap_or(0),
            p90: hist.p90().unwrap_or(0),
            p99: hist.p99().unwrap_or(0),
            max: hist.max(),
        }
    }
}

/// One shard's row in a snapshot: its published gauge levels.
#[derive(Debug, Clone)]
pub struct ShardRow {
    /// The shard id.
    pub shard: usize,
    /// Messages the engine has sent to this shard minus messages the
    /// shard has published as processed — the channel backlog (an
    /// approximation in threaded mode: publication lags processing by
    /// at most one publish interval).
    pub queue_depth: u64,
    /// The shard's gauges at its last publish, in name order.
    pub gauges: Vec<(&'static str, u64)>,
}

/// One cut of the whole registry: every producer's published recorder
/// merged, summarized, and stamped with a monotone sequence number.
#[derive(Debug, Clone)]
pub struct ObsSnapshot {
    /// The run epoch: 0 on a fresh start, bumped by every
    /// `Engine::recover`. `(epoch, seq)` is monotone across recoveries
    /// even though `seq` restarts at 0.
    pub epoch: u64,
    /// Monotone snapshot sequence (0, 1, 2, …) within one registry.
    pub seq: u64,
    /// The stream-clock high-water mark at the cut, in ticks.
    pub ticks: Option<u64>,
    /// Merged counters, in name order.
    pub counters: Vec<(&'static str, u64)>,
    /// Merged gauges (summed across producers), in name order.
    pub gauges: Vec<(&'static str, u64)>,
    /// Stage-span summaries for every stage that recorded samples, in
    /// pipeline order.
    pub stages: Vec<(Stage, HistSummary)>,
    /// Named-histogram summaries, in name order.
    pub hists: Vec<(&'static str, HistSummary)>,
    /// Per-shard rows, indexed by shard id.
    pub shards: Vec<ShardRow>,
}

impl ObsSnapshot {
    /// Builds a snapshot from the merged recorder plus per-shard rows.
    #[must_use]
    pub fn build(
        epoch: u64,
        seq: u64,
        ticks: Option<u64>,
        merged: &Recorder,
        shards: Vec<ShardRow>,
    ) -> Self {
        ObsSnapshot {
            epoch,
            seq,
            ticks,
            counters: merged.counters().collect(),
            gauges: merged.gauges().collect(),
            stages: Stage::ALL
                .iter()
                .filter(|s| !merged.stage(**s).is_empty())
                .map(|&s| (s, HistSummary::of(merged.stage(s))))
                .collect(),
            hists: merged
                .hists()
                .map(|(name, h)| (name, HistSummary::of(h)))
                .collect(),
            shards,
        }
    }

    /// The snapshot's stage summary, if the stage recorded samples.
    #[must_use]
    pub fn stage(&self, stage: Stage) -> Option<HistSummary> {
        self.stages
            .iter()
            .find(|(s, _)| *s == stage)
            .map(|&(_, summary)| summary)
    }

    /// The merged counter value (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// The merged gauge level (0 when absent).
    #[must_use]
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Encodes the snapshot as one JSON object on one line (no trailing
    /// newline): the versioned exporter schema.
    ///
    /// Shape (`v` = [`SCHEMA_VERSION`]):
    ///
    /// ```json
    /// {"v":3,"epoch":0,"seq":3,"ticks":1200,
    ///  "counters":{"ingested":9000},
    ///  "gauges":{"reorder_depth":12},
    ///  "stages":{"evaluate":{"count":9000,"p50":511,"p90":1023,"p99":2047,"max":1890}},
    ///  "hists":{"watermark_lag":{...}},
    ///  "shards":[{"shard":0,"queue_depth":2,"gauges":{"reorder_depth":12}}]}
    /// ```
    ///
    /// Every key is a static snake_case identifier, so no string
    /// escaping is ever needed on the write path.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str(&format!(
            "{{\"v\":{SCHEMA_VERSION},\"epoch\":{},\"seq\":{}",
            self.epoch, self.seq
        ));
        match self.ticks {
            Some(t) => out.push_str(&format!(",\"ticks\":{t}")),
            None => out.push_str(",\"ticks\":null"),
        }
        push_map(&mut out, "counters", self.counters.iter().copied());
        push_map(&mut out, "gauges", self.gauges.iter().copied());
        out.push_str(",\"stages\":{");
        for (i, (stage, summary)) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":", stage.name()));
            push_summary(&mut out, summary);
        }
        out.push('}');
        out.push_str(",\"hists\":{");
        for (i, (name, summary)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":"));
            push_summary(&mut out, summary);
        }
        out.push('}');
        out.push_str(",\"shards\":[");
        for (i, row) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"shard\":{},\"queue_depth\":{}",
                row.shard, row.queue_depth
            ));
            push_map(&mut out, "gauges", row.gauges.iter().copied());
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn push_map<'a>(out: &mut String, key: &str, entries: impl Iterator<Item = (&'a str, u64)>) {
    out.push_str(&format!(",\"{key}\":{{"));
    for (i, (name, value)) in entries.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{value}"));
    }
    out.push('}');
}

fn push_summary(out: &mut String, s: &HistSummary) {
    out.push_str(&format!(
        "{{\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
        s.count, s.p50, s.p90, s.p99, s.max
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn json_lines_parse_and_round_trip_key_fields() {
        let mut merged = Recorder::new();
        merged.inc("ingested", 42);
        merged.set_gauge("reorder_depth", 7);
        merged.record_stage(Stage::Evaluate, 900);
        merged.record("watermark_lag", 3);
        let snapshot = ObsSnapshot::build(
            2,
            5,
            Some(1200),
            &merged,
            vec![ShardRow {
                shard: 0,
                queue_depth: 2,
                gauges: vec![("reorder_depth", 7)],
            }],
        );
        let line = snapshot.to_json_line();
        let value = json::parse(&line).expect("exporter line is valid JSON");
        assert_eq!(
            value.get("v").and_then(json::Value::as_u64),
            Some(SCHEMA_VERSION)
        );
        assert_eq!(value.get("epoch").and_then(json::Value::as_u64), Some(2));
        assert_eq!(value.get("seq").and_then(json::Value::as_u64), Some(5));
        assert_eq!(value.get("ticks").and_then(json::Value::as_u64), Some(1200));
        let counters = value.get("counters").expect("counters object");
        assert_eq!(
            counters.get("ingested").and_then(json::Value::as_u64),
            Some(42)
        );
        let stages = value.get("stages").expect("stages object");
        let eval = stages.get("evaluate").expect("evaluate stage present");
        assert_eq!(eval.get("count").and_then(json::Value::as_u64), Some(1));
        assert_eq!(eval.get("max").and_then(json::Value::as_u64), Some(900));
        let shards = value.get("shards").and_then(json::Value::as_array).unwrap();
        assert_eq!(shards.len(), 1);
        assert_eq!(
            shards[0].get("queue_depth").and_then(json::Value::as_u64),
            Some(2)
        );
    }

    #[test]
    fn null_ticks_encode_as_json_null() {
        let snapshot = ObsSnapshot::build(0, 0, None, &Recorder::new(), Vec::new());
        let line = snapshot.to_json_line();
        let value = json::parse(&line).unwrap();
        assert!(matches!(value.get("ticks"), Some(json::Value::Null)));
        assert!(snapshot.stages.is_empty(), "empty stages are omitted");
    }
}
