//! # stem-obs — telemetry for the STEM streaming engine
//!
//! A zero-dependency observability layer (the build environment is
//! offline, so everything — histograms, registry, JSON export, even the
//! JSON validator — is hand-rolled, like `stem-wal`'s framing):
//!
//! * [`Histogram`] — log2-bucketed `u64` histograms with p50/p90/p99
//!   upper-bound quantiles and an exact max, saturating everywhere.
//! * [`Recorder`] — one producer's plain counters / gauges / stage-span
//!   histograms. No locks, no atomics: a shard worker mutates its own
//!   recorder at plain-field cost and periodically *publishes* a clone
//!   into the registry.
//! * [`Stage`] — the engine's instrumented pipeline stages
//!   (ingest→route→enqueue, reorder release, scope prune, evaluate,
//!   WAL append/fsync, snapshot cut, barrier wait, notify fold-back).
//! * [`ObsRegistry`] — per-producer slots merged on read;
//!   [`ObsRegistry::sample`] cuts an [`ObsSnapshot`] into a bounded
//!   in-memory ring and (optionally) a versioned JSON-lines exporter
//!   file, one snapshot per line.
//! * [`json`] — a strict little JSON reader for validating exporter
//!   output in tests, benches, and CI.
//!
//! Span durations come from `stem_core::timing::Clock`: wall-clock
//! nanoseconds in threaded runs, deterministic virtual ticks in
//! deterministic runs — so telemetry-enabled deterministic runs stay
//! bit-for-bit reproducible, exporter files included.
//!
//! ```
//! use stem_obs::{ObsRegistry, Recorder, Stage};
//!
//! let registry = ObsRegistry::new(2, 16, None).unwrap();
//! let mut worker = Recorder::new();            // lives on the worker
//! worker.inc("ingested", 128);
//! worker.record_stage(Stage::Evaluate, 950);   // nanos (or virtual ticks)
//! registry.publish_shard(0, &worker);          // one lock per publish
//! let snapshot = registry.sample(Some(42), &[128, 0]);
//! assert_eq!(snapshot.counter("ingested"), 128);
//! assert!(snapshot.stage(Stage::Evaluate).unwrap().p99 >= 950);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
pub mod json;
mod recorder;
mod registry;
mod snapshot;
pub mod trace;

pub use hist::{bucket_bounds, bucket_index, Histogram, BUCKET_COUNT};
pub use recorder::{Recorder, Stage};
pub use registry::{ObsRegistry, ObsReport};
pub use snapshot::{HistSummary, ObsSnapshot, ShardRow, SCHEMA_VERSION};
pub use trace::{
    parse_trace_line, parse_trace_line_epoch, parse_trace_stream, parse_trace_stream_epoch,
    TraceConstituent, TraceDropKind, TraceRecord, TRACE_SCHEMA_VERSION,
};
