//! No-op `Serialize`/`Deserialize` derives backing the offline `serde`
//! stand-in.
//!
//! The derives parse just enough of the item — its name and generic
//! parameter list — to emit an empty marker-trait impl. `#[serde(...)]`
//! helper attributes are accepted and ignored. Written against
//! `proc_macro` directly (no `syn`/`quote`) because the build environment
//! cannot fetch crates.

use proc_macro::{TokenStream, TokenTree};

/// The name and generics of the item a derive was applied to.
struct Item {
    name: String,
    /// Generic parameter list verbatim, e.g. `F: Clone, const N: usize`
    /// (empty when the item is not generic).
    params: String,
    /// Generic argument names only, e.g. `F, N`.
    args: String,
}

/// Extracts the item name and generics from a `struct`/`enum` definition.
fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip attributes (`# [...]`) and visibility/qualifiers until the
    // `struct` or `enum` keyword.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) if *id.to_string() == *"struct" || *id.to_string() == *"enum" => {
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive expects a struct or enum name, found {other:?}"),
    };
    i += 1;
    // Collect the generic parameter tokens between the outermost `<` `>`.
    let mut params = String::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            i += 1;
            let mut depth = 1usize;
            let mut parts: Vec<String> = Vec::new();
            while i < tokens.len() && depth > 0 {
                match &tokens[i] {
                    TokenTree::Punct(p) if p.as_char() == '<' => {
                        depth += 1;
                        parts.push("<".into());
                    }
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth > 0 {
                            parts.push(">".into());
                        }
                    }
                    tt => parts.push(tt.to_string()),
                }
                i += 1;
            }
            params = parts.join(" ");
        }
    }
    let args = generic_arg_names(&params);
    Item { name, params, args }
}

/// Reduces a generic parameter list to its argument names:
/// `'a, F: Clone, const N: usize` -> `'a, F, N`.
fn generic_arg_names(params: &str) -> String {
    if params.is_empty() {
        return String::new();
    }
    let mut names = Vec::new();
    let mut depth = 0i32;
    for raw in split_top_level_commas(params) {
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        // Drop any bound after `:`; respect nested angle brackets.
        let mut head = String::new();
        for ch in raw.chars() {
            match ch {
                '<' => depth += 1,
                '>' => depth -= 1,
                ':' if depth == 0 => break,
                _ => {}
            }
            head.push(ch);
        }
        let head = head.trim();
        // `const N : usize` -> `N`.
        let name = head.strip_prefix("const ").map_or(head, str::trim);
        names.push(name.split_whitespace().last().unwrap_or(name).to_string());
    }
    names.join(", ")
}

fn split_top_level_commas(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut depth = 0i32;
    for ch in s.chars() {
        match ch {
            '<' | '(' | '[' => {
                depth += 1;
                cur.push(ch);
            }
            '>' | ')' | ']' => {
                depth -= 1;
                cur.push(ch);
            }
            ',' if depth == 0 => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(ch),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

fn ty(item: &Item) -> String {
    if item.args.is_empty() {
        item.name.clone()
    } else {
        format!("{}<{}>", item.name, item.args)
    }
}

/// Derives the marker `serde::Serialize` impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let impl_generics = if item.params.is_empty() {
        String::new()
    } else {
        format!("<{}>", item.params)
    };
    format!(
        "#[automatically_derived] impl{} serde::Serialize for {} {{}}",
        impl_generics,
        ty(&item)
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives the marker `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let impl_generics = if item.params.is_empty() {
        "<'de>".to_string()
    } else {
        format!("<'de, {}>", item.params)
    };
    format!(
        "#[automatically_derived] impl{} serde::Deserialize<'de> for {} {{}}",
        impl_generics,
        ty(&item)
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
