//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no network access, so the
//! real `rand` cannot be fetched from crates.io. This crate re-implements
//! the *subset* of the rand 0.8 API the workspace uses — [`Rng`],
//! [`SeedableRng`], [`rngs::SmallRng`], uniform ranges, and
//! [`distributions::Standard`] — with a deterministic xoshiro256++
//! generator seeded through SplitMix64, exactly like the real `SmallRng`
//! on 64-bit platforms.
//!
//! It is wired in via `[patch.crates-io]` in the workspace root; deleting
//! that patch entry restores the real crate on a networked machine.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`distributions::Standard`]
    /// distribution (`u64`: full range; `f64`: uniform in `[0, 1)`).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
        sample_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding support, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

fn sample_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 mantissa bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++), API- and
    /// quality-compatible with `rand::rngs::SmallRng` on 64-bit targets.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 never
            // yields four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }
}

/// Distributions (the `Standard` subset).
pub mod distributions {
    use super::{sample_f64, RngCore};

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: full integer range, `[0, 1)` floats.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u8> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
            (rng.next_u64() >> 56) as u8
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            sample_f64(rng)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            sample_f64(rng) as f32
        }
    }
}

/// A range that can be sampled from, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (sample_f64(rng) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                start + (sample_f64(rng) as $t) * (end - start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let u = r.gen_range(10u64..20);
            assert!((10..20).contains(&u));
            let i = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let fi = r.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&fi));
        }
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits {hits}");
    }
}
