//! Offline stand-in for [`proptest`](https://proptest-rs.github.io/proptest).
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This crate re-implements the subset of its API the
//! workspace's property tests use: the [`proptest!`] macro, the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_recursive`/`boxed`,
//! range / tuple / [`collection::vec`] / [`strategy::Just`] / string
//! strategies, [`prop_oneof!`], and the `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking** — a failing case reports the failure message only.
//! * **Fixed case count** — [`CASES`] cases per property (override with
//!   the `PROPTEST_CASES` environment variable).
//! * **Deterministic seeding** — every run draws the same inputs, so CI
//!   failures reproduce locally.
//! * String strategies ignore the regex pattern and generate arbitrary
//!   printable strings (the workspace only uses `"\PC{0,80}"`-style
//!   "any printable" patterns for never-panics properties).

#![forbid(unsafe_code)]

/// Default number of cases sampled per property.
pub const CASES: u32 = 64;

/// Test-runner plumbing: the RNG and the case-level error type.
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// The deterministic RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(pub(crate) SmallRng);

    impl TestRng {
        /// A fixed-seed RNG: every test run samples identical inputs.
        #[must_use]
        pub fn deterministic() -> Self {
            TestRng(SmallRng::seed_from_u64(0x5EED_CA5E_0001))
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property failed; the test should panic.
        Fail(String),
        /// The case was rejected by `prop_assume!`; skip it.
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        #[must_use]
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection.
        #[must_use]
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Number of cases to run (PROPTEST_CASES env override).
    #[must_use]
    pub fn cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(crate::CASES)
    }
}

/// Strategies: how random values of each type are produced.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A generator of random values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a
    /// strategy simply samples.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Samples one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Builds a recursive strategy: `recurse` receives the strategy
        /// for depth `d` and returns the strategy for depth `d + 1`;
        /// `depth` levels are unrolled. `desired_size` and
        /// `expected_branch_size` are accepted for API compatibility and
        /// ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let base = self.boxed();
            let mut cur = base.clone();
            for _ in 0..depth {
                let deeper = recurse(cur).boxed();
                cur = Union::new(vec![base.clone(), deeper]).boxed();
            }
            cur
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// Object-safe strategy erasure.
    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A reference-counted type-erased strategy.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among alternatives (the [`prop_oneof!`] backend).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union over the given arms.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        #[must_use]
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.0.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// String strategies: the pattern is treated as "any printable
    /// string up to 80 chars" regardless of its regex content.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let len = rng.0.gen_range(0usize..=80);
            (0..len)
                .map(|_| {
                    // Mostly printable ASCII with occasional non-ASCII
                    // printables to stress parsers.
                    if rng.0.gen_bool(0.9) {
                        char::from(rng.0.gen_range(0x20u8..0x7F))
                    } else {
                        char::from_u32(rng.0.gen_range(0xA1u32..0x2FF)).unwrap_or('¿')
                    }
                })
                .collect()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// The accepted size specifications for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Generates `Vec`s whose length falls in `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.0.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Generates `true`/`false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The any-boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.0.gen_bool(0.5)
        }
    }
}

/// The things property tests `use` wholesale.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` sampling [`test_runner::cases`] cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::deterministic();
                let cases = $crate::test_runner::cases();
                for case in 0..cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("property {} failed at case {case}/{cases}: {msg}", stringify!($name));
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)*);
    }};
}

/// Skips the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among strategies that all generate the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 0u64..100, f in 0.0f64..1.0) {
            prop_assert!(x < 100);
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(0u8..10, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn oneof_and_map_compose(x in prop_oneof![
            (0u32..10).prop_map(|v| v * 2),
            Just(1u32),
        ]) {
            prop_assert!(x == 1 || (x % 2 == 0 && x < 20));
        }

        #[test]
        fn assume_rejects(x in 0u32..10) {
            prop_assume!(x < 5);
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let strat = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 3, |inner| {
                crate::collection::vec(inner, 1..4).prop_map(Tree::Node)
            });
        let mut rng = crate::test_runner::TestRng::deterministic();
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
            }
        }
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 7, "depth bounded by unrolling");
        }
    }
}
