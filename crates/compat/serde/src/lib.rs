//! Offline stand-in for [`serde`](https://serde.rs).
//!
//! The build environment has no network access, so the real `serde`
//! cannot be fetched. The workspace only *annotates* types with
//! `#[derive(Serialize, Deserialize)]` (no code path serializes at build
//! or test time), so this stand-in provides the two traits as markers and
//! a derive that emits empty impls. It is wired in via
//! `[patch.crates-io]` in the workspace root; removing that entry
//! restores the real crate and full serialization support on a networked
//! machine.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// Sub-module mirroring `serde::de` so `serde::de::DeserializeOwned`
/// paths resolve.
pub mod de {
    pub use crate::DeserializeOwned;
}
