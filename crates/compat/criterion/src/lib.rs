//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Provides the API subset the workspace's benches use — [`Criterion`],
//! benchmark groups, [`black_box`], [`criterion_group!`],
//! [`criterion_main!`], [`BenchmarkId`] — backed by a simple wall-clock
//! timer instead of criterion's statistical machinery. Median-of-batches
//! timings are printed to stdout.
//!
//! Like the real criterion, the harness understands the `--test` flag
//! `cargo test` passes to `harness = false` bench targets and runs each
//! benchmark exactly once in that mode.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// An opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies a parameterized benchmark, e.g. `mode/Recent`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives the timing loop of one benchmark.
#[derive(Debug)]
pub struct Bencher {
    /// `true` when invoked under `cargo test` (`--test`): run once, skip
    /// timing.
    test_mode: bool,
}

impl Bencher {
    /// Times the closure, printing a per-iteration estimate.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm up and estimate a batch size targeting ~200 ms total.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(200);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let timed = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let elapsed = timed.elapsed();
        let per_iter = elapsed / u32::try_from(iters).unwrap_or(u32::MAX);
        println!("    time: {per_iter:>12.2?} /iter ({iters} iters)");
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("{}/{}", self.name, id);
        let mut b = Bencher {
            test_mode: self.criterion.test_mode,
        };
        f(&mut b);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        println!("{}/{}", self.name, id);
        let mut b = Bencher {
            test_mode: self.criterion.test_mode,
        };
        f(&mut b, input);
        self
    }

    /// Finishes the group (no-op in the stand-in).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` invokes harness = false bench binaries with
        // `--test`; mimic criterion by running each bench once there.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Runs one free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("{id}");
        let mut b = Bencher {
            test_mode: self.test_mode,
        };
        f(&mut b);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }
}

/// Declares a group function running the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
