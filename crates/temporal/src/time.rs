//! Discrete time points and durations.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A discrete point in time, measured in ticks since the simulation epoch.
///
/// The paper's time model (Sec. 4) treats time as "a discrete collection of
/// time points" with limited precision; `TimePoint` realizes one such point.
/// The tick length is scenario-defined (experiments in this repository use
/// 1 tick = 1 ms).
///
/// # Example
///
/// ```
/// use stem_temporal::{Duration, TimePoint};
///
/// let t = TimePoint::new(5) + Duration::new(10);
/// assert_eq!(t, TimePoint::new(15));
/// assert_eq!(t.duration_since(TimePoint::new(5)), Some(Duration::new(10)));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TimePoint(u64);

impl TimePoint {
    /// The simulation epoch (tick zero).
    pub const EPOCH: TimePoint = TimePoint(0);
    /// The largest representable time point.
    pub const MAX: TimePoint = TimePoint(u64::MAX);

    /// Creates a time point at `ticks` ticks since the epoch.
    #[must_use]
    pub const fn new(ticks: u64) -> Self {
        TimePoint(ticks)
    }

    /// Returns the raw tick count since the epoch.
    #[must_use]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Returns the duration elapsed since `earlier`, or `None` if `earlier`
    /// is in the future of `self`.
    #[must_use]
    pub fn duration_since(self, earlier: TimePoint) -> Option<Duration> {
        self.0.checked_sub(earlier.0).map(Duration)
    }

    /// Returns the absolute distance between two time points.
    #[must_use]
    pub fn abs_diff(self, other: TimePoint) -> Duration {
        Duration(self.0.abs_diff(other.0))
    }

    /// Adds a duration, returning `None` on overflow.
    #[must_use]
    pub fn checked_add(self, d: Duration) -> Option<TimePoint> {
        self.0.checked_add(d.0).map(TimePoint)
    }

    /// Subtracts a duration, returning `None` if the result would precede
    /// the epoch.
    #[must_use]
    pub fn checked_sub(self, d: Duration) -> Option<TimePoint> {
        self.0.checked_sub(d.0).map(TimePoint)
    }

    /// Shifts the time point by a signed tick offset, saturating at the
    /// epoch and at [`TimePoint::MAX`].
    ///
    /// This supports the paper's offset conditions such as
    /// "`t_x + 5 Before t_y`" (Sec. 4.1) where the offset may be negative.
    #[must_use]
    pub fn saturating_offset(self, delta: i64) -> TimePoint {
        if delta >= 0 {
            TimePoint(self.0.saturating_add(delta as u64))
        } else {
            TimePoint(self.0.saturating_sub(delta.unsigned_abs()))
        }
    }

    /// Returns the earlier of two time points.
    #[must_use]
    pub fn min(self, other: TimePoint) -> TimePoint {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the later of two time points.
    #[must_use]
    pub fn max(self, other: TimePoint) -> TimePoint {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for TimePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u64> for TimePoint {
    fn from(ticks: u64) -> Self {
        TimePoint(ticks)
    }
}

impl Add<Duration> for TimePoint {
    type Output = TimePoint;

    /// # Panics
    ///
    /// Panics on overflow in debug builds; use [`TimePoint::checked_add`]
    /// for fallible arithmetic.
    fn add(self, rhs: Duration) -> TimePoint {
        TimePoint(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for TimePoint {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for TimePoint {
    type Output = TimePoint;

    /// # Panics
    ///
    /// Panics if the result would precede the epoch (debug builds); use
    /// [`TimePoint::checked_sub`] for fallible arithmetic.
    fn sub(self, rhs: Duration) -> TimePoint {
        TimePoint(self.0 - rhs.0)
    }
}

impl SubAssign<Duration> for TimePoint {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

/// A non-negative span of discrete time, in ticks.
///
/// # Example
///
/// ```
/// use stem_temporal::Duration;
///
/// let d = Duration::new(3) + Duration::new(4);
/// assert_eq!(d.ticks(), 7);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(u64);

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);
    /// The largest representable duration.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Creates a duration of `ticks` ticks.
    #[must_use]
    pub const fn new(ticks: u64) -> Self {
        Duration(ticks)
    }

    /// Returns the raw tick count.
    #[must_use]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Returns `true` if this duration is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked addition; `None` on overflow.
    #[must_use]
    pub fn checked_add(self, rhs: Duration) -> Option<Duration> {
        self.0.checked_add(rhs.0).map(Duration)
    }

    /// Saturating addition.
    #[must_use]
    pub fn saturating_add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (clamps at zero).
    #[must_use]
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the duration by an integer factor, saturating on overflow.
    #[must_use]
    pub fn saturating_mul(self, factor: u64) -> Duration {
        Duration(self.0.saturating_mul(factor))
    }

    /// Converts to a floating-point tick count (for statistics).
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ticks", self.0)
    }
}

impl From<u64> for Duration {
    fn from(ticks: u64) -> Self {
        Duration(ticks)
    }
}

impl Add for Duration {
    type Output = Duration;

    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;

    /// # Panics
    ///
    /// Panics if `rhs > self` (debug builds); use
    /// [`Duration::saturating_sub`] for clamped arithmetic.
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl std::iter::Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |acc, d| acc.saturating_add(d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_point_arithmetic_round_trips() {
        let t = TimePoint::new(100);
        let d = Duration::new(42);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d).duration_since(t), Some(d));
    }

    #[test]
    fn duration_since_is_none_for_future_reference() {
        assert_eq!(
            TimePoint::new(5).duration_since(TimePoint::new(6)),
            None,
            "a point cannot be after a later reference"
        );
    }

    #[test]
    fn abs_diff_is_symmetric() {
        let a = TimePoint::new(3);
        let b = TimePoint::new(10);
        assert_eq!(a.abs_diff(b), b.abs_diff(a));
        assert_eq!(a.abs_diff(b), Duration::new(7));
    }

    #[test]
    fn saturating_offset_clamps_at_epoch_and_max() {
        assert_eq!(TimePoint::new(3).saturating_offset(-10), TimePoint::EPOCH);
        assert_eq!(TimePoint::MAX.saturating_offset(10), TimePoint::MAX);
        assert_eq!(TimePoint::new(3).saturating_offset(4), TimePoint::new(7));
        assert_eq!(TimePoint::new(9).saturating_offset(-4), TimePoint::new(5));
    }

    #[test]
    fn checked_arithmetic_detects_overflow() {
        assert_eq!(TimePoint::MAX.checked_add(Duration::new(1)), None);
        assert_eq!(TimePoint::EPOCH.checked_sub(Duration::new(1)), None);
        assert_eq!(Duration::MAX.checked_add(Duration::new(1)), None);
    }

    #[test]
    fn min_max_order_correctly() {
        let a = TimePoint::new(1);
        let b = TimePoint::new(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn duration_sum_saturates() {
        let total: Duration = vec![Duration::MAX, Duration::new(1)].into_iter().sum();
        assert_eq!(total, Duration::MAX);
    }

    #[test]
    fn display_formats_are_nonempty() {
        assert_eq!(TimePoint::new(7).to_string(), "t7");
        assert_eq!(Duration::new(7).to_string(), "7 ticks");
    }
}
