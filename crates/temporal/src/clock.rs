//! Observer clock models.
//!
//! Every event instance carries a *generation time* `t^g` stamped by the
//! observer's local clock (Def. 4.4). Real CPS components have imperfect
//! clocks; these models let experiments inject offset and drift
//! deterministically so that temporal-condition robustness can be measured
//! (EXP-S1 in EXPERIMENTS.md).

use crate::TimePoint;
use serde::{Deserialize, Serialize};

/// A local clock that maps true (simulation) time to observed time.
///
/// Implementations must be deterministic: the same true time always maps
/// to the same observed time, so experiment runs are reproducible.
pub trait Clock {
    /// The observer-local reading at true time `true_time`.
    fn now(&self, true_time: TimePoint) -> TimePoint;
}

/// A perfect clock: observed time equals true time.
///
/// # Example
///
/// ```
/// use stem_temporal::{Clock, PerfectClock, TimePoint};
///
/// assert_eq!(PerfectClock.now(TimePoint::new(42)), TimePoint::new(42));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerfectClock;

impl Clock for PerfectClock {
    fn now(&self, true_time: TimePoint) -> TimePoint {
        true_time
    }
}

/// A clock with a constant offset and linear drift.
///
/// Observed time is `true + offset + drift_ppm * true / 1e6`, saturated at
/// the epoch. Drift is expressed in parts-per-million, matching how real
/// oscillator error is specified (typical WSN motes: ±30–50 ppm).
///
/// # Example
///
/// ```
/// use stem_temporal::{Clock, DriftingClock, TimePoint};
///
/// // +5 tick offset, +1000 ppm drift (1 tick gained per 1000 ticks).
/// let c = DriftingClock::new(5, 1000.0);
/// assert_eq!(c.now(TimePoint::new(1000)), TimePoint::new(1006));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftingClock {
    /// Constant offset in ticks (may be negative).
    offset: i64,
    /// Linear drift in parts-per-million of elapsed true time.
    drift_ppm: f64,
}

impl DriftingClock {
    /// Creates a clock with the given offset (ticks) and drift (ppm).
    #[must_use]
    pub fn new(offset: i64, drift_ppm: f64) -> Self {
        DriftingClock { offset, drift_ppm }
    }

    /// The constant offset in ticks.
    #[must_use]
    pub fn offset(&self) -> i64 {
        self.offset
    }

    /// The linear drift in ppm.
    #[must_use]
    pub fn drift_ppm(&self) -> f64 {
        self.drift_ppm
    }
}

impl Clock for DriftingClock {
    fn now(&self, true_time: TimePoint) -> TimePoint {
        let drift = (true_time.ticks() as f64 * self.drift_ppm / 1_000_000.0).round() as i64;
        true_time.saturating_offset(self.offset.saturating_add(drift))
    }
}

/// A clock that quantizes true time to a tick grid (models coarse local
/// timers: a mote that timestamps with, say, 10-tick granularity).
///
/// # Example
///
/// ```
/// use stem_temporal::{Clock, SteppedClock, TimePoint};
///
/// let c = SteppedClock::new(10);
/// assert_eq!(c.now(TimePoint::new(57)), TimePoint::new(50));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SteppedClock {
    granularity: u64,
}

impl SteppedClock {
    /// Creates a clock with the given granularity in ticks.
    ///
    /// # Panics
    ///
    /// Panics if `granularity` is zero.
    #[must_use]
    pub fn new(granularity: u64) -> Self {
        assert!(granularity > 0, "granularity must be positive");
        SteppedClock { granularity }
    }

    /// The quantization granularity in ticks.
    #[must_use]
    pub fn granularity(&self) -> u64 {
        self.granularity
    }
}

impl Clock for SteppedClock {
    fn now(&self, true_time: TimePoint) -> TimePoint {
        TimePoint::new(true_time.ticks() / self.granularity * self.granularity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_clock_is_identity() {
        for t in [0, 1, 1_000_000] {
            assert_eq!(PerfectClock.now(TimePoint::new(t)), TimePoint::new(t));
        }
    }

    #[test]
    fn drifting_clock_applies_offset_and_drift() {
        let c = DriftingClock::new(-3, 0.0);
        assert_eq!(c.now(TimePoint::new(10)), TimePoint::new(7));
        let c = DriftingClock::new(0, 500.0); // +0.5 tick per 1000
        assert_eq!(c.now(TimePoint::new(2000)), TimePoint::new(2001));
    }

    #[test]
    fn drifting_clock_saturates_at_epoch() {
        let c = DriftingClock::new(-100, 0.0);
        assert_eq!(c.now(TimePoint::new(5)), TimePoint::EPOCH);
    }

    #[test]
    fn stepped_clock_floors_to_grid() {
        let c = SteppedClock::new(25);
        assert_eq!(c.now(TimePoint::new(0)), TimePoint::new(0));
        assert_eq!(c.now(TimePoint::new(24)), TimePoint::new(0));
        assert_eq!(c.now(TimePoint::new(25)), TimePoint::new(25));
        assert_eq!(c.now(TimePoint::new(99)), TimePoint::new(75));
    }

    #[test]
    #[should_panic(expected = "granularity must be positive")]
    fn stepped_clock_rejects_zero_granularity() {
        let _ = SteppedClock::new(0);
    }

    proptest! {
        /// Clocks are deterministic: repeated reads agree.
        #[test]
        fn clocks_are_deterministic(t in 0u64..1_000_000, offset in -1000i64..1000, drift in -100.0f64..100.0) {
            let c = DriftingClock::new(offset, drift);
            prop_assert_eq!(c.now(TimePoint::new(t)), c.now(TimePoint::new(t)));
        }

        /// Drifting clocks with non-negative offset+drift are monotone.
        #[test]
        fn positive_drift_is_monotone(t1 in 0u64..100_000, dt in 0u64..1000, offset in 0i64..100, drift in 0.0f64..1000.0) {
            let c = DriftingClock::new(offset, drift);
            let a = c.now(TimePoint::new(t1));
            let b = c.now(TimePoint::new(t1 + dt));
            prop_assert!(a <= b);
        }

        /// Stepped clock error is bounded by the granularity.
        #[test]
        fn stepped_error_bounded(t in 0u64..1_000_000, g in 1u64..1000) {
            let c = SteppedClock::new(g);
            let obs = c.now(TimePoint::new(t));
            prop_assert!(obs.ticks() <= t);
            prop_assert!(t - obs.ticks() < g);
        }
    }
}
