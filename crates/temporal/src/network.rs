//! Qualitative temporal constraint networks over Allen's algebra.
//!
//! The paper's closing claim is that "formal temporal … analysis of the
//! cyber-physical systems can be performed using this generic framework"
//! (Sec. 6). This module provides the standard tool for that analysis: a
//! constraint network whose variables are event occurrence intervals and
//! whose edges are [`RelationSet`]s, closed under composition by the
//! path-consistency algorithm. It answers questions like *"given that
//! the door event is before the motion event and the motion event
//! overlaps the alarm, can the door event contain the alarm?"* without
//! any concrete timestamps.

use crate::{relate_intervals, AllenRelation, RelationSet, TimeInterval};
use std::fmt;

/// A qualitative temporal constraint network: `n` interval variables and
/// a [`RelationSet`] constraint between every ordered pair.
///
/// Unconstrained pairs hold the full set (no information). The network
/// maintains the converse symmetry invariant: `C[j][i] = converse(C[i][j])`.
///
/// # Example
///
/// ```
/// use stem_temporal::{AllenRelation, TemporalNetwork};
///
/// // door before motion; motion before alarm ⇒ door before alarm.
/// let mut net = TemporalNetwork::new(3);
/// net.constrain(0, 1, AllenRelation::Before.into());
/// net.constrain(1, 2, AllenRelation::Before.into());
/// assert!(net.propagate());
/// assert_eq!(net.constraint(0, 2).iter().collect::<Vec<_>>(),
///            vec![AllenRelation::Before]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TemporalNetwork {
    n: usize,
    constraints: Vec<RelationSet>,
}

impl TemporalNetwork {
    /// Creates an unconstrained network over `n` interval variables.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "network needs at least one variable");
        let mut constraints = vec![RelationSet::full(); n * n];
        for i in 0..n {
            constraints[i * n + i] = RelationSet::singleton(AllenRelation::Equals);
        }
        TemporalNetwork { n, constraints }
    }

    /// Number of variables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false (networks have at least one variable).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The current constraint between variables `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[must_use]
    pub fn constraint(&self, i: usize, j: usize) -> RelationSet {
        assert!(i < self.n && j < self.n, "variable index out of range");
        self.constraints[i * self.n + j]
    }

    fn set(&mut self, i: usize, j: usize, rel: RelationSet) {
        self.constraints[i * self.n + j] = rel;
        let conv: RelationSet = rel.iter().map(AllenRelation::converse).collect();
        self.constraints[j * self.n + i] = conv;
    }

    /// Intersects the `(i, j)` constraint with `rel` (tightening it), and
    /// mirrors the converse on `(j, i)`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or `i == j` with a constraint
    /// excluding `Equals`.
    pub fn constrain(&mut self, i: usize, j: usize, rel: RelationSet) {
        assert!(i < self.n && j < self.n, "variable index out of range");
        if i == j {
            assert!(
                rel.contains(AllenRelation::Equals),
                "a variable must be able to equal itself"
            );
            return;
        }
        let tightened = self.constraint(i, j).intersection(rel);
        self.set(i, j, tightened);
    }

    /// Runs path consistency to a fixed point: for every triple
    /// `(i, k, j)`, `C[i][j] ← C[i][j] ∩ (C[i][k] ∘ C[k][j])`.
    ///
    /// Returns `false` if some constraint becomes empty — the network is
    /// inconsistent (the stated relations admit no interval assignment).
    /// Path consistency is sound (never removes a feasible relation) and,
    /// while not complete for full Allen algebra in general, exact for
    /// the pointizable fragment that event pipelines produce in practice.
    pub fn propagate(&mut self) -> bool {
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..self.n {
                for j in 0..self.n {
                    if i == j {
                        continue;
                    }
                    for k in 0..self.n {
                        if k == i || k == j {
                            continue;
                        }
                        let via: RelationSet = self
                            .constraint(i, k)
                            .iter()
                            .map(|r1| {
                                self.constraint(k, j)
                                    .iter()
                                    .map(move |r2| r1.compose(r2))
                                    .fold(RelationSet::empty(), RelationSet::union)
                            })
                            .fold(RelationSet::empty(), RelationSet::union);
                        let tightened = self.constraint(i, j).intersection(via);
                        if tightened != self.constraint(i, j) {
                            if tightened.is_empty() {
                                self.set(i, j, tightened);
                                return false;
                            }
                            self.set(i, j, tightened);
                            changed = true;
                        }
                    }
                }
            }
        }
        true
    }

    /// Checks whether a concrete assignment of intervals satisfies every
    /// pairwise constraint.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != self.len()`.
    #[must_use]
    pub fn satisfied_by(&self, assignment: &[TimeInterval]) -> bool {
        assert_eq!(
            assignment.len(),
            self.n,
            "assignment must cover every variable"
        );
        for i in 0..self.n {
            for j in 0..self.n {
                if i == j {
                    continue;
                }
                let rel = relate_intervals(assignment[i], assignment[j]);
                if !self.constraint(i, j).contains(rel) {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Display for TemporalNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "temporal network over {} variables:", self.n)?;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                let c = self.constraint(i, j);
                if c != RelationSet::full() {
                    writeln!(f, "  {i} -> {j}: {c}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TimePoint;
    use proptest::prelude::*;

    fn iv(a: u64, b: u64) -> TimeInterval {
        TimeInterval::new(TimePoint::new(a), TimePoint::new(b)).unwrap()
    }

    #[test]
    fn before_chains_transitively() {
        let mut net = TemporalNetwork::new(4);
        net.constrain(0, 1, AllenRelation::Before.into());
        net.constrain(1, 2, AllenRelation::Before.into());
        net.constrain(2, 3, AllenRelation::Before.into());
        assert!(net.propagate());
        assert_eq!(
            net.constraint(0, 3),
            RelationSet::singleton(AllenRelation::Before),
            "before is transitive across the whole chain"
        );
        assert_eq!(
            net.constraint(3, 0),
            RelationSet::singleton(AllenRelation::After),
            "converse is maintained"
        );
    }

    #[test]
    fn during_inside_during_stays_during() {
        let mut net = TemporalNetwork::new(3);
        net.constrain(0, 1, AllenRelation::During.into());
        net.constrain(1, 2, AllenRelation::During.into());
        assert!(net.propagate());
        assert_eq!(
            net.constraint(0, 2),
            RelationSet::singleton(AllenRelation::During)
        );
    }

    #[test]
    fn detects_inconsistency() {
        // a before b, b before c, c before a — a cycle.
        let mut net = TemporalNetwork::new(3);
        net.constrain(0, 1, AllenRelation::Before.into());
        net.constrain(1, 2, AllenRelation::Before.into());
        net.constrain(2, 0, AllenRelation::Before.into());
        assert!(!net.propagate(), "a strict cycle is unsatisfiable");
    }

    #[test]
    fn propagation_narrows_disjunctive_constraints() {
        // a meets b; b during c. What can a-to-c be? Composition gives
        // {overlaps, during, starts}.
        let mut net = TemporalNetwork::new(3);
        net.constrain(0, 1, AllenRelation::Meets.into());
        net.constrain(1, 2, AllenRelation::During.into());
        assert!(net.propagate());
        let ac = net.constraint(0, 2);
        assert!(ac.len() < 13, "must have learned something");
        // Verify soundness on a concrete witness: a=[0,2] meets b=[2,4]
        // during c=[1,9] → relate(a, c) must be admitted.
        let witness = [iv(0, 2), iv(2, 4), iv(1, 9)];
        assert!(net.satisfied_by(&witness));
    }

    #[test]
    fn equality_column_is_fixed() {
        let net = TemporalNetwork::new(2);
        assert_eq!(
            net.constraint(0, 0),
            RelationSet::singleton(AllenRelation::Equals)
        );
    }

    #[test]
    fn constrain_is_an_intersection() {
        let mut net = TemporalNetwork::new(2);
        let some: RelationSet = [AllenRelation::Before, AllenRelation::Meets]
            .into_iter()
            .collect();
        net.constrain(0, 1, some);
        net.constrain(0, 1, AllenRelation::Before.into());
        assert_eq!(
            net.constraint(0, 1),
            RelationSet::singleton(AllenRelation::Before)
        );
    }

    #[test]
    #[should_panic(expected = "variable index out of range")]
    fn rejects_bad_indices() {
        let net = TemporalNetwork::new(2);
        let _ = net.constraint(0, 5);
    }

    #[test]
    fn satisfied_by_checks_all_pairs() {
        let mut net = TemporalNetwork::new(2);
        net.constrain(0, 1, AllenRelation::Before.into());
        assert!(net.satisfied_by(&[iv(0, 1), iv(5, 9)]));
        assert!(!net.satisfied_by(&[iv(5, 9), iv(0, 1)]));
    }

    proptest! {
        /// Soundness: propagation never removes the relation realized by
        /// a concrete assignment consistent with the stated constraints.
        #[test]
        fn propagation_is_sound(
            s1 in 0u64..20, l1 in 1u64..8,
            s2 in 0u64..20, l2 in 1u64..8,
            s3 in 0u64..20, l3 in 1u64..8,
        ) {
            let a = iv(s1, s1 + l1);
            let b = iv(s2, s2 + l2);
            let c = iv(s3, s3 + l3);
            // Build the network from the true pairwise relations.
            let mut net = TemporalNetwork::new(3);
            net.constrain(0, 1, relate_intervals(a, b).into());
            net.constrain(1, 2, relate_intervals(b, c).into());
            // (0,2) left unconstrained; propagation must keep the truth.
            prop_assert!(net.propagate());
            prop_assert!(net.constraint(0, 2).contains(relate_intervals(a, c)));
            prop_assert!(net.satisfied_by(&[a, b, c]));
        }

        /// Propagation is idempotent: a second run changes nothing.
        #[test]
        fn propagation_is_idempotent(
            r1 in 0usize..13, r2 in 0usize..13,
        ) {
            use crate::ALL_ALLEN_RELATIONS;
            let mut net = TemporalNetwork::new(3);
            net.constrain(0, 1, ALL_ALLEN_RELATIONS[r1].into());
            net.constrain(1, 2, ALL_ALLEN_RELATIONS[r2].into());
            if net.propagate() {
                let snapshot = net.clone();
                prop_assert!(net.propagate());
                prop_assert_eq!(net, snapshot);
            }
        }
    }
}
