//! Temporal aggregation functions `g_t` (Eq. 4.3).
//!
//! "A temporal event condition can be represented as
//! `g_t[t1, t2, ..., tn] OP_T C_t` where `g_t` is an aggregation function
//! which takes the time (occurrence time, estimated occurrence time and so
//! on) of n entities."

use crate::{TemporalExtent, TimeInterval, TimePoint};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A temporal aggregation function `g_t` mapping the occurrence times of
/// *n* entities to a single [`TemporalExtent`].
///
/// # Example
///
/// ```
/// use stem_temporal::{TemporalExtent, TimeAgg, TimePoint};
///
/// let times = [
///     TemporalExtent::punctual(TimePoint::new(4)),
///     TemporalExtent::punctual(TimePoint::new(10)),
/// ];
/// assert_eq!(
///     TimeAgg::Earliest.apply(&times),
///     Some(TemporalExtent::punctual(TimePoint::new(4)))
/// );
/// let hull = TimeAgg::Hull.apply(&times).unwrap();
/// assert_eq!(hull.start(), TimePoint::new(4));
/// assert_eq!(hull.end(), TimePoint::new(10));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimeAgg {
    /// The earliest start among the inputs (punctual result).
    Earliest,
    /// The latest end among the inputs (punctual result).
    Latest,
    /// The mean of the input midpoints (punctual result, floor-rounded).
    Mean,
    /// The convex hull of the inputs (interval result, punctual if all
    /// inputs coincide).
    Hull,
    /// The identity on a single input; on several inputs behaves like
    /// [`TimeAgg::Hull`]. Used when a condition refers to one entity's time
    /// directly.
    Identity,
}

impl TimeAgg {
    /// Applies the aggregate to a slice of extents.
    ///
    /// Returns `None` on empty input — the paper's conditions always range
    /// over at least one entity, so an empty aggregation is undefined
    /// rather than defaulted.
    #[must_use]
    pub fn apply(self, times: &[TemporalExtent]) -> Option<TemporalExtent> {
        let (first, rest) = times.split_first()?;
        Some(match self {
            TimeAgg::Earliest => {
                let min = times.iter().map(TemporalExtent::start).min()?;
                TemporalExtent::punctual(min)
            }
            TimeAgg::Latest => {
                let max = times.iter().map(TemporalExtent::end).max()?;
                TemporalExtent::punctual(max)
            }
            TimeAgg::Mean => {
                let sum: u128 = times.iter().map(|e| u128::from(e.midpoint().ticks())).sum();
                TemporalExtent::punctual(TimePoint::new((sum / times.len() as u128) as u64))
            }
            TimeAgg::Hull | TimeAgg::Identity => {
                let hull = rest.iter().fold(*first, |acc, e| acc.hull(e));
                hull
            }
        })
    }

    /// Parses the aggregate from its canonical lowercase name
    /// (`earliest, latest, mean, hull, time`).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "earliest" => TimeAgg::Earliest,
            "latest" => TimeAgg::Latest,
            "mean" => TimeAgg::Mean,
            "hull" => TimeAgg::Hull,
            "time" => TimeAgg::Identity,
            _ => return None,
        })
    }

    /// The canonical lowercase name (inverse of [`TimeAgg::from_name`]).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TimeAgg::Earliest => "earliest",
            TimeAgg::Latest => "latest",
            TimeAgg::Mean => "mean",
            TimeAgg::Hull => "hull",
            TimeAgg::Identity => "time",
        }
    }
}

impl fmt::Display for TimeAgg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Convenience: the convex hull of a non-empty set of intervals.
///
/// Returns `None` on empty input.
///
/// # Example
///
/// ```
/// use stem_temporal::{interval_hull, TimeInterval, TimePoint};
///
/// let h = interval_hull(&[
///     TimeInterval::spanning(TimePoint::new(4), TimePoint::new(6)),
///     TimeInterval::spanning(TimePoint::new(1), TimePoint::new(2)),
/// ]).unwrap();
/// assert_eq!(h.start(), TimePoint::new(1));
/// ```
#[must_use]
pub fn interval_hull(intervals: &[TimeInterval]) -> Option<TimeInterval> {
    let (first, rest) = intervals.split_first()?;
    Some(rest.iter().fold(*first, |acc, iv| acc.hull(*iv)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(t: u64) -> TemporalExtent {
        TemporalExtent::punctual(TimePoint::new(t))
    }

    fn i(a: u64, b: u64) -> TemporalExtent {
        TemporalExtent::interval(TimeInterval::new(TimePoint::new(a), TimePoint::new(b)).unwrap())
    }

    #[test]
    fn empty_input_is_undefined() {
        for agg in [
            TimeAgg::Earliest,
            TimeAgg::Latest,
            TimeAgg::Mean,
            TimeAgg::Hull,
            TimeAgg::Identity,
        ] {
            assert_eq!(agg.apply(&[]), None, "{agg} on empty input");
        }
    }

    #[test]
    fn earliest_and_latest_use_extent_bounds() {
        let times = [i(4, 9), p(2), i(7, 20)];
        assert_eq!(TimeAgg::Earliest.apply(&times), Some(p(2)));
        assert_eq!(TimeAgg::Latest.apply(&times), Some(p(20)));
    }

    #[test]
    fn mean_averages_midpoints() {
        let times = [p(0), p(10)];
        assert_eq!(TimeAgg::Mean.apply(&times), Some(p(5)));
        // Midpoint of [4,8] is 6, of [0,0] is 0 => mean 3.
        let times = [i(4, 8), p(0)];
        assert_eq!(TimeAgg::Mean.apply(&times), Some(p(3)));
    }

    #[test]
    fn identity_on_single_input_is_that_input() {
        assert_eq!(TimeAgg::Identity.apply(&[i(3, 7)]), Some(i(3, 7)));
        assert_eq!(TimeAgg::Identity.apply(&[p(5)]), Some(p(5)));
    }

    #[test]
    fn hull_of_punctuals_spans_them() {
        let h = TimeAgg::Hull.apply(&[p(3), p(9), p(5)]).unwrap();
        assert_eq!((h.start().ticks(), h.end().ticks()), (3, 9));
    }

    #[test]
    fn interval_hull_helper() {
        let ivs = [
            TimeInterval::spanning(TimePoint::new(5), TimePoint::new(9)),
            TimeInterval::spanning(TimePoint::new(0), TimePoint::new(2)),
        ];
        let h = interval_hull(&ivs).unwrap();
        assert_eq!((h.start().ticks(), h.end().ticks()), (0, 9));
        assert_eq!(interval_hull(&[]), None);
    }

    #[test]
    fn names_round_trip() {
        for agg in [
            TimeAgg::Earliest,
            TimeAgg::Latest,
            TimeAgg::Mean,
            TimeAgg::Hull,
            TimeAgg::Identity,
        ] {
            assert_eq!(TimeAgg::from_name(agg.name()), Some(agg));
        }
    }

    proptest! {
        /// The hull contains every input extent.
        #[test]
        fn hull_contains_all_inputs(raw in proptest::collection::vec((0u64..100, 0u64..10), 1..8)) {
            let extents: Vec<TemporalExtent> = raw.iter().map(|&(s, l)| i(s, s + l)).collect();
            let hull = TimeAgg::Hull.apply(&extents).unwrap().as_interval();
            for e in &extents {
                prop_assert!(hull.contains_interval(e.as_interval()));
            }
        }

        /// Earliest <= Mean <= Latest.
        #[test]
        fn aggregate_ordering(raw in proptest::collection::vec(0u64..1000, 1..10)) {
            let extents: Vec<TemporalExtent> = raw.iter().map(|&t| p(t)).collect();
            let e = TimeAgg::Earliest.apply(&extents).unwrap().start();
            let m = TimeAgg::Mean.apply(&extents).unwrap().start();
            let l = TimeAgg::Latest.apply(&extents).unwrap().start();
            prop_assert!(e <= m && m <= l);
        }
    }
}
