//! Discrete time model and temporal relation algebra for the STEM
//! cyber-physical event model.
//!
//! The paper (Tan, Vuran & Goddard, ICDCS 2009, Sec. 4) adopts a *discrete*
//! time model — "time is considered as a discrete collection of time
//! points" — and classifies events temporally as **punctual** (occurring at
//! a [`TimePoint`]) or **interval** (occurring over a [`TimeInterval`]).
//! This crate provides:
//!
//! * [`TimePoint`] / [`Duration`] — discrete tick arithmetic,
//! * [`TimeInterval`] — closed intervals `[start, end]`,
//! * [`TemporalExtent`] — the punctual-or-interval occurrence time of an
//!   event (Sec. 4.2),
//! * the three relation families of Sec. 4.2: point–point
//!   ([`PointRelation`]), point–interval ([`PointIntervalRelation`]), and
//!   interval–interval ([`AllenRelation`], Allen's 13 relations) together
//!   with converse and a correct-by-construction composition table,
//! * [`TemporalOperator`] — the paper's `OP_T` ("Before, After, During,
//!   Begin, End, Meet, Overlap, …") evaluated uniformly over extents,
//! * [`TimeAgg`] — the aggregation functions `g_t` of Eq. 4.3,
//! * clock models ([`Clock`], [`PerfectClock`], [`DriftingClock`]) used by
//!   observers to stamp event instances.
//!
//! # Example
//!
//! ```
//! use stem_temporal::{TimePoint, TimeInterval, TemporalExtent, TemporalOperator};
//!
//! let x = TemporalExtent::punctual(TimePoint::new(10));
//! let y = TemporalExtent::interval(TimeInterval::new(TimePoint::new(20), TimePoint::new(30))?);
//! assert!(TemporalOperator::Before.eval(&x, &y));
//! assert!(!TemporalOperator::During.eval(&x, &y));
//! # Ok::<(), stem_temporal::InvalidInterval>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agg;
mod clock;
mod interval;
mod network;
mod ops;
mod relations;
mod time;

pub use agg::{interval_hull, TimeAgg};
pub use clock::{Clock, DriftingClock, PerfectClock, SteppedClock};
pub use interval::{InvalidInterval, TemporalExtent, TimeInterval};
pub use network::TemporalNetwork;
pub use ops::{TemporalOperator, ALL_TEMPORAL_OPERATORS};
pub use relations::{
    relate_intervals, relate_point_interval, relate_points, AllenRelation, PointIntervalRelation,
    PointRelation, RelationSet, ALL_ALLEN_RELATIONS,
};
pub use time::{Duration, TimePoint};
