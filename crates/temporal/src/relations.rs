//! The three temporal relation families of Sec. 4.2.
//!
//! "The temporal relationships between two events can be extended to 3
//! types: punctual event with punctual event (e.g. Before, After), punctual
//! event with interval event (e.g. During, Meet), and interval event with
//! interval event (e.g. Overlap)."
//!
//! Interval–interval relations are Allen's 13 qualitative relations,
//! complete with converse and a correct-by-construction composition table
//! (built once by exhaustive enumeration of endpoint configurations and
//! cached), enabling the "formal temporal analysis" the paper calls for.

use crate::{TimeInterval, TimePoint};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::OnceLock;

/// Qualitative relation between two time points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PointRelation {
    /// The first point precedes the second.
    Before,
    /// The two points coincide.
    Simultaneous,
    /// The first point follows the second.
    After,
}

impl PointRelation {
    /// The converse relation (`relate(b, a)` given `relate(a, b)`).
    #[must_use]
    pub fn converse(self) -> PointRelation {
        match self {
            PointRelation::Before => PointRelation::After,
            PointRelation::Simultaneous => PointRelation::Simultaneous,
            PointRelation::After => PointRelation::Before,
        }
    }
}

impl fmt::Display for PointRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PointRelation::Before => "before",
            PointRelation::Simultaneous => "simultaneous",
            PointRelation::After => "after",
        };
        f.write_str(s)
    }
}

/// Classifies the relation between two time points.
///
/// # Example
///
/// ```
/// use stem_temporal::{relate_points, PointRelation, TimePoint};
///
/// assert_eq!(
///     relate_points(TimePoint::new(1), TimePoint::new(2)),
///     PointRelation::Before
/// );
/// ```
#[must_use]
pub fn relate_points(a: TimePoint, b: TimePoint) -> PointRelation {
    match a.cmp(&b) {
        std::cmp::Ordering::Less => PointRelation::Before,
        std::cmp::Ordering::Equal => PointRelation::Simultaneous,
        std::cmp::Ordering::Greater => PointRelation::After,
    }
}

/// Qualitative relation between a time point and a (closed) time interval.
///
/// The paper names "During" and "Meet" as examples of the point–interval
/// family; the full exhaustive set distinguishes meeting the interval at
/// its start ([`PointIntervalRelation::Starts`]) from meeting it at its end
/// ([`PointIntervalRelation::Finishes`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PointIntervalRelation {
    /// The point precedes the interval start.
    Before,
    /// The point coincides with the interval start.
    Starts,
    /// The point lies strictly inside the interval.
    During,
    /// The point coincides with the interval end.
    Finishes,
    /// The point follows the interval end.
    After,
}

impl fmt::Display for PointIntervalRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PointIntervalRelation::Before => "before",
            PointIntervalRelation::Starts => "starts",
            PointIntervalRelation::During => "during",
            PointIntervalRelation::Finishes => "finishes",
            PointIntervalRelation::After => "after",
        };
        f.write_str(s)
    }
}

/// Classifies the relation between a point and an interval.
///
/// For a degenerate interval `[t, t]`, a coincident point classifies as
/// [`PointIntervalRelation::Starts`] (start-coincidence is checked first).
///
/// # Example
///
/// ```
/// use stem_temporal::{relate_point_interval, PointIntervalRelation, TimeInterval, TimePoint};
///
/// let iv = TimeInterval::new(TimePoint::new(10), TimePoint::new(20))?;
/// assert_eq!(
///     relate_point_interval(TimePoint::new(15), iv),
///     PointIntervalRelation::During
/// );
/// # Ok::<(), stem_temporal::InvalidInterval>(())
/// ```
#[must_use]
pub fn relate_point_interval(t: TimePoint, iv: TimeInterval) -> PointIntervalRelation {
    if t < iv.start() {
        PointIntervalRelation::Before
    } else if t == iv.start() {
        PointIntervalRelation::Starts
    } else if t < iv.end() {
        PointIntervalRelation::During
    } else if t == iv.end() {
        PointIntervalRelation::Finishes
    } else {
        PointIntervalRelation::After
    }
}

/// Allen's 13 qualitative interval–interval relations.
///
/// Exactly one relation holds between any two *proper* (non-degenerate)
/// intervals. Degenerate (single-point) intervals are classified with the
/// same endpoint comparisons; see [`relate_intervals`] for the edge-case
/// semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum AllenRelation {
    /// `a` ends strictly before `b` starts.
    Before = 0,
    /// `a` ends exactly where `b` starts.
    Meets = 1,
    /// `a` starts first and the intervals properly overlap.
    Overlaps = 2,
    /// `a` and `b` start together; `a` ends first.
    Starts = 3,
    /// `a` lies strictly inside `b`.
    During = 4,
    /// `a` and `b` end together; `a` starts later.
    Finishes = 5,
    /// The intervals coincide.
    Equals = 6,
    /// Converse of [`AllenRelation::Finishes`].
    FinishedBy = 7,
    /// Converse of [`AllenRelation::During`].
    Contains = 8,
    /// Converse of [`AllenRelation::Starts`].
    StartedBy = 9,
    /// Converse of [`AllenRelation::Overlaps`].
    OverlappedBy = 10,
    /// Converse of [`AllenRelation::Meets`].
    MetBy = 11,
    /// Converse of [`AllenRelation::Before`].
    After = 12,
}

/// All 13 Allen relations, in discriminant order.
pub const ALL_ALLEN_RELATIONS: [AllenRelation; 13] = [
    AllenRelation::Before,
    AllenRelation::Meets,
    AllenRelation::Overlaps,
    AllenRelation::Starts,
    AllenRelation::During,
    AllenRelation::Finishes,
    AllenRelation::Equals,
    AllenRelation::FinishedBy,
    AllenRelation::Contains,
    AllenRelation::StartedBy,
    AllenRelation::OverlappedBy,
    AllenRelation::MetBy,
    AllenRelation::After,
];

impl AllenRelation {
    /// The converse relation: if `a rel b` then `b rel.converse() a`.
    #[must_use]
    pub fn converse(self) -> AllenRelation {
        use AllenRelation::*;
        match self {
            Before => After,
            Meets => MetBy,
            Overlaps => OverlappedBy,
            Starts => StartedBy,
            During => Contains,
            Finishes => FinishedBy,
            Equals => Equals,
            FinishedBy => Finishes,
            Contains => During,
            StartedBy => Starts,
            OverlappedBy => Overlaps,
            MetBy => Meets,
            After => Before,
        }
    }

    /// Composes two relations: the set of relations possible between `a`
    /// and `c` given `a self b` and `b other c`.
    ///
    /// The 13×13 composition table is built once by exhaustive enumeration
    /// of integer endpoint configurations (endpoints in `0..=12` suffice to
    /// realize every qualitative configuration of three proper intervals)
    /// and cached for the lifetime of the process.
    ///
    /// # Example
    ///
    /// ```
    /// use stem_temporal::{AllenRelation, RelationSet};
    ///
    /// // before ∘ before = {before}
    /// let set = AllenRelation::Before.compose(AllenRelation::Before);
    /// assert_eq!(set, RelationSet::singleton(AllenRelation::Before));
    /// ```
    #[must_use]
    pub fn compose(self, other: AllenRelation) -> RelationSet {
        composition_table()[self as usize][other as usize]
    }

    /// Short mnemonic used in tables (`b, m, o, s, d, f, =, F, D, S, O, M, B`).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        use AllenRelation::*;
        match self {
            Before => "b",
            Meets => "m",
            Overlaps => "o",
            Starts => "s",
            During => "d",
            Finishes => "f",
            Equals => "=",
            FinishedBy => "F",
            Contains => "D",
            StartedBy => "S",
            OverlappedBy => "O",
            MetBy => "M",
            After => "B",
        }
    }
}

impl fmt::Display for AllenRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use AllenRelation::*;
        let s = match self {
            Before => "before",
            Meets => "meets",
            Overlaps => "overlaps",
            Starts => "starts",
            During => "during",
            Finishes => "finishes",
            Equals => "equals",
            FinishedBy => "finished-by",
            Contains => "contains",
            StartedBy => "started-by",
            OverlappedBy => "overlapped-by",
            MetBy => "met-by",
            After => "after",
        };
        f.write_str(s)
    }
}

/// Classifies the Allen relation between two closed intervals.
///
/// The classification is purely endpoint-based, so it extends to degenerate
/// intervals: e.g. `[5,5]` vs. `[5,9]` classifies as
/// [`AllenRelation::Starts`].
///
/// # Example
///
/// ```
/// use stem_temporal::{relate_intervals, AllenRelation, TimeInterval, TimePoint};
///
/// let a = TimeInterval::new(TimePoint::new(0), TimePoint::new(5))?;
/// let b = TimeInterval::new(TimePoint::new(3), TimePoint::new(9))?;
/// assert_eq!(relate_intervals(a, b), AllenRelation::Overlaps);
/// # Ok::<(), stem_temporal::InvalidInterval>(())
/// ```
#[must_use]
pub fn relate_intervals(a: TimeInterval, b: TimeInterval) -> AllenRelation {
    use std::cmp::Ordering::*;
    let (sa, ea, sb, eb) = (a.start(), a.end(), b.start(), b.end());
    match (sa.cmp(&sb), ea.cmp(&eb)) {
        (Equal, Equal) => AllenRelation::Equals,
        (Equal, Less) => AllenRelation::Starts,
        (Equal, Greater) => AllenRelation::StartedBy,
        (Less, Equal) => AllenRelation::FinishedBy,
        (Greater, Equal) => AllenRelation::Finishes,
        (Less, Less) => {
            if ea < sb {
                AllenRelation::Before
            } else if ea == sb {
                AllenRelation::Meets
            } else {
                AllenRelation::Overlaps
            }
        }
        (Greater, Greater) => {
            if sa > eb {
                AllenRelation::After
            } else if sa == eb {
                AllenRelation::MetBy
            } else {
                AllenRelation::OverlappedBy
            }
        }
        (Less, Greater) => AllenRelation::Contains,
        (Greater, Less) => AllenRelation::During,
    }
}

/// A set of [`AllenRelation`]s, stored as a 13-bit mask.
///
/// Used as the result type of relation composition and in qualitative
/// constraint propagation.
///
/// # Example
///
/// ```
/// use stem_temporal::{AllenRelation, RelationSet};
///
/// let mut s = RelationSet::empty();
/// s.insert(AllenRelation::Before);
/// s.insert(AllenRelation::Meets);
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(AllenRelation::Before));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct RelationSet(u16);

impl RelationSet {
    /// The empty set.
    #[must_use]
    pub const fn empty() -> Self {
        RelationSet(0)
    }

    /// The set of all 13 relations.
    #[must_use]
    pub const fn full() -> Self {
        RelationSet((1 << 13) - 1)
    }

    /// A set containing exactly one relation.
    #[must_use]
    pub const fn singleton(r: AllenRelation) -> Self {
        RelationSet(1 << (r as u16))
    }

    /// Inserts a relation into the set.
    pub fn insert(&mut self, r: AllenRelation) {
        self.0 |= 1 << (r as u16);
    }

    /// Returns `true` if the set contains `r`.
    #[must_use]
    pub const fn contains(self, r: AllenRelation) -> bool {
        self.0 & (1 << (r as u16)) != 0
    }

    /// Number of relations in the set.
    #[must_use]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Returns `true` if the set is empty.
    #[must_use]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Set union.
    #[must_use]
    pub const fn union(self, other: RelationSet) -> RelationSet {
        RelationSet(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use]
    pub const fn intersection(self, other: RelationSet) -> RelationSet {
        RelationSet(self.0 & other.0)
    }

    /// Iterates over the member relations in discriminant order.
    pub fn iter(self) -> impl Iterator<Item = AllenRelation> {
        ALL_ALLEN_RELATIONS
            .into_iter()
            .filter(move |r| self.contains(*r))
    }
}

impl fmt::Display for RelationSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for r in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{}", r.mnemonic())?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl FromIterator<AllenRelation> for RelationSet {
    fn from_iter<I: IntoIterator<Item = AllenRelation>>(iter: I) -> Self {
        let mut s = RelationSet::empty();
        for r in iter {
            s.insert(r);
        }
        s
    }
}

impl From<AllenRelation> for RelationSet {
    fn from(r: AllenRelation) -> Self {
        RelationSet::singleton(r)
    }
}

/// Builds (once) the 13×13 Allen composition table by exhaustive
/// enumeration of proper integer intervals with endpoints in `0..=N`.
///
/// With three proper intervals there are at most 6 distinct endpoints, so
/// any qualitative configuration is realizable on a grid of 12 points;
/// enumerating all triples over that grid therefore produces the complete
/// table.
fn composition_table() -> &'static [[RelationSet; 13]; 13] {
    static TABLE: OnceLock<[[RelationSet; 13]; 13]> = OnceLock::new();
    TABLE.get_or_init(|| {
        const N: u64 = 12;
        let mut table = [[RelationSet::empty(); 13]; 13];
        let mut intervals = Vec::new();
        for s in 0..N {
            for e in (s + 1)..=N {
                intervals.push(TimeInterval::spanning(TimePoint::new(s), TimePoint::new(e)));
            }
        }
        for &a in &intervals {
            for &b in &intervals {
                let r_ab = relate_intervals(a, b);
                for &c in &intervals {
                    let r_bc = relate_intervals(b, c);
                    let r_ac = relate_intervals(a, c);
                    table[r_ab as usize][r_bc as usize].insert(r_ac);
                }
            }
        }
        table
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn iv(a: u64, b: u64) -> TimeInterval {
        TimeInterval::new(TimePoint::new(a), TimePoint::new(b)).unwrap()
    }

    #[test]
    fn point_relations_cover_all_orderings() {
        assert_eq!(
            relate_points(TimePoint::new(1), TimePoint::new(2)),
            PointRelation::Before
        );
        assert_eq!(
            relate_points(TimePoint::new(2), TimePoint::new(2)),
            PointRelation::Simultaneous
        );
        assert_eq!(
            relate_points(TimePoint::new(3), TimePoint::new(2)),
            PointRelation::After
        );
    }

    #[test]
    fn point_interval_relations_cover_all_positions() {
        let i = iv(10, 20);
        let cases = [
            (5, PointIntervalRelation::Before),
            (10, PointIntervalRelation::Starts),
            (15, PointIntervalRelation::During),
            (20, PointIntervalRelation::Finishes),
            (25, PointIntervalRelation::After),
        ];
        for (t, expected) in cases {
            assert_eq!(relate_point_interval(TimePoint::new(t), i), expected);
        }
    }

    #[test]
    fn allen_relation_examples_match_definitions() {
        let cases = [
            (iv(0, 2), iv(5, 9), AllenRelation::Before),
            (iv(0, 5), iv(5, 9), AllenRelation::Meets),
            (iv(0, 6), iv(5, 9), AllenRelation::Overlaps),
            (iv(5, 7), iv(5, 9), AllenRelation::Starts),
            (iv(6, 8), iv(5, 9), AllenRelation::During),
            (iv(7, 9), iv(5, 9), AllenRelation::Finishes),
            (iv(5, 9), iv(5, 9), AllenRelation::Equals),
            (iv(5, 9), iv(7, 9), AllenRelation::FinishedBy),
            (iv(5, 9), iv(6, 8), AllenRelation::Contains),
            (iv(5, 9), iv(5, 7), AllenRelation::StartedBy),
            (iv(5, 9), iv(0, 6), AllenRelation::OverlappedBy),
            (iv(5, 9), iv(0, 5), AllenRelation::MetBy),
            (iv(5, 9), iv(0, 2), AllenRelation::After),
        ];
        for (a, b, expected) in cases {
            assert_eq!(relate_intervals(a, b), expected, "{a} vs {b}");
        }
    }

    #[test]
    fn degenerate_interval_relations_are_consistent() {
        // [5,5] starts [5,9]; [9,9] finishes [5,9]; [7,7] during [5,9].
        assert_eq!(relate_intervals(iv(5, 5), iv(5, 9)), AllenRelation::Starts);
        assert_eq!(
            relate_intervals(iv(9, 9), iv(5, 9)),
            AllenRelation::Finishes
        );
        assert_eq!(relate_intervals(iv(7, 7), iv(5, 9)), AllenRelation::During);
        // Two equal degenerate intervals are Equals.
        assert_eq!(relate_intervals(iv(4, 4), iv(4, 4)), AllenRelation::Equals);
    }

    #[test]
    fn relation_set_operations() {
        let a = RelationSet::singleton(AllenRelation::Before)
            .union(RelationSet::singleton(AllenRelation::Meets));
        assert_eq!(a.len(), 2);
        assert!(a.contains(AllenRelation::Meets));
        assert!(!a.contains(AllenRelation::After));
        let b = RelationSet::singleton(AllenRelation::Meets);
        assert_eq!(a.intersection(b), b);
        assert!(RelationSet::empty().is_empty());
        assert_eq!(RelationSet::full().len(), 13);
        assert_eq!(a.to_string(), "{b,m}");
    }

    #[test]
    fn relation_set_from_iterator() {
        let s: RelationSet = [
            AllenRelation::Before,
            AllenRelation::Before,
            AllenRelation::After,
        ]
        .into_iter()
        .collect();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn classic_composition_entries() {
        // Well-known entries of Allen's composition table.
        use AllenRelation::*;
        assert_eq!(Before.compose(Before), RelationSet::singleton(Before));
        assert_eq!(Meets.compose(Meets), RelationSet::singleton(Before));
        assert_eq!(Equals.compose(During), RelationSet::singleton(During));
        // during ∘ during = {during}
        assert_eq!(During.compose(During), RelationSet::singleton(During));
        // before ∘ after = full set (no information).
        assert_eq!(Before.compose(After), RelationSet::full());
        // overlaps ∘ overlaps = {before, meets, overlaps}
        let expected: RelationSet = [Before, Meets, Overlaps].into_iter().collect();
        assert_eq!(Overlaps.compose(Overlaps), expected);
    }

    #[test]
    fn composition_with_equals_is_identity() {
        for r in ALL_ALLEN_RELATIONS {
            assert_eq!(
                AllenRelation::Equals.compose(r),
                RelationSet::singleton(r),
                "= ∘ {r} should be {{{r}}}"
            );
            assert_eq!(
                r.compose(AllenRelation::Equals),
                RelationSet::singleton(r),
                "{r} ∘ = should be {{{r}}}"
            );
        }
    }

    #[test]
    fn converse_is_involutive() {
        for r in ALL_ALLEN_RELATIONS {
            assert_eq!(r.converse().converse(), r);
        }
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for r in ALL_ALLEN_RELATIONS {
            assert!(
                seen.insert(r.mnemonic()),
                "duplicate mnemonic {}",
                r.mnemonic()
            );
        }
    }

    proptest! {
        /// Exactly one Allen relation holds between any two proper intervals,
        /// and it is what `relate_intervals` reports.
        #[test]
        fn exactly_one_relation_holds(s1 in 0u64..50, l1 in 1u64..20, s2 in 0u64..50, l2 in 1u64..20) {
            let a = iv(s1, s1 + l1);
            let b = iv(s2, s2 + l2);
            let r = relate_intervals(a, b);
            // The relation must be consistent with its converse.
            prop_assert_eq!(relate_intervals(b, a), r.converse());
        }

        /// Composition soundness: for any three proper intervals,
        /// relate(a,c) ∈ compose(relate(a,b), relate(b,c)).
        #[test]
        fn composition_is_sound(
            s1 in 0u64..40, l1 in 1u64..15,
            s2 in 0u64..40, l2 in 1u64..15,
            s3 in 0u64..40, l3 in 1u64..15,
        ) {
            let a = iv(s1, s1 + l1);
            let b = iv(s2, s2 + l2);
            let c = iv(s3, s3 + l3);
            let r_ab = relate_intervals(a, b);
            let r_bc = relate_intervals(b, c);
            let r_ac = relate_intervals(a, c);
            prop_assert!(
                r_ab.compose(r_bc).contains(r_ac),
                "{} ∘ {} must admit {}", r_ab, r_bc, r_ac
            );
        }

        /// Before is transitive.
        #[test]
        fn before_is_transitive(s1 in 0u64..20, l1 in 1u64..5, g1 in 1u64..5, l2 in 1u64..5, g2 in 1u64..5, l3 in 1u64..5) {
            let a = iv(s1, s1 + l1);
            let b_start = s1 + l1 + g1;
            let b = iv(b_start, b_start + l2);
            let c_start = b_start + l2 + g2;
            let c = iv(c_start, c_start + l3);
            prop_assert_eq!(relate_intervals(a, b), AllenRelation::Before);
            prop_assert_eq!(relate_intervals(b, c), AllenRelation::Before);
            prop_assert_eq!(relate_intervals(a, c), AllenRelation::Before);
        }

        /// Point–interval classification agrees with interval containment.
        #[test]
        fn point_interval_agrees_with_contains(t in 0u64..60, s in 0u64..50, l in 1u64..10) {
            let i = iv(s, s + l);
            let rel = relate_point_interval(TimePoint::new(t), i);
            let inside = matches!(
                rel,
                PointIntervalRelation::Starts
                    | PointIntervalRelation::During
                    | PointIntervalRelation::Finishes
            );
            prop_assert_eq!(inside, i.contains(TimePoint::new(t)));
        }
    }
}
