//! The paper's temporal operators `OP_T` (Eq. 4.3), evaluated over extents.

use crate::{relate_intervals, AllenRelation, TemporalExtent};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A temporal operator `OP_T` from Eq. 4.3: "temporal operators such as
/// *Before, After, During, Begin, End*", extended with the interval
/// relations the paper requires for completeness (*Meet, Overlap*, Sec. 4.2)
/// plus equality and intersection.
///
/// Every operator is defined uniformly over [`TemporalExtent`]s, so all
/// three relation families of Sec. 4.2 (point–point, point–interval,
/// interval–interval) evaluate through the same entry point. A punctual
/// extent behaves as the degenerate interval `[t, t]`.
///
/// # Example
///
/// ```
/// use stem_temporal::{TemporalExtent, TemporalOperator, TimeInterval, TimePoint};
///
/// let x = TemporalExtent::punctual(TimePoint::new(12));
/// let y = TemporalExtent::interval(
///     TimeInterval::new(TimePoint::new(10), TimePoint::new(20))?,
/// );
/// assert!(TemporalOperator::During.eval(&x, &y));
/// assert!(TemporalOperator::Within.eval(&x, &y));
/// assert!(!TemporalOperator::Before.eval(&x, &y));
/// # Ok::<(), stem_temporal::InvalidInterval>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TemporalOperator {
    /// `a` ends strictly before `b` starts.
    Before,
    /// `a` starts strictly after `b` ends.
    After,
    /// `a` lies strictly inside `b` (proper containment: `b` extends
    /// beyond `a` on both sides).
    During,
    /// `a` lies inside `b`, boundaries allowed (non-strict containment).
    Within,
    /// `a` and `b` start at the same time point (the paper's *Begin*).
    Begin,
    /// `a` and `b` end at the same time point (the paper's *End*).
    End,
    /// `a` ends exactly when `b` starts, or vice versa (the paper's *Meet*).
    Meet,
    /// The extents properly overlap: they intersect, neither contains the
    /// other, and neither merely meets the other (the paper's *Overlap*).
    Overlap,
    /// The extents occupy exactly the same span.
    Equal,
    /// The extents share at least one time point.
    Intersects,
}

/// All temporal operators, for exhaustive sweeps in tests and benchmarks.
pub const ALL_TEMPORAL_OPERATORS: [TemporalOperator; 10] = [
    TemporalOperator::Before,
    TemporalOperator::After,
    TemporalOperator::During,
    TemporalOperator::Within,
    TemporalOperator::Begin,
    TemporalOperator::End,
    TemporalOperator::Meet,
    TemporalOperator::Overlap,
    TemporalOperator::Equal,
    TemporalOperator::Intersects,
];

impl TemporalOperator {
    /// Evaluates `a OP_T b`.
    #[must_use]
    pub fn eval(self, a: &TemporalExtent, b: &TemporalExtent) -> bool {
        let (ia, ib) = (a.as_interval(), b.as_interval());
        match self {
            TemporalOperator::Before => ia.end() < ib.start(),
            TemporalOperator::After => ia.start() > ib.end(),
            TemporalOperator::During => ib.start() < ia.start() && ia.end() < ib.end(),
            TemporalOperator::Within => ib.contains_interval(ia),
            TemporalOperator::Begin => ia.start() == ib.start(),
            TemporalOperator::End => ia.end() == ib.end(),
            TemporalOperator::Meet => ia.end() == ib.start() || ib.end() == ia.start(),
            TemporalOperator::Overlap => matches!(
                relate_intervals(ia, ib),
                AllenRelation::Overlaps | AllenRelation::OverlappedBy
            ),
            TemporalOperator::Equal => ia == ib,
            TemporalOperator::Intersects => ia.intersects(ib),
        }
    }

    /// Parses the operator from its canonical lowercase name.
    ///
    /// Returns `None` for unknown names. Recognized names:
    /// `before, after, during, within, begin, end, meet, overlap, equal,
    /// intersects`.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "before" => TemporalOperator::Before,
            "after" => TemporalOperator::After,
            "during" => TemporalOperator::During,
            "within" => TemporalOperator::Within,
            "begin" => TemporalOperator::Begin,
            "end" => TemporalOperator::End,
            "meet" => TemporalOperator::Meet,
            "overlap" => TemporalOperator::Overlap,
            "equal" => TemporalOperator::Equal,
            "intersects" => TemporalOperator::Intersects,
            _ => return None,
        })
    }

    /// The canonical lowercase name (inverse of [`TemporalOperator::from_name`]).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TemporalOperator::Before => "before",
            TemporalOperator::After => "after",
            TemporalOperator::During => "during",
            TemporalOperator::Within => "within",
            TemporalOperator::Begin => "begin",
            TemporalOperator::End => "end",
            TemporalOperator::Meet => "meet",
            TemporalOperator::Overlap => "overlap",
            TemporalOperator::Equal => "equal",
            TemporalOperator::Intersects => "intersects",
        }
    }
}

impl fmt::Display for TemporalOperator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TimeInterval, TimePoint};
    use proptest::prelude::*;

    fn p(t: u64) -> TemporalExtent {
        TemporalExtent::punctual(TimePoint::new(t))
    }

    fn i(a: u64, b: u64) -> TemporalExtent {
        TemporalExtent::interval(TimeInterval::new(TimePoint::new(a), TimePoint::new(b)).unwrap())
    }

    #[test]
    fn before_after_are_strict_and_converse() {
        assert!(TemporalOperator::Before.eval(&p(1), &p(2)));
        assert!(!TemporalOperator::Before.eval(&p(2), &p(2)));
        assert!(TemporalOperator::After.eval(&p(3), &p(2)));
        assert!(TemporalOperator::Before.eval(&i(0, 4), &i(5, 9)));
        assert!(TemporalOperator::After.eval(&i(5, 9), &i(0, 4)));
    }

    #[test]
    fn during_is_strict_within_is_not() {
        assert!(TemporalOperator::During.eval(&p(5), &i(0, 9)));
        assert!(
            !TemporalOperator::During.eval(&p(0), &i(0, 9)),
            "boundary is not strict during"
        );
        assert!(TemporalOperator::Within.eval(&p(0), &i(0, 9)));
        assert!(TemporalOperator::Within.eval(&i(0, 9), &i(0, 9)));
        assert!(!TemporalOperator::During.eval(&i(0, 9), &i(0, 9)));
    }

    #[test]
    fn begin_end_compare_respective_endpoints() {
        assert!(TemporalOperator::Begin.eval(&p(3), &i(3, 9)));
        assert!(TemporalOperator::End.eval(&p(9), &i(3, 9)));
        assert!(TemporalOperator::Begin.eval(&i(3, 5), &i(3, 9)));
        assert!(!TemporalOperator::Begin.eval(&i(4, 9), &i(3, 9)));
    }

    #[test]
    fn meet_is_symmetric() {
        assert!(TemporalOperator::Meet.eval(&i(0, 5), &i(5, 9)));
        assert!(TemporalOperator::Meet.eval(&i(5, 9), &i(0, 5)));
        assert!(!TemporalOperator::Meet.eval(&i(0, 4), &i(5, 9)));
    }

    #[test]
    fn overlap_requires_proper_overlap() {
        assert!(TemporalOperator::Overlap.eval(&i(0, 6), &i(5, 9)));
        assert!(TemporalOperator::Overlap.eval(&i(5, 9), &i(0, 6)));
        assert!(
            !TemporalOperator::Overlap.eval(&i(0, 5), &i(5, 9)),
            "meeting is not overlapping"
        );
        assert!(
            !TemporalOperator::Overlap.eval(&i(2, 3), &i(0, 9)),
            "containment is not overlapping"
        );
    }

    #[test]
    fn equal_and_intersects() {
        assert!(TemporalOperator::Equal.eval(&i(1, 4), &i(1, 4)));
        assert!(TemporalOperator::Equal.eval(&p(4), &p(4)));
        assert!(TemporalOperator::Intersects.eval(&i(0, 5), &i(5, 9)));
        assert!(!TemporalOperator::Intersects.eval(&i(0, 4), &i(5, 9)));
    }

    #[test]
    fn name_round_trip() {
        for op in ALL_TEMPORAL_OPERATORS {
            assert_eq!(TemporalOperator::from_name(op.name()), Some(op));
        }
        assert_eq!(TemporalOperator::from_name("nope"), None);
    }

    proptest! {
        /// Before and After are mutually exclusive and jointly exhaustive
        /// with Intersects on any pair of extents.
        #[test]
        fn trichotomy(s1 in 0u64..40, l1 in 0u64..10, s2 in 0u64..40, l2 in 0u64..10) {
            let a = i(s1, s1 + l1);
            let b = i(s2, s2 + l2);
            let before = TemporalOperator::Before.eval(&a, &b);
            let after = TemporalOperator::After.eval(&a, &b);
            let intersects = TemporalOperator::Intersects.eval(&a, &b);
            prop_assert_eq!(before as u8 + after as u8 + intersects as u8, 1);
        }

        /// During implies Within.
        #[test]
        fn during_implies_within(s1 in 0u64..40, l1 in 0u64..10, s2 in 0u64..40, l2 in 0u64..10) {
            let a = i(s1, s1 + l1);
            let b = i(s2, s2 + l2);
            if TemporalOperator::During.eval(&a, &b) {
                prop_assert!(TemporalOperator::Within.eval(&a, &b));
            }
        }
    }
}
