//! Time intervals and temporal extents (punctual vs. interval occurrence).

use crate::{Duration, TimePoint};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error returned when constructing a [`TimeInterval`] whose end precedes
/// its start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidInterval {
    /// The offending start point.
    pub start: TimePoint,
    /// The offending end point.
    pub end: TimePoint,
}

impl fmt::Display for InvalidInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "interval end {} precedes start {}", self.end, self.start)
    }
}

impl std::error::Error for InvalidInterval {}

/// A closed discrete time interval `[start, end]` with `start <= end`.
///
/// Interval events (Sec. 4.2) are "marked by starting and ending time
/// points"; both endpoints are included. A degenerate interval with
/// `start == end` is permitted by the constructor but most callers should
/// prefer [`TemporalExtent::punctual`] for such occurrences.
///
/// # Example
///
/// ```
/// use stem_temporal::{TimeInterval, TimePoint};
///
/// let iv = TimeInterval::new(TimePoint::new(10), TimePoint::new(40))?;
/// assert_eq!(iv.length().ticks(), 30);
/// assert!(iv.contains(TimePoint::new(40)));
/// # Ok::<(), stem_temporal::InvalidInterval>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeInterval {
    start: TimePoint,
    end: TimePoint,
}

impl TimeInterval {
    /// Creates the interval `[start, end]`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidInterval`] if `end < start`.
    pub fn new(start: TimePoint, end: TimePoint) -> Result<Self, InvalidInterval> {
        if end < start {
            Err(InvalidInterval { start, end })
        } else {
            Ok(TimeInterval { start, end })
        }
    }

    /// Creates the interval `[start, start + length]`.
    #[must_use]
    pub fn with_length(start: TimePoint, length: Duration) -> Self {
        TimeInterval {
            start,
            end: start.checked_add(length).unwrap_or(TimePoint::MAX),
        }
    }

    /// Creates an interval from any two points, ordering them as needed.
    #[must_use]
    pub fn spanning(a: TimePoint, b: TimePoint) -> Self {
        TimeInterval {
            start: a.min(b),
            end: a.max(b),
        }
    }

    /// The (inclusive) starting time point.
    #[must_use]
    pub const fn start(self) -> TimePoint {
        self.start
    }

    /// The (inclusive) ending time point.
    #[must_use]
    pub const fn end(self) -> TimePoint {
        self.end
    }

    /// The interval length, `end - start`.
    #[must_use]
    pub fn length(self) -> Duration {
        self.end.abs_diff(self.start)
    }

    /// Returns `true` if `start == end`.
    #[must_use]
    pub fn is_degenerate(self) -> bool {
        self.start == self.end
    }

    /// Returns `true` if `t` lies within `[start, end]`.
    #[must_use]
    pub fn contains(self, t: TimePoint) -> bool {
        self.start <= t && t <= self.end
    }

    /// Returns `true` if `other` lies entirely within `self` (non-strict).
    #[must_use]
    pub fn contains_interval(self, other: TimeInterval) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Returns `true` if the two closed intervals share at least one point.
    #[must_use]
    pub fn intersects(self, other: TimeInterval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Returns the intersection of the two intervals, if non-empty.
    #[must_use]
    pub fn intersection(self, other: TimeInterval) -> Option<TimeInterval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        TimeInterval::new(start, end).ok()
    }

    /// Returns the smallest interval containing both operands (convex hull).
    #[must_use]
    pub fn hull(self, other: TimeInterval) -> TimeInterval {
        TimeInterval {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Shifts both endpoints by a signed tick offset, saturating at the
    /// epoch / [`TimePoint::MAX`].
    #[must_use]
    pub fn saturating_offset(self, delta: i64) -> TimeInterval {
        TimeInterval {
            start: self.start.saturating_offset(delta),
            end: self.end.saturating_offset(delta),
        }
    }
}

impl fmt::Display for TimeInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end)
    }
}

impl From<TimePoint> for TimeInterval {
    /// Converts a point into the degenerate interval `[t, t]`.
    fn from(t: TimePoint) -> Self {
        TimeInterval { start: t, end: t }
    }
}

/// The occurrence time of an event: punctual or interval (Sec. 4.2).
///
/// "According to the occurrence time, an event can be further classified as
/// a Punctual Event or Interval Event." `TemporalExtent` is that
/// classification made first-class: every event and event instance carries
/// one, and the temporal operators of Eq. 4.3 are defined over extents so
/// that all three relation families (point–point, point–interval,
/// interval–interval) are supported uniformly.
///
/// # Example
///
/// ```
/// use stem_temporal::{TemporalExtent, TimeInterval, TimePoint};
///
/// let p = TemporalExtent::punctual(TimePoint::new(5));
/// assert!(p.is_punctual());
/// let i = TemporalExtent::interval(TimeInterval::new(TimePoint::new(5), TimePoint::new(9))?);
/// assert_eq!(i.start(), TimePoint::new(5));
/// assert_eq!(i.hull(&p).end(), TimePoint::new(9));
/// # Ok::<(), stem_temporal::InvalidInterval>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TemporalExtent {
    /// The event occurred at a single time point.
    Punctual(TimePoint),
    /// The event occurred over a time interval.
    Interval(TimeInterval),
}

impl TemporalExtent {
    /// Creates a punctual extent at `t`.
    #[must_use]
    pub const fn punctual(t: TimePoint) -> Self {
        TemporalExtent::Punctual(t)
    }

    /// Creates an interval extent.
    #[must_use]
    pub const fn interval(iv: TimeInterval) -> Self {
        TemporalExtent::Interval(iv)
    }

    /// Returns `true` for punctual extents.
    #[must_use]
    pub const fn is_punctual(&self) -> bool {
        matches!(self, TemporalExtent::Punctual(_))
    }

    /// Returns `true` for interval extents.
    #[must_use]
    pub const fn is_interval(&self) -> bool {
        matches!(self, TemporalExtent::Interval(_))
    }

    /// The earliest time point of the extent.
    #[must_use]
    pub fn start(&self) -> TimePoint {
        match self {
            TemporalExtent::Punctual(t) => *t,
            TemporalExtent::Interval(iv) => iv.start(),
        }
    }

    /// The latest time point of the extent.
    #[must_use]
    pub fn end(&self) -> TimePoint {
        match self {
            TemporalExtent::Punctual(t) => *t,
            TemporalExtent::Interval(iv) => iv.end(),
        }
    }

    /// The extent's span as a closed interval (degenerate for punctual).
    #[must_use]
    pub fn as_interval(&self) -> TimeInterval {
        match self {
            TemporalExtent::Punctual(t) => TimeInterval::from(*t),
            TemporalExtent::Interval(iv) => *iv,
        }
    }

    /// The extent length (zero for punctual extents).
    #[must_use]
    pub fn length(&self) -> Duration {
        self.as_interval().length()
    }

    /// Returns `true` if the extent covers time point `t`.
    #[must_use]
    pub fn contains(&self, t: TimePoint) -> bool {
        self.as_interval().contains(t)
    }

    /// Returns `true` if the two extents share at least one time point.
    #[must_use]
    pub fn intersects(&self, other: &TemporalExtent) -> bool {
        self.as_interval().intersects(other.as_interval())
    }

    /// The smallest extent covering both operands.
    ///
    /// Used by composite-event detection (SnoopIB-style interval
    /// semantics): the occurrence extent of a composite event is the convex
    /// hull of its constituents' extents.
    #[must_use]
    pub fn hull(&self, other: &TemporalExtent) -> TemporalExtent {
        let hull = self.as_interval().hull(other.as_interval());
        if hull.is_degenerate() {
            TemporalExtent::Punctual(hull.start())
        } else {
            TemporalExtent::Interval(hull)
        }
    }

    /// Shifts the extent by a signed tick offset, saturating at the bounds.
    ///
    /// Realizes the paper's offset conditions ("`t_x + 5 Before t_y`").
    #[must_use]
    pub fn saturating_offset(&self, delta: i64) -> TemporalExtent {
        match self {
            TemporalExtent::Punctual(t) => TemporalExtent::Punctual(t.saturating_offset(delta)),
            TemporalExtent::Interval(iv) => TemporalExtent::Interval(iv.saturating_offset(delta)),
        }
    }

    /// A representative single point: the midpoint of the extent.
    #[must_use]
    pub fn midpoint(&self) -> TimePoint {
        let iv = self.as_interval();
        TimePoint::new(iv.start().ticks() + iv.length().ticks() / 2)
    }
}

impl fmt::Display for TemporalExtent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemporalExtent::Punctual(t) => write!(f, "{t}"),
            TemporalExtent::Interval(iv) => write!(f, "{iv}"),
        }
    }
}

impl From<TimePoint> for TemporalExtent {
    fn from(t: TimePoint) -> Self {
        TemporalExtent::Punctual(t)
    }
}

impl From<TimeInterval> for TemporalExtent {
    fn from(iv: TimeInterval) -> Self {
        TemporalExtent::Interval(iv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: u64, b: u64) -> TimeInterval {
        TimeInterval::new(TimePoint::new(a), TimePoint::new(b)).unwrap()
    }

    #[test]
    fn rejects_reversed_endpoints() {
        let err = TimeInterval::new(TimePoint::new(5), TimePoint::new(4)).unwrap_err();
        assert_eq!(err.start, TimePoint::new(5));
        assert!(err.to_string().contains("precedes"));
    }

    #[test]
    fn spanning_orders_endpoints() {
        let s = TimeInterval::spanning(TimePoint::new(9), TimePoint::new(2));
        assert_eq!((s.start().ticks(), s.end().ticks()), (2, 9));
    }

    #[test]
    fn with_length_saturates_at_max() {
        let iv = TimeInterval::with_length(TimePoint::MAX, Duration::new(5));
        assert_eq!(iv.end(), TimePoint::MAX);
    }

    #[test]
    fn closed_interval_contains_both_endpoints() {
        let i = iv(3, 7);
        assert!(i.contains(TimePoint::new(3)));
        assert!(i.contains(TimePoint::new(7)));
        assert!(!i.contains(TimePoint::new(8)));
    }

    #[test]
    fn intersection_of_touching_intervals_is_degenerate() {
        let a = iv(0, 5);
        let b = iv(5, 9);
        let x = a.intersection(b).unwrap();
        assert!(x.is_degenerate());
        assert_eq!(x.start(), TimePoint::new(5));
    }

    #[test]
    fn disjoint_intervals_have_no_intersection() {
        assert_eq!(iv(0, 2).intersection(iv(5, 9)), None);
        assert!(!iv(0, 2).intersects(iv(5, 9)));
    }

    #[test]
    fn hull_covers_both_operands() {
        let h = iv(0, 2).hull(iv(5, 9));
        assert_eq!((h.start().ticks(), h.end().ticks()), (0, 9));
        assert!(h.contains_interval(iv(0, 2)));
        assert!(h.contains_interval(iv(5, 9)));
    }

    #[test]
    fn extent_hull_collapses_to_punctual_when_degenerate() {
        let a = TemporalExtent::punctual(TimePoint::new(4));
        let b = TemporalExtent::punctual(TimePoint::new(4));
        assert!(a.hull(&b).is_punctual());
        let c = TemporalExtent::punctual(TimePoint::new(6));
        assert!(a.hull(&c).is_interval());
    }

    #[test]
    fn extent_offset_shifts_endpoints() {
        let e = TemporalExtent::interval(iv(10, 20));
        let shifted = e.saturating_offset(-5);
        assert_eq!(shifted.start(), TimePoint::new(5));
        assert_eq!(shifted.end(), TimePoint::new(15));
    }

    #[test]
    fn midpoint_of_interval() {
        assert_eq!(
            TemporalExtent::interval(iv(10, 20)).midpoint(),
            TimePoint::new(15)
        );
        assert_eq!(
            TemporalExtent::punctual(TimePoint::new(3)).midpoint(),
            TimePoint::new(3)
        );
    }

    #[test]
    fn display_shows_interval_brackets() {
        assert_eq!(iv(1, 2).to_string(), "[t1, t2]");
        assert_eq!(
            TemporalExtent::punctual(TimePoint::new(1)).to_string(),
            "t1"
        );
    }
}
