//! Point-region quadtree: the adaptive spatial index.
//!
//! Complements [`crate::GridIndex`] for *clustered* deployments where a
//! uniform grid degenerates (all nodes in a few cells). Benchmarked against
//! the grid and brute force in `stem-bench`.

use crate::{Point, Rect};

/// Maximum items per leaf before splitting.
const NODE_CAPACITY: usize = 8;
/// Maximum tree depth (beyond it leaves simply grow).
const MAX_DEPTH: usize = 16;

/// A point-region quadtree over items with point locations.
///
/// # Example
///
/// ```
/// use stem_spatial::{Point, QuadTree, Rect};
///
/// let bounds = Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
/// let mut qt = QuadTree::new(bounds);
/// qt.insert(1u32, Point::new(10.0, 10.0));
/// qt.insert(2u32, Point::new(90.0, 90.0));
/// assert_eq!(qt.query_radius(Point::new(12.0, 10.0), 5.0), vec![1]);
/// ```
#[derive(Debug, Clone)]
pub struct QuadTree<T> {
    bounds: Rect,
    root: Node<T>,
    len: usize,
}

#[derive(Debug, Clone)]
enum Node<T> {
    Leaf(Vec<(T, Point)>),
    Branch(Box<[QuadNode<T>; 4]>),
}

#[derive(Debug, Clone)]
struct QuadNode<T> {
    bounds: Rect,
    node: Node<T>,
}

impl<T: Clone> QuadTree<T> {
    /// Creates an empty quadtree covering `bounds`.
    ///
    /// Items outside the bounds are *routed* by their location clamped into
    /// the bounds (they land in the nearest boundary leaf); the stored
    /// location is the true one, and queries clamp their search region the
    /// same way, so results remain exact.
    #[must_use]
    pub fn new(bounds: Rect) -> Self {
        QuadTree {
            bounds,
            root: Node::Leaf(Vec::new()),
            len: 0,
        }
    }

    /// The covering bounds supplied at construction.
    #[must_use]
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Number of indexed items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no items are indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an item at a location.
    pub fn insert(&mut self, item: T, location: Point) {
        let routing = clamp_into(self.bounds, location);
        insert_rec(&mut self.root, self.bounds, item, location, routing, 0);
        self.len += 1;
    }

    /// Returns all items within Euclidean distance `radius` of `center`
    /// (inclusive).
    #[must_use]
    pub fn query_radius(&self, center: Point, radius: f64) -> Vec<T> {
        let mut out = Vec::new();
        let query_bb = Rect::centered(center, radius, radius);
        let clamped = clamp_rect(self.bounds, &query_bb);
        query_rec(&self.root, &clamped, &mut |item, loc| {
            if center.distance_squared(loc) <= radius * radius {
                out.push(item.clone());
            }
        });
        out
    }

    /// Returns all items whose location lies within `rect` (inclusive).
    #[must_use]
    pub fn query_rect(&self, rect: &Rect) -> Vec<T> {
        let mut out = Vec::new();
        let clamped = clamp_rect(self.bounds, rect);
        query_rec(&self.root, &clamped, &mut |item, loc| {
            if rect.contains(loc) {
                out.push(item.clone());
            }
        });
        out
    }
}

/// Clamps a point into `bounds` component-wise (monotone in each axis).
fn clamp_into(bounds: Rect, p: Point) -> Point {
    Point::new(
        p.x.clamp(bounds.min().x, bounds.max().x),
        p.y.clamp(bounds.min().y, bounds.max().y),
    )
}

/// Clamps a query rectangle into `bounds`. Because clamping is monotone,
/// an item whose true location is in the query lies — by routing point —
/// inside the clamped query, so pruning against it is exact.
fn clamp_rect(bounds: Rect, query: &Rect) -> Rect {
    Rect::new(
        clamp_into(bounds, query.min()),
        clamp_into(bounds, query.max()),
    )
}

fn quadrants(bounds: Rect) -> [Rect; 4] {
    let c = bounds.center();
    [
        Rect::new(bounds.min(), c),
        Rect::new(
            Point::new(c.x, bounds.min().y),
            Point::new(bounds.max().x, c.y),
        ),
        Rect::new(
            Point::new(bounds.min().x, c.y),
            Point::new(c.x, bounds.max().y),
        ),
        Rect::new(c, bounds.max()),
    ]
}

fn quadrant_of(bounds: Rect, p: Point) -> usize {
    let c = bounds.center();
    match (p.x >= c.x, p.y >= c.y) {
        (false, false) => 0,
        (true, false) => 1,
        (false, true) => 2,
        (true, true) => 3,
    }
}

fn insert_rec<T: Clone>(
    node: &mut Node<T>,
    bounds: Rect,
    item: T,
    location: Point,
    routing: Point,
    depth: usize,
) {
    match node {
        Node::Leaf(items) => {
            items.push((item, location));
            if items.len() > NODE_CAPACITY && depth < MAX_DEPTH {
                // Split: redistribute into four children.
                let drained = std::mem::take(items);
                let qs = quadrants(bounds);
                let mut children = Box::new([
                    QuadNode {
                        bounds: qs[0],
                        node: Node::Leaf(Vec::new()),
                    },
                    QuadNode {
                        bounds: qs[1],
                        node: Node::Leaf(Vec::new()),
                    },
                    QuadNode {
                        bounds: qs[2],
                        node: Node::Leaf(Vec::new()),
                    },
                    QuadNode {
                        bounds: qs[3],
                        node: Node::Leaf(Vec::new()),
                    },
                ]);
                for (it, loc) in drained {
                    let r = clamp_into(bounds, loc);
                    let q = quadrant_of(bounds, r);
                    let child_bounds = children[q].bounds;
                    insert_rec(&mut children[q].node, child_bounds, it, loc, r, depth + 1);
                }
                *node = Node::Branch(children);
            }
        }
        Node::Branch(children) => {
            let q = quadrant_of(bounds, routing);
            let child_bounds = children[q].bounds;
            insert_rec(
                &mut children[q].node,
                child_bounds,
                item,
                location,
                routing,
                depth + 1,
            );
        }
    }
}

fn query_rec<T, F: FnMut(&T, Point)>(node: &Node<T>, clamped_query: &Rect, visit: &mut F) {
    match node {
        Node::Leaf(items) => {
            for (item, loc) in items {
                visit(item, *loc);
            }
        }
        Node::Branch(children) => {
            for child in children.iter() {
                if child.bounds.intersects(clamped_query) {
                    query_rec(&child.node, clamped_query, visit);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn bounds() -> Rect {
        Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
    }

    #[test]
    fn empty_tree_returns_nothing() {
        let qt = QuadTree::<u32>::new(bounds());
        assert!(qt.is_empty());
        assert!(qt.query_radius(Point::new(50.0, 50.0), 100.0).is_empty());
    }

    #[test]
    fn split_preserves_all_items() {
        let mut qt = QuadTree::new(bounds());
        for i in 0..100u32 {
            let x = (i % 10) as f64 * 10.0 + 0.5;
            let y = (i / 10) as f64 * 10.0 + 0.5;
            qt.insert(i, Point::new(x, y));
        }
        assert_eq!(qt.len(), 100);
        let all = qt.query_rect(&bounds());
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn radius_query_boundary_inclusive() {
        let mut qt = QuadTree::new(bounds());
        qt.insert(1u32, Point::new(53.0, 50.0));
        assert_eq!(qt.query_radius(Point::new(50.0, 50.0), 3.0), vec![1]);
        assert!(qt.query_radius(Point::new(50.0, 50.0), 2.99).is_empty());
    }

    #[test]
    fn handles_duplicate_locations_beyond_capacity() {
        // More duplicates than NODE_CAPACITY at one location must not
        // recurse forever (MAX_DEPTH caps splitting).
        let mut qt = QuadTree::new(bounds());
        for i in 0..50u32 {
            qt.insert(i, Point::new(25.0, 25.0));
        }
        assert_eq!(qt.query_radius(Point::new(25.0, 25.0), 0.1).len(), 50);
    }

    #[test]
    fn items_outside_bounds_are_still_found() {
        let mut qt = QuadTree::new(bounds());
        qt.insert(1u32, Point::new(-50.0, -50.0));
        qt.insert(2u32, Point::new(150.0, 150.0));
        // Fill enough to force splits.
        for i in 10..40u32 {
            qt.insert(i, Point::new((i % 10) as f64, (i / 10) as f64));
        }
        assert_eq!(qt.query_radius(Point::new(-50.0, -50.0), 1.0), vec![1]);
        assert_eq!(qt.query_radius(Point::new(150.0, 150.0), 1.0), vec![2]);
    }

    proptest! {
        /// Quadtree query equals brute force on random point sets.
        #[test]
        fn radius_query_matches_brute_force(
            raw in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 0..80),
            qx in 0.0f64..100.0, qy in 0.0f64..100.0, r in 0.0f64..60.0,
        ) {
            let mut qt = QuadTree::new(bounds());
            for (i, &(x, y)) in raw.iter().enumerate() {
                qt.insert(i, Point::new(x, y));
            }
            let q = Point::new(qx, qy);
            let mut got = qt.query_radius(q, r);
            got.sort_unstable();
            let mut expected: Vec<usize> = raw
                .iter()
                .enumerate()
                .filter(|(_, &(x, y))| q.distance(Point::new(x, y)) <= r)
                .map(|(i, _)| i)
                .collect();
            expected.sort_unstable();
            prop_assert_eq!(got, expected);
        }

        /// Rect query equals brute force.
        #[test]
        fn rect_query_matches_brute_force(
            raw in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 0..80),
            x0 in 0.0f64..100.0, y0 in 0.0f64..100.0, w in 0.0f64..50.0, h in 0.0f64..50.0,
        ) {
            let mut qt = QuadTree::new(bounds());
            for (i, &(x, y)) in raw.iter().enumerate() {
                qt.insert(i, Point::new(x, y));
            }
            let r = Rect::new(Point::new(x0, y0), Point::new(x0 + w, y0 + h));
            let mut got = qt.query_rect(&r);
            got.sort_unstable();
            let mut expected: Vec<usize> = raw
                .iter()
                .enumerate()
                .filter(|(_, &(x, y))| r.contains(Point::new(x, y)))
                .map(|(i, _)| i)
                .collect();
            expected.sort_unstable();
            prop_assert_eq!(got, expected);
        }
    }
}
