//! 2-D spatial model for the STEM cyber-physical event model.
//!
//! The paper (Sec. 4) adopts "a standard 2-dimensional Cartesian coordinate
//! system, in which an ordered pair `(x, y)` indicates a specific location
//! point and a function `y = f(x)` indicates a specific location field
//! (polytope)", and classifies events spatially as **point events** or
//! **field events** (Sec. 4.2). This crate provides:
//!
//! * [`Point`], [`Vector`] — Cartesian primitives with distance metrics,
//! * [`Rect`], [`Circle`], [`Polygon`] — the field geometries, unified
//!   under [`Field`],
//! * [`SpatialExtent`] — the point-or-field occurrence location of an
//!   event,
//! * the three relation families of Sec. 4.2: point–point, point–field,
//!   field–field, via [`SpatialOperator`] (the paper's `OP_S`: "Inside,
//!   Outside, Joint, …") and the Egenhofer-style [`TopoRelation`]
//!   classification the paper cites (its ref. 17),
//! * [`SpatialAgg`] — the aggregation functions `g_s` of Eq. 4.4,
//! * neighbour-query indexes ([`GridIndex`], [`QuadTree`]) used by the WSN
//!   simulator for radio-range queries, and a flat [`Bvh`] over
//!   rectangles backing the engine router's subscription-scope index.
//!
//! # Example
//!
//! ```
//! use stem_spatial::{Circle, Field, Point, SpatialExtent, SpatialOperator};
//!
//! let window_area = SpatialExtent::field(Field::circle(Circle::new(Point::new(0.0, 0.0), 3.0)));
//! let user = SpatialExtent::point(Point::new(1.0, 1.0));
//! assert!(SpatialOperator::Inside.eval(&user, &window_area));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agg;
mod bvh;
mod circle;
mod field;
mod index;
mod ops;
mod point;
mod polygon;
mod quadtree;
mod rect;
mod topo;

pub use agg::SpatialAgg;
pub use bvh::Bvh;
pub use circle::Circle;
pub use field::{Field, SpatialExtent};
pub use index::GridIndex;
pub use ops::{SpatialOperator, ALL_SPATIAL_OPERATORS};
pub use point::{convex_hull, Point, Vector, ORIGIN};
pub use polygon::{InvalidPolygon, Polygon};
pub use quadtree::QuadTree;
pub use rect::Rect;
pub use topo::{relate_fields, relate_point_field, PointFieldRelation, TopoRelation};

/// Geometric tolerance used for float comparisons throughout the crate.
///
/// Coordinates in the experiments are metres; a nanometre tolerance is far
/// below any modelled sensing precision.
pub const EPSILON: f64 = 1e-9;
