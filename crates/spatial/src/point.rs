//! Cartesian points, vectors, and point-set helpers.

use crate::EPSILON;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A location point `(x, y)` in the paper's 2-D Cartesian spatial model.
///
/// Coordinates are `f64`; in the experiments the unit is metres.
///
/// # Example
///
/// ```
/// use stem_spatial::Point;
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

/// The origin `(0, 0)`.
pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

impl Point {
    /// Creates a point at `(x, y)`.
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[must_use]
    pub fn distance(self, other: Point) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance (avoids the square root for comparisons).
    #[must_use]
    pub fn distance_squared(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Manhattan (L1) distance to `other`.
    #[must_use]
    pub fn manhattan_distance(self, other: Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Chebyshev (L∞) distance to `other`.
    #[must_use]
    pub fn chebyshev_distance(self, other: Point) -> f64 {
        (self.x - other.x).abs().max((self.y - other.y).abs())
    }

    /// Returns `true` if the points coincide within [`EPSILON`].
    #[must_use]
    pub fn approx_eq(self, other: Point) -> bool {
        self.distance_squared(other) < EPSILON * EPSILON
    }

    /// The midpoint between `self` and `other`.
    #[must_use]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Linear interpolation from `self` to `other` by factor `t ∈ [0, 1]`.
    ///
    /// Values of `t` outside `[0, 1]` extrapolate along the segment.
    #[must_use]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// The vector from `self` to `other`.
    #[must_use]
    pub fn vector_to(self, other: Point) -> Vector {
        Vector::new(other.x - self.x, other.y - self.y)
    }

    /// Returns `true` if both coordinates are finite.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl Add<Vector> for Point {
    type Output = Point;

    fn add(self, v: Vector) -> Point {
        Point::new(self.x + v.dx, self.y + v.dy)
    }
}

impl Sub<Vector> for Point {
    type Output = Point;

    fn sub(self, v: Vector) -> Point {
        Point::new(self.x - v.dx, self.y - v.dy)
    }
}

impl Sub for Point {
    type Output = Vector;

    fn sub(self, other: Point) -> Vector {
        other.vector_to(self)
    }
}

/// A displacement vector `(dx, dy)`.
///
/// # Example
///
/// ```
/// use stem_spatial::{Point, Vector};
///
/// let v = Vector::new(3.0, 4.0);
/// assert_eq!(v.length(), 5.0);
/// assert_eq!(Point::new(1.0, 1.0) + v, Point::new(4.0, 5.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vector {
    /// Horizontal component.
    pub dx: f64,
    /// Vertical component.
    pub dy: f64,
}

impl Vector {
    /// Creates a vector `(dx, dy)`.
    #[must_use]
    pub const fn new(dx: f64, dy: f64) -> Self {
        Vector { dx, dy }
    }

    /// The zero vector.
    pub const ZERO: Vector = Vector { dx: 0.0, dy: 0.0 };

    /// Euclidean length.
    #[must_use]
    pub fn length(self) -> f64 {
        (self.dx * self.dx + self.dy * self.dy).sqrt()
    }

    /// Dot product.
    #[must_use]
    pub fn dot(self, other: Vector) -> f64 {
        self.dx * other.dx + self.dy * other.dy
    }

    /// 2-D cross product (z-component of the 3-D cross product).
    ///
    /// Positive when `other` is counter-clockwise from `self`.
    #[must_use]
    pub fn cross(self, other: Vector) -> f64 {
        self.dx * other.dy - self.dy * other.dx
    }

    /// A unit vector in the same direction, or `None` for the zero vector.
    #[must_use]
    pub fn normalized(self) -> Option<Vector> {
        let len = self.length();
        if len < EPSILON {
            None
        } else {
            Some(Vector::new(self.dx / len, self.dy / len))
        }
    }

    /// The vector rotated by `angle` radians counter-clockwise.
    #[must_use]
    pub fn rotated(self, angle: f64) -> Vector {
        let (s, c) = angle.sin_cos();
        Vector::new(self.dx * c - self.dy * s, self.dx * s + self.dy * c)
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{:.3}, {:.3}>", self.dx, self.dy)
    }
}

impl Add for Vector {
    type Output = Vector;

    fn add(self, other: Vector) -> Vector {
        Vector::new(self.dx + other.dx, self.dy + other.dy)
    }
}

impl Sub for Vector {
    type Output = Vector;

    fn sub(self, other: Vector) -> Vector {
        Vector::new(self.dx - other.dx, self.dy - other.dy)
    }
}

impl Mul<f64> for Vector {
    type Output = Vector;

    fn mul(self, k: f64) -> Vector {
        Vector::new(self.dx * k, self.dy * k)
    }
}

impl Div<f64> for Vector {
    type Output = Vector;

    fn div(self, k: f64) -> Vector {
        Vector::new(self.dx / k, self.dy / k)
    }
}

impl Neg for Vector {
    type Output = Vector;

    fn neg(self) -> Vector {
        Vector::new(-self.dx, -self.dy)
    }
}

/// Computes the convex hull of a point set (Andrew's monotone chain).
///
/// Returns the hull vertices in counter-clockwise order without repeating
/// the first vertex. Degenerate inputs return what remains: fewer than
/// three distinct points yield the distinct points themselves; collinear
/// inputs yield the two extreme points.
///
/// # Example
///
/// ```
/// use stem_spatial::{convex_hull, Point};
///
/// let pts = vec![
///     Point::new(0.0, 0.0),
///     Point::new(2.0, 0.0),
///     Point::new(1.0, 0.5), // interior
///     Point::new(2.0, 2.0),
///     Point::new(0.0, 2.0),
/// ];
/// let hull = convex_hull(&pts);
/// assert_eq!(hull.len(), 4);
/// ```
#[must_use]
pub fn convex_hull(points: &[Point]) -> Vec<Point> {
    let mut pts: Vec<Point> = points.iter().copied().filter(|p| p.is_finite()).collect();
    pts.sort_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .unwrap()
            .then(a.y.partial_cmp(&b.y).unwrap())
    });
    pts.dedup_by(|a, b| a.approx_eq(*b));
    if pts.len() < 3 {
        return pts;
    }

    let cross = |o: Point, a: Point, b: Point| o.vector_to(a).cross(o.vector_to(b));

    let mut lower: Vec<Point> = Vec::new();
    for &p in &pts {
        while lower.len() >= 2
            && cross(lower[lower.len() - 2], lower[lower.len() - 1], p) <= EPSILON
        {
            lower.pop();
        }
        lower.push(p);
    }
    let mut upper: Vec<Point> = Vec::new();
    for &p in pts.iter().rev() {
        while upper.len() >= 2
            && cross(upper[upper.len() - 2], upper[upper.len() - 1], p) <= EPSILON
        {
            upper.pop();
        }
        upper.push(p);
    }
    lower.pop();
    upper.pop();
    lower.extend(upper);
    if lower.len() < 3 {
        // All points collinear: return the two extremes.
        return vec![pts[0], *pts.last().expect("non-empty")];
    }
    lower
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn distances_agree_on_axis_aligned_pairs() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(0.0, 7.0);
        assert_eq!(a.distance(b), 7.0);
        assert_eq!(a.manhattan_distance(b), 7.0);
        assert_eq!(a.chebyshev_distance(b), 7.0);
    }

    #[test]
    fn metric_ordering_holds() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert!(a.chebyshev_distance(b) <= a.distance(b));
        assert!(a.distance(b) <= a.manhattan_distance(b));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -4.0);
        assert!(a.lerp(b, 0.0).approx_eq(a));
        assert!(a.lerp(b, 1.0).approx_eq(b));
        assert!(a.lerp(b, 0.5).approx_eq(a.midpoint(b)));
    }

    #[test]
    fn vector_algebra() {
        let v = Vector::new(1.0, 2.0);
        let w = Vector::new(3.0, -1.0);
        assert_eq!(v.dot(w), 1.0);
        assert_eq!(v.cross(w), -7.0);
        assert_eq!((v + w).dx, 4.0);
        assert_eq!((v - w).dy, 3.0);
        assert_eq!((v * 2.0).dx, 2.0);
        assert_eq!((v / 2.0).dy, 1.0);
        assert_eq!((-v).dx, -1.0);
    }

    #[test]
    fn normalized_zero_vector_is_none() {
        assert_eq!(Vector::ZERO.normalized(), None);
        let u = Vector::new(3.0, 4.0).normalized().unwrap();
        assert!((u.length() - 1.0).abs() < EPSILON);
    }

    #[test]
    fn rotation_by_quarter_turn() {
        let v = Vector::new(1.0, 0.0).rotated(std::f64::consts::FRAC_PI_2);
        assert!(v.dx.abs() < 1e-12 && (v.dy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn point_vector_arithmetic() {
        let p = Point::new(1.0, 1.0);
        let v = Vector::new(2.0, 3.0);
        assert_eq!(p + v, Point::new(3.0, 4.0));
        assert_eq!((p + v) - v, p);
        assert_eq!(Point::new(3.0, 4.0) - p, v);
    }

    #[test]
    fn hull_of_square_with_interior_point() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
            Point::new(2.0, 2.0),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        assert!(!hull.iter().any(|p| p.approx_eq(Point::new(2.0, 2.0))));
    }

    #[test]
    fn hull_of_collinear_points_is_segment() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
            Point::new(3.0, 3.0),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 2);
        assert!(hull[0].approx_eq(Point::new(0.0, 0.0)));
        assert!(hull[1].approx_eq(Point::new(3.0, 3.0)));
    }

    #[test]
    fn hull_of_small_inputs() {
        assert!(convex_hull(&[]).is_empty());
        assert_eq!(convex_hull(&[Point::new(1.0, 2.0)]).len(), 1);
        let dup = convex_hull(&[Point::new(1.0, 2.0), Point::new(1.0, 2.0)]);
        assert_eq!(dup.len(), 1);
    }

    proptest! {
        /// Every input point lies inside or on the hull (checked via the
        /// cross-product sign against each CCW edge).
        #[test]
        fn hull_contains_all_points(raw in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 3..40)) {
            let pts: Vec<Point> = raw.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let hull = convex_hull(&pts);
            prop_assume!(hull.len() >= 3);
            for p in &pts {
                for i in 0..hull.len() {
                    let a = hull[i];
                    let b = hull[(i + 1) % hull.len()];
                    let side = a.vector_to(b).cross(a.vector_to(*p));
                    prop_assert!(side >= -1e-6, "point {p} outside hull edge {a}->{b}");
                }
            }
        }

        /// Distance is symmetric and satisfies the triangle inequality.
        #[test]
        fn metric_axioms(
            ax in -100.0f64..100.0, ay in -100.0f64..100.0,
            bx in -100.0f64..100.0, by in -100.0f64..100.0,
            cx in -100.0f64..100.0, cy in -100.0f64..100.0,
        ) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let c = Point::new(cx, cy);
            prop_assert!((a.distance(b) - b.distance(a)).abs() < 1e-9);
            prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
        }
    }
}
