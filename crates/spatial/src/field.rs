//! Fields (polytopes) and spatial extents.

use crate::{Circle, Point, Polygon, Rect, EPSILON};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A location field — the paper's "polytope" (Sec. 4): a 2-D region in
/// which a field event occurs ("a physical phenomena which occurs in an
/// area, e.g. a forest fire or a moving physical object", Sec. 4.2).
///
/// Three geometries are supported; mixed-shape predicates are defined for
/// every combination.
///
/// # Example
///
/// ```
/// use stem_spatial::{Circle, Field, Point, Rect};
///
/// let room = Field::rect(Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 8.0)));
/// let fire = Field::circle(Circle::new(Point::new(2.0, 2.0), 1.0));
/// assert!(room.contains_field(&fire));
/// assert!(room.intersects(&fire));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Field {
    /// An axis-aligned rectangle.
    Rect(Rect),
    /// A disc.
    Circle(Circle),
    /// A simple polygon.
    Polygon(Polygon),
}

/// Number of vertices used when a circle must be approximated by a polygon
/// for mixed-shape predicates.
const CIRCLE_POLY_VERTICES: usize = 64;

impl Field {
    /// Wraps a rectangle.
    #[must_use]
    pub const fn rect(r: Rect) -> Field {
        Field::Rect(r)
    }

    /// Wraps a circle.
    #[must_use]
    pub const fn circle(c: Circle) -> Field {
        Field::Circle(c)
    }

    /// Wraps a polygon.
    #[must_use]
    pub const fn polygon(p: Polygon) -> Field {
        Field::Polygon(p)
    }

    /// Area of the field.
    #[must_use]
    pub fn area(&self) -> f64 {
        match self {
            Field::Rect(r) => r.area(),
            Field::Circle(c) => c.area(),
            Field::Polygon(p) => p.area(),
        }
    }

    /// A representative centre point (centroid).
    #[must_use]
    pub fn centroid(&self) -> Point {
        match self {
            Field::Rect(r) => r.center(),
            Field::Circle(c) => c.center(),
            Field::Polygon(p) => p.centroid(),
        }
    }

    /// The tight axis-aligned bounding box.
    #[must_use]
    pub fn bounding_box(&self) -> Rect {
        match self {
            Field::Rect(r) => *r,
            Field::Circle(c) => c.bounding_box(),
            Field::Polygon(p) => p.bounding_box(),
        }
    }

    /// Point containment (boundary counts as inside).
    #[must_use]
    pub fn contains(&self, p: Point) -> bool {
        match self {
            Field::Rect(r) => r.contains(p),
            Field::Circle(c) => c.contains(p),
            Field::Polygon(poly) => poly.contains(p),
        }
    }

    /// Euclidean distance from `p` to the field (zero if inside).
    #[must_use]
    pub fn distance_to_point(&self, p: Point) -> f64 {
        match self {
            Field::Rect(r) => r.distance_to_point(p),
            Field::Circle(c) => c.distance_to_point(p),
            Field::Polygon(poly) => poly.distance_to_point(p),
        }
    }

    /// Distance from `p` to the field *boundary* (positive even inside).
    #[must_use]
    pub fn distance_to_boundary(&self, p: Point) -> f64 {
        match self {
            Field::Rect(r) => {
                if r.contains(p) {
                    (p.x - r.min().x)
                        .min(r.max().x - p.x)
                        .min(p.y - r.min().y)
                        .min(r.max().y - p.y)
                } else {
                    r.distance_to_point(p)
                }
            }
            Field::Circle(c) => (c.center().distance(p) - c.radius()).abs(),
            Field::Polygon(poly) => poly
                .edges()
                .map(|(a, b)| {
                    // Reuse the public API: distance to the degenerate
                    // "polygon" of each edge via point projections.
                    let ab = a.vector_to(b);
                    let len2 = ab.dot(ab);
                    if len2 < EPSILON * EPSILON {
                        a.distance(p)
                    } else {
                        let t = (a.vector_to(p).dot(ab) / len2).clamp(0.0, 1.0);
                        a.lerp(b, t).distance(p)
                    }
                })
                .fold(f64::INFINITY, f64::min),
        }
    }

    /// A polygonal view of the field (circles become 64-gons).
    #[must_use]
    pub fn to_polygon(&self) -> Polygon {
        match self {
            Field::Rect(r) => Polygon::from_rect(r),
            Field::Circle(c) => c.to_polygon(CIRCLE_POLY_VERTICES),
            Field::Polygon(p) => p.clone(),
        }
    }

    /// Returns `true` if the two fields share at least one point
    /// (touching boundaries count).
    ///
    /// Rect–rect and circle–circle use exact tests; combinations involving
    /// one circle use the exact disc-to-shape distance; polygon–polygon and
    /// rect–polygon use edge/containment tests.
    #[must_use]
    pub fn intersects(&self, other: &Field) -> bool {
        match (self, other) {
            (Field::Rect(a), Field::Rect(b)) => a.intersects(b),
            (Field::Circle(a), Field::Circle(b)) => a.intersects(b),
            (Field::Rect(r), Field::Circle(c)) | (Field::Circle(c), Field::Rect(r)) => {
                r.distance_to_point(c.center()) <= c.radius()
            }
            (Field::Polygon(p), Field::Circle(c)) | (Field::Circle(c), Field::Polygon(p)) => {
                p.distance_to_point(c.center()) <= c.radius()
            }
            (Field::Polygon(a), Field::Polygon(b)) => a.intersects(b),
            (Field::Rect(r), Field::Polygon(p)) | (Field::Polygon(p), Field::Rect(r)) => {
                Polygon::from_rect(r).intersects(p)
            }
        }
    }

    /// Returns `true` if `other` lies entirely within `self` (non-strict).
    #[must_use]
    pub fn contains_field(&self, other: &Field) -> bool {
        match (self, other) {
            (Field::Rect(a), Field::Rect(b)) => a.contains_rect(b),
            (Field::Circle(a), Field::Circle(b)) => a.contains_circle(b),
            (Field::Rect(r), Field::Circle(c)) => r.contains_rect(&c.bounding_box()),
            (Field::Circle(c), Field::Rect(r)) => r.corners().iter().all(|&p| c.contains(p)),
            (Field::Circle(c), Field::Polygon(p)) => {
                // The polygon lies within its vertices' convex hull, and a
                // disc is convex, so vertex containment suffices.
                p.vertices().iter().all(|&v| c.contains(v))
            }
            (Field::Polygon(p), Field::Circle(c)) => {
                p.contains(c.center()) && {
                    let f = Field::Polygon(p.clone());
                    f.distance_to_boundary(c.center()) + EPSILON >= c.radius()
                }
            }
            (Field::Polygon(a), Field::Polygon(b)) => a.contains_polygon(b),
            (Field::Rect(r), Field::Polygon(p)) => p.vertices().iter().all(|&v| r.contains(v)),
            (Field::Polygon(p), Field::Rect(r)) => p.contains_polygon(&Polygon::from_rect(r)),
        }
    }

    /// Approximate equality: identical variants with coincident geometry.
    #[must_use]
    pub fn approx_eq(&self, other: &Field) -> bool {
        match (self, other) {
            (Field::Rect(a), Field::Rect(b)) => {
                a.min().approx_eq(b.min()) && a.max().approx_eq(b.max())
            }
            (Field::Circle(a), Field::Circle(b)) => {
                a.center().approx_eq(b.center()) && (a.radius() - b.radius()).abs() < EPSILON
            }
            (Field::Polygon(a), Field::Polygon(b)) => {
                a.len() == b.len()
                    && a.vertices()
                        .iter()
                        .zip(b.vertices())
                        .all(|(p, q)| p.approx_eq(*q))
            }
            _ => false,
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Field::Rect(r) => write!(f, "{r}"),
            Field::Circle(c) => write!(f, "{c}"),
            Field::Polygon(p) => write!(f, "{p}"),
        }
    }
}

impl From<Rect> for Field {
    fn from(r: Rect) -> Field {
        Field::Rect(r)
    }
}

impl From<Circle> for Field {
    fn from(c: Circle) -> Field {
        Field::Circle(c)
    }
}

impl From<Polygon> for Field {
    fn from(p: Polygon) -> Field {
        Field::Polygon(p)
    }
}

/// The occurrence location of an event: a point or a field (Sec. 4.2).
///
/// "Based on whether this is a point or a field in location, the event can
/// be classified into two categories as Point Event or Field Event."
///
/// # Example
///
/// ```
/// use stem_spatial::{Circle, Field, Point, SpatialExtent};
///
/// let pe = SpatialExtent::point(Point::new(1.0, 2.0));
/// assert!(pe.is_point());
/// let fe = SpatialExtent::field(Field::circle(Circle::new(Point::new(0.0, 0.0), 5.0)));
/// assert!(fe.covers(Point::new(1.0, 2.0)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SpatialExtent {
    /// The event occurred at a single location point.
    Point(Point),
    /// The event occurred over a location field.
    Field(Field),
}

impl SpatialExtent {
    /// Creates a point extent.
    #[must_use]
    pub const fn point(p: Point) -> Self {
        SpatialExtent::Point(p)
    }

    /// Creates a field extent.
    #[must_use]
    pub const fn field(f: Field) -> Self {
        SpatialExtent::Field(f)
    }

    /// Returns `true` for point extents.
    #[must_use]
    pub const fn is_point(&self) -> bool {
        matches!(self, SpatialExtent::Point(_))
    }

    /// Returns `true` for field extents.
    #[must_use]
    pub const fn is_field(&self) -> bool {
        matches!(self, SpatialExtent::Field(_))
    }

    /// A representative single point (the point itself, or the field
    /// centroid).
    #[must_use]
    pub fn representative(&self) -> Point {
        match self {
            SpatialExtent::Point(p) => *p,
            SpatialExtent::Field(f) => f.centroid(),
        }
    }

    /// The covered area (zero for points).
    #[must_use]
    pub fn area(&self) -> f64 {
        match self {
            SpatialExtent::Point(_) => 0.0,
            SpatialExtent::Field(f) => f.area(),
        }
    }

    /// Returns `true` if the extent covers location `p`.
    #[must_use]
    pub fn covers(&self, p: Point) -> bool {
        match self {
            SpatialExtent::Point(q) => q.approx_eq(p),
            SpatialExtent::Field(f) => f.contains(p),
        }
    }

    /// The tight axis-aligned bounding box (degenerate for points).
    #[must_use]
    pub fn bounding_box(&self) -> Rect {
        match self {
            SpatialExtent::Point(p) => Rect::new(*p, *p),
            SpatialExtent::Field(f) => f.bounding_box(),
        }
    }

    /// Minimum Euclidean distance between two extents (zero on contact).
    #[must_use]
    pub fn distance(&self, other: &SpatialExtent) -> f64 {
        match (self, other) {
            (SpatialExtent::Point(a), SpatialExtent::Point(b)) => a.distance(*b),
            (SpatialExtent::Point(p), SpatialExtent::Field(f))
            | (SpatialExtent::Field(f), SpatialExtent::Point(p)) => f.distance_to_point(*p),
            (SpatialExtent::Field(a), SpatialExtent::Field(b)) => {
                if a.intersects(b) {
                    0.0
                } else {
                    // Approximate via polygonal boundaries.
                    let pa = a.to_polygon();
                    let pb = b.to_polygon();
                    let mut best = f64::INFINITY;
                    for &v in pa.vertices() {
                        best = best.min(pb.distance_to_point(v));
                    }
                    for &v in pb.vertices() {
                        best = best.min(pa.distance_to_point(v));
                    }
                    best
                }
            }
        }
    }

    /// Returns `true` if the two extents share at least one location.
    #[must_use]
    pub fn intersects(&self, other: &SpatialExtent) -> bool {
        match (self, other) {
            (SpatialExtent::Point(a), SpatialExtent::Point(b)) => a.approx_eq(*b),
            (SpatialExtent::Point(p), SpatialExtent::Field(f))
            | (SpatialExtent::Field(f), SpatialExtent::Point(p)) => f.contains(*p),
            (SpatialExtent::Field(a), SpatialExtent::Field(b)) => a.intersects(b),
        }
    }

    /// Returns `true` if `other` lies entirely within `self`.
    #[must_use]
    pub fn contains_extent(&self, other: &SpatialExtent) -> bool {
        match (self, other) {
            (SpatialExtent::Point(a), SpatialExtent::Point(b)) => a.approx_eq(*b),
            (SpatialExtent::Field(f), SpatialExtent::Point(p)) => f.contains(*p),
            (SpatialExtent::Point(_), SpatialExtent::Field(_)) => false,
            (SpatialExtent::Field(a), SpatialExtent::Field(b)) => a.contains_field(b),
        }
    }
}

impl fmt::Display for SpatialExtent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpatialExtent::Point(p) => write!(f, "{p}"),
            SpatialExtent::Field(fl) => write!(f, "{fl}"),
        }
    }
}

impl From<Point> for SpatialExtent {
    fn from(p: Point) -> Self {
        SpatialExtent::Point(p)
    }
}

impl From<Field> for SpatialExtent {
    fn from(f: Field) -> Self {
        SpatialExtent::Field(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square_poly() -> Polygon {
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ])
        .unwrap()
    }

    #[test]
    fn mixed_intersection_rect_circle() {
        let r = Field::rect(Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0)));
        let hit = Field::circle(Circle::new(Point::new(3.0, 1.0), 1.0));
        let miss = Field::circle(Circle::new(Point::new(4.0, 1.0), 1.0));
        assert!(r.intersects(&hit), "tangent circle touches");
        assert!(!r.intersects(&miss));
        assert!(hit.intersects(&r), "symmetric");
    }

    #[test]
    fn mixed_intersection_polygon_circle() {
        let p = Field::polygon(unit_square_poly());
        let inside = Field::circle(Circle::new(Point::new(0.5, 0.5), 0.1));
        let outside = Field::circle(Circle::new(Point::new(3.0, 3.0), 0.5));
        assert!(p.intersects(&inside));
        assert!(!p.intersects(&outside));
    }

    #[test]
    fn containment_rect_circle() {
        let r = Field::rect(Rect::new(Point::new(0.0, 0.0), Point::new(4.0, 4.0)));
        let c = Field::circle(Circle::new(Point::new(2.0, 2.0), 1.0));
        assert!(r.contains_field(&c));
        assert!(!c.contains_field(&r));
        let big_c = Field::circle(Circle::new(Point::new(2.0, 2.0), 3.0));
        assert!(
            big_c.contains_field(&r),
            "circle of radius 3 contains the 4x4 rect (corner distance 2√2 ≈ 2.83)"
        );
    }

    #[test]
    fn containment_polygon_circle() {
        let p = Field::polygon(unit_square_poly().scaled(4.0)); // 4x4 around centroid (0.5,0.5)
        let c = Field::circle(Circle::new(Point::new(0.5, 0.5), 1.0));
        assert!(p.contains_field(&c));
        let c_big = Field::circle(Circle::new(Point::new(0.5, 0.5), 10.0));
        assert!(!p.contains_field(&c_big));
        assert!(c_big.contains_field(&p));
    }

    #[test]
    fn boundary_distance_inside_rect() {
        let f = Field::rect(Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 4.0)));
        assert_eq!(f.distance_to_boundary(Point::new(5.0, 2.0)), 2.0);
        assert_eq!(f.distance_to_boundary(Point::new(1.0, 2.0)), 1.0);
        assert_eq!(f.distance_to_boundary(Point::new(12.0, 2.0)), 2.0);
    }

    #[test]
    fn boundary_distance_circle() {
        let f = Field::circle(Circle::new(Point::new(0.0, 0.0), 5.0));
        assert_eq!(f.distance_to_boundary(Point::new(0.0, 0.0)), 5.0);
        assert_eq!(f.distance_to_boundary(Point::new(7.0, 0.0)), 2.0);
    }

    #[test]
    fn extent_distance_cases() {
        let a = SpatialExtent::point(Point::new(0.0, 0.0));
        let b = SpatialExtent::point(Point::new(3.0, 4.0));
        assert_eq!(a.distance(&b), 5.0);
        let f = SpatialExtent::field(Field::circle(Circle::new(Point::new(10.0, 0.0), 2.0)));
        assert_eq!(
            b.distance(&f),
            Point::new(3.0, 4.0).distance(Point::new(10.0, 0.0)) - 2.0
        );
        assert_eq!(f.distance(&f), 0.0);
    }

    #[test]
    fn extent_field_field_distance_positive_when_disjoint() {
        let a = SpatialExtent::field(Field::rect(Rect::new(
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
        )));
        let b = SpatialExtent::field(Field::rect(Rect::new(
            Point::new(3.0, 0.0),
            Point::new(4.0, 1.0),
        )));
        let d = a.distance(&b);
        assert!((d - 2.0).abs() < 1e-6, "expected ~2.0, got {d}");
    }

    #[test]
    fn extent_containment_rules() {
        let pt = SpatialExtent::point(Point::new(1.0, 1.0));
        let field = SpatialExtent::field(Field::rect(Rect::new(
            Point::new(0.0, 0.0),
            Point::new(2.0, 2.0),
        )));
        assert!(field.contains_extent(&pt));
        assert!(
            !pt.contains_extent(&field),
            "a point never contains a field"
        );
        assert!(pt.contains_extent(&pt));
    }

    #[test]
    fn approx_eq_discriminates_variants() {
        let r = Field::rect(Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)));
        let c = Field::circle(Circle::new(Point::new(0.5, 0.5), 0.5));
        assert!(r.approx_eq(&r.clone()));
        assert!(!r.approx_eq(&c));
    }

    #[test]
    fn representative_points() {
        let f = SpatialExtent::field(Field::rect(Rect::new(
            Point::new(0.0, 0.0),
            Point::new(4.0, 2.0),
        )));
        assert!(f.representative().approx_eq(Point::new(2.0, 1.0)));
        assert_eq!(f.area(), 8.0);
        assert_eq!(SpatialExtent::point(Point::new(1.0, 1.0)).area(), 0.0);
    }
}
