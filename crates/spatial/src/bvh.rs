//! A small flat bounding-volume hierarchy over axis-aligned rectangles.
//!
//! The engine router's per-leaf interest index stores every resident
//! subscription's scope rectangle and answers "which scopes cover this
//! point?" on the ingest hot path. A linear scan is fine for a handful
//! of scopes; past a few dozen the scan dominates routing. This BVH
//! packs the rectangles into a flat node array (no pointer chasing, no
//! allocation per query beyond the caller's candidate buffer) and turns
//! the scan into an `O(log n)`-ish descent.
//!
//! Design constraints, in order:
//!
//! * **conservative** — a query must return every rectangle containing
//!   the point (callers run an exact-geometry check on the candidates,
//!   so false positives only cost time, never correctness);
//! * **cheap to build** — top-down median split on the longest axis of
//!   the centroid bounds, a few microseconds for hundreds of rects;
//! * **incrementally insertable** — subscriptions register one at a
//!   time; inserts descend by least bbox enlargement and split
//!   overfull leaves in place, so registration never re-builds.

use crate::{Point, Rect};

/// Rectangles per leaf before an insert splits it.
const LEAF_CAPACITY: usize = 4;

/// One node of the flat hierarchy.
#[derive(Debug, Clone)]
enum Node {
    /// An internal node: bbox of both children.
    Internal {
        bbox: Rect,
        left: usize,
        right: usize,
    },
    /// A leaf holding item indices into the item table.
    Leaf { bbox: Rect, items: Vec<u32> },
}

impl Node {
    fn bbox(&self) -> Rect {
        match self {
            Node::Internal { bbox, .. } | Node::Leaf { bbox, .. } => *bbox,
        }
    }
}

/// A flat BVH over rectangles, queried by point or rectangle.
///
/// Items are addressed by the dense index assigned at [`Bvh::build`] /
/// [`Bvh::insert`] order; callers keep the payloads in a parallel
/// vector.
///
/// # Example
///
/// ```
/// use stem_spatial::{Bvh, Point, Rect};
///
/// let rects = vec![
///     Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
///     Rect::new(Point::new(20.0, 20.0), Point::new(30.0, 30.0)),
/// ];
/// let bvh = Bvh::build(&rects);
/// let mut hits = Vec::new();
/// bvh.query_point(Point::new(5.0, 5.0), &mut hits);
/// assert_eq!(hits, vec![0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Bvh {
    nodes: Vec<Node>,
    /// The indexed rectangles, by item index.
    rects: Vec<Rect>,
    root: Option<usize>,
}

impl Bvh {
    /// An empty hierarchy.
    #[must_use]
    pub fn new() -> Self {
        Bvh::default()
    }

    /// Builds a hierarchy over `rects` (item `i` is `rects[i]`).
    #[must_use]
    pub fn build(rects: &[Rect]) -> Self {
        let mut bvh = Bvh {
            nodes: Vec::new(),
            rects: rects.to_vec(),
            root: None,
        };
        if rects.is_empty() {
            return bvh;
        }
        let mut items: Vec<u32> = (0..rects.len() as u32).collect();
        let root = bvh.build_node(&mut items);
        bvh.root = Some(root);
        bvh
    }

    /// Number of indexed rectangles.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// Whether the hierarchy indexes nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// The rectangle stored for item `index`.
    #[must_use]
    pub fn rect(&self, index: u32) -> Rect {
        self.rects[index as usize]
    }

    /// Recursively packs `items` (indices into `self.rects`) into nodes
    /// by median-splitting along the longest axis of the centroid
    /// bounds, and returns the subtree root's node index.
    fn build_node(&mut self, items: &mut [u32]) -> usize {
        let bbox = self.bbox_of(items);
        if items.len() <= LEAF_CAPACITY {
            self.nodes.push(Node::Leaf {
                bbox,
                items: items.to_vec(),
            });
            return self.nodes.len() - 1;
        }
        // Median split on the longest axis of the centroid spread; a
        // degenerate spread (all centroids coincident) still splits by
        // index, so recursion always terminates.
        let centroid = |r: &Rect| r.center();
        let wide = {
            let xs: Vec<f64> = items
                .iter()
                .map(|&i| centroid(&self.rects[i as usize]).x)
                .collect();
            let ys: Vec<f64> = items
                .iter()
                .map(|&i| centroid(&self.rects[i as usize]).y)
                .collect();
            let spread = |v: &[f64]| {
                v.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                    - v.iter().cloned().fold(f64::INFINITY, f64::min)
            };
            spread(&xs) >= spread(&ys)
        };
        items.sort_by(|&a, &b| {
            let (ca, cb) = (
                centroid(&self.rects[a as usize]),
                centroid(&self.rects[b as usize]),
            );
            let (ka, kb) = if wide { (ca.x, cb.x) } else { (ca.y, cb.y) };
            ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mid = items.len() / 2;
        let (lo, hi) = items.split_at_mut(mid);
        let left = self.build_node(lo);
        let right = self.build_node(hi);
        self.nodes.push(Node::Internal { bbox, left, right });
        self.nodes.len() - 1
    }

    fn bbox_of(&self, items: &[u32]) -> Rect {
        let mut it = items.iter();
        let first = it
            .next()
            .map(|&i| self.rects[i as usize])
            .expect("bbox of non-empty item set");
        it.fold(first, |acc, &i| acc.union(&self.rects[i as usize]))
    }

    /// Indexes one more rectangle and returns its item index.
    ///
    /// Descends by least bbox enlargement, splits an overfull leaf in
    /// place, and widens ancestor boxes on the way down — registration
    /// stays incremental, no rebuild.
    pub fn insert(&mut self, rect: Rect) -> u32 {
        let index = self.rects.len() as u32;
        self.rects.push(rect);
        let Some(root) = self.root else {
            self.nodes.push(Node::Leaf {
                bbox: rect,
                items: vec![index],
            });
            self.root = Some(self.nodes.len() - 1);
            return index;
        };
        let mut node = root;
        loop {
            match &mut self.nodes[node] {
                Node::Internal { bbox, left, right } => {
                    *bbox = bbox.union(&rect);
                    let (left, right) = (*left, *right);
                    node = self.cheaper_child(left, right, &rect);
                }
                Node::Leaf { bbox, items } => {
                    *bbox = bbox.union(&rect);
                    items.push(index);
                    if items.len() > LEAF_CAPACITY {
                        self.split_leaf(node);
                    }
                    return index;
                }
            }
        }
    }

    /// The child whose bbox grows least when widened to include `rect`
    /// (ties to the smaller resulting area).
    fn cheaper_child(&self, left: usize, right: usize, rect: &Rect) -> usize {
        let cost = |node: usize| {
            let b = self.nodes[node].bbox();
            let grown = b.union(rect);
            (grown.area() - b.area(), grown.area())
        };
        let (lc, rc) = (cost(left), cost(right));
        if lc <= rc {
            left
        } else {
            right
        }
    }

    /// Splits an overfull leaf into two by median on the longest axis,
    /// turning the node internal in place (indices into `nodes` stay
    /// stable, so ancestors need no fixing).
    fn split_leaf(&mut self, node: usize) {
        let Node::Leaf { bbox, items } = self.nodes[node].clone() else {
            unreachable!("split_leaf on an internal node");
        };
        let mut items = items;
        let wide = bbox.width() >= bbox.height();
        items.sort_by(|&a, &b| {
            let (ca, cb) = (
                self.rects[a as usize].center(),
                self.rects[b as usize].center(),
            );
            let (ka, kb) = if wide { (ca.x, cb.x) } else { (ca.y, cb.y) };
            ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal)
        });
        let hi = items.split_off(items.len() / 2);
        let lo_bbox = self.bbox_of(&items);
        let hi_bbox = self.bbox_of(&hi);
        self.nodes.push(Node::Leaf {
            bbox: lo_bbox,
            items,
        });
        let left = self.nodes.len() - 1;
        self.nodes.push(Node::Leaf {
            bbox: hi_bbox,
            items: hi,
        });
        let right = self.nodes.len() - 1;
        self.nodes[node] = Node::Internal { bbox, left, right };
    }

    /// Appends to `out` the item indices of every rectangle containing
    /// `p`, and returns the number of nodes visited (the traversal-cost
    /// figure surfaced by the router's metrics).
    pub fn query_point(&self, p: Point, out: &mut Vec<u32>) -> u64 {
        let Some(root) = self.root else {
            return 0;
        };
        let mut visited = 0u64;
        let mut stack = vec![root];
        while let Some(node) = stack.pop() {
            visited += 1;
            match &self.nodes[node] {
                Node::Internal { bbox, left, right } => {
                    if bbox.contains(p) {
                        stack.push(*left);
                        stack.push(*right);
                    }
                }
                Node::Leaf { bbox, items } => {
                    if bbox.contains(p) {
                        out.extend(
                            items
                                .iter()
                                .filter(|&&i| self.rects[i as usize].contains(p)),
                        );
                    }
                }
            }
        }
        visited
    }

    /// Appends to `out` the item indices of every rectangle
    /// intersecting `query`, and returns the number of nodes visited.
    pub fn query_rect(&self, query: &Rect, out: &mut Vec<u32>) -> u64 {
        let Some(root) = self.root else {
            return 0;
        };
        let mut visited = 0u64;
        let mut stack = vec![root];
        while let Some(node) = stack.pop() {
            visited += 1;
            match &self.nodes[node] {
                Node::Internal { bbox, left, right } => {
                    if bbox.intersects(query) {
                        stack.push(*left);
                        stack.push(*right);
                    }
                }
                Node::Leaf { bbox, items } => {
                    if bbox.intersects(query) {
                        out.extend(
                            items
                                .iter()
                                .filter(|&&i| self.rects[i as usize].intersects(query)),
                        );
                    }
                }
            }
        }
        visited
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rect(x: f64, y: f64, w: f64, h: f64) -> Rect {
        Rect::new(Point::new(x, y), Point::new(x + w, y + h))
    }

    #[test]
    fn empty_hierarchy_answers_nothing() {
        let bvh = Bvh::new();
        let mut out = Vec::new();
        assert_eq!(bvh.query_point(Point::new(0.0, 0.0), &mut out), 0);
        assert!(out.is_empty());
        assert_eq!(bvh.query_rect(&rect(0.0, 0.0, 1.0, 1.0), &mut out), 0);
        assert!(out.is_empty());
        assert!(bvh.is_empty());
    }

    #[test]
    fn point_query_returns_exactly_the_containing_rects() {
        let rects = vec![
            rect(0.0, 0.0, 10.0, 10.0),
            rect(5.0, 5.0, 10.0, 10.0),
            rect(20.0, 20.0, 5.0, 5.0),
        ];
        let bvh = Bvh::build(&rects);
        let mut out = Vec::new();
        bvh.query_point(Point::new(7.0, 7.0), &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![0, 1]);
        out.clear();
        bvh.query_point(Point::new(21.0, 21.0), &mut out);
        assert_eq!(out, vec![2]);
        out.clear();
        bvh.query_point(Point::new(100.0, 100.0), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn rect_query_includes_touching_boundaries() {
        let bvh = Bvh::build(&[rect(0.0, 0.0, 10.0, 10.0)]);
        let mut out = Vec::new();
        bvh.query_rect(&rect(10.0, 0.0, 5.0, 5.0), &mut out);
        assert_eq!(out, vec![0], "touching boundaries intersect");
    }

    #[test]
    fn incremental_insert_matches_bulk_build() {
        let rects: Vec<Rect> = (0..40)
            .map(|i| {
                let f = f64::from(i);
                rect(f * 3.0, (f * 7.0) % 50.0, 5.0 + f % 4.0, 5.0)
            })
            .collect();
        let bulk = Bvh::build(&rects);
        let mut inc = Bvh::new();
        for (i, r) in rects.iter().enumerate() {
            assert_eq!(inc.insert(*r), i as u32);
        }
        for i in 0..60 {
            let p = Point::new(f64::from(i) * 2.0, f64::from(i) * 1.5);
            let (mut a, mut b) = (Vec::new(), Vec::new());
            bulk.query_point(p, &mut a);
            inc.query_point(p, &mut b);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "bulk and incremental disagree at {p:?}");
        }
    }

    #[test]
    fn deep_tree_visits_fewer_nodes_than_items() {
        // A spread-out set: point queries should prune most of the tree.
        let rects: Vec<Rect> = (0..256)
            .map(|i| {
                let (gx, gy) = (i % 16, i / 16);
                rect(f64::from(gx) * 100.0, f64::from(gy) * 100.0, 10.0, 10.0)
            })
            .collect();
        let bvh = Bvh::build(&rects);
        let mut out = Vec::new();
        let visited = bvh.query_point(Point::new(5.0, 5.0), &mut out);
        assert_eq!(out, vec![0]);
        assert!(
            visited < 64,
            "a point query over 256 disjoint rects should prune hard, visited {visited}"
        );
    }

    proptest! {
        /// Point queries equal brute force over random rect sets, built
        /// bulk or incrementally.
        #[test]
        fn point_query_matches_brute_force(
            raw in proptest::collection::vec(
                (-50.0f64..50.0, -50.0f64..50.0, 0.1f64..30.0, 0.1f64..30.0), 0..60),
            qx in -60.0f64..60.0, qy in -60.0f64..60.0,
        ) {
            let rects: Vec<Rect> = raw.iter().map(|&(x, y, w, h)| rect(x, y, w, h)).collect();
            let q = Point::new(qx, qy);
            let mut expected: Vec<u32> = rects
                .iter()
                .enumerate()
                .filter(|(_, r)| r.contains(q))
                .map(|(i, _)| i as u32)
                .collect();
            expected.sort_unstable();
            let bulk = Bvh::build(&rects);
            let mut got = Vec::new();
            bulk.query_point(q, &mut got);
            got.sort_unstable();
            prop_assert_eq!(&got, &expected);
            let mut inc = Bvh::new();
            for r in &rects {
                inc.insert(*r);
            }
            let mut got_inc = Vec::new();
            inc.query_point(q, &mut got_inc);
            got_inc.sort_unstable();
            prop_assert_eq!(&got_inc, &expected);
        }

        /// Rect queries equal brute force.
        #[test]
        fn rect_query_matches_brute_force(
            raw in proptest::collection::vec(
                (-50.0f64..50.0, -50.0f64..50.0, 0.1f64..30.0, 0.1f64..30.0), 0..60),
            qx in -60.0f64..60.0, qy in -60.0f64..60.0,
            qw in 0.1f64..40.0, qh in 0.1f64..40.0,
        ) {
            let rects: Vec<Rect> = raw.iter().map(|&(x, y, w, h)| rect(x, y, w, h)).collect();
            let q = rect(qx, qy, qw, qh);
            let mut expected: Vec<u32> = rects
                .iter()
                .enumerate()
                .filter(|(_, r)| r.intersects(&q))
                .map(|(i, _)| i as u32)
                .collect();
            expected.sort_unstable();
            let bvh = Bvh::build(&rects);
            let mut got = Vec::new();
            bvh.query_rect(&q, &mut got);
            got.sort_unstable();
            prop_assert_eq!(got, expected);
        }
    }
}
