//! Axis-aligned rectangles.

use crate::{Point, EPSILON};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An axis-aligned rectangle, stored as min/max corners.
///
/// Rectangles are the simplest field geometry and double as bounding boxes
/// for the other shapes and for the spatial indexes.
///
/// # Example
///
/// ```
/// use stem_spatial::{Point, Rect};
///
/// let r = Rect::new(Point::new(0.0, 0.0), Point::new(4.0, 2.0));
/// assert_eq!(r.area(), 8.0);
/// assert!(r.contains(Point::new(4.0, 2.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    min: Point,
    max: Point,
}

impl Rect {
    /// Creates a rectangle from any two opposite corners (order-agnostic).
    #[must_use]
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Creates a rectangle from a centre point and half-extents.
    #[must_use]
    pub fn centered(center: Point, half_width: f64, half_height: f64) -> Self {
        Rect::new(
            Point::new(center.x - half_width, center.y - half_height),
            Point::new(center.x + half_width, center.y + half_height),
        )
    }

    /// The min corner (lowest x and y).
    #[must_use]
    pub const fn min(&self) -> Point {
        self.min
    }

    /// The max corner (highest x and y).
    #[must_use]
    pub const fn max(&self) -> Point {
        self.max
    }

    /// Width along x.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height along y.
    #[must_use]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area.
    #[must_use]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// The centre point.
    #[must_use]
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// The four corners in counter-clockwise order starting at `min`.
    #[must_use]
    pub fn corners(&self) -> [Point; 4] {
        [
            self.min,
            Point::new(self.max.x, self.min.y),
            self.max,
            Point::new(self.min.x, self.max.y),
        ]
    }

    /// Returns `true` if `p` lies inside or on the boundary.
    #[must_use]
    pub fn contains(&self, p: Point) -> bool {
        self.min.x <= p.x && p.x <= self.max.x && self.min.y <= p.y && p.y <= self.max.y
    }

    /// Returns `true` if `p` lies strictly inside (off the boundary).
    #[must_use]
    pub fn contains_strict(&self, p: Point) -> bool {
        self.min.x + EPSILON < p.x
            && p.x < self.max.x - EPSILON
            && self.min.y + EPSILON < p.y
            && p.y < self.max.y - EPSILON
    }

    /// Returns `true` if `other` lies entirely within `self` (non-strict).
    #[must_use]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.contains(other.min) && self.contains(other.max)
    }

    /// Returns `true` if the rectangles share at least one point
    /// (touching boundaries count).
    #[must_use]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// The overlapping region, if any.
    #[must_use]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            min: Point::new(self.min.x.max(other.min.x), self.min.y.max(other.min.y)),
            max: Point::new(self.max.x.min(other.max.x), self.max.y.min(other.max.y)),
        })
    }

    /// The smallest rectangle containing both operands.
    #[must_use]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// The rectangle grown by `margin` on every side.
    ///
    /// # Panics
    ///
    /// Panics if `margin` is negative enough to invert the rectangle.
    #[must_use]
    pub fn inflated(&self, margin: f64) -> Rect {
        let r = Rect {
            min: Point::new(self.min.x - margin, self.min.y - margin),
            max: Point::new(self.max.x + margin, self.max.y + margin),
        };
        assert!(
            r.min.x <= r.max.x && r.min.y <= r.max.y,
            "negative margin inverted the rectangle"
        );
        r
    }

    /// Euclidean distance from `p` to the rectangle (zero if inside).
    #[must_use]
    pub fn distance_to_point(&self, p: Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// The smallest rectangle containing all given points, or `None` if the
    /// input is empty.
    #[must_use]
    pub fn bounding(points: &[Point]) -> Option<Rect> {
        let (first, rest) = points.split_first()?;
        let mut r = Rect::new(*first, *first);
        for p in rest {
            r.min = Point::new(r.min.x.min(p.x), r.min.y.min(p.y));
            r.max = Point::new(r.max.x.max(p.x), r.max.y.max(p.y));
        }
        Some(r)
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rect[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn corners_are_normalized() {
        let r = Rect::new(Point::new(5.0, 1.0), Point::new(1.0, 5.0));
        assert_eq!(r.min(), Point::new(1.0, 1.0));
        assert_eq!(r.max(), Point::new(5.0, 5.0));
        assert_eq!(r.width(), 4.0);
        assert_eq!(r.center(), Point::new(3.0, 3.0));
    }

    #[test]
    fn containment_includes_boundary() {
        let r = Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(2.0, 2.0)));
        assert!(!r.contains_strict(Point::new(0.0, 0.0)));
        assert!(r.contains_strict(Point::new(1.0, 1.0)));
        assert!(!r.contains(Point::new(2.1, 1.0)));
    }

    #[test]
    fn touching_rects_intersect_with_zero_area() {
        let a = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let b = Rect::new(Point::new(1.0, 0.0), Point::new(2.0, 1.0));
        assert!(a.intersects(&b));
        let x = a.intersection(&b).unwrap();
        assert_eq!(x.area(), 0.0);
    }

    #[test]
    fn disjoint_rects_do_not_intersect() {
        let a = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let b = Rect::new(Point::new(3.0, 3.0), Point::new(4.0, 4.0));
        assert!(!a.intersects(&b));
        assert!(a.intersection(&b).is_none());
    }

    #[test]
    fn union_contains_both() {
        let a = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let b = Rect::new(Point::new(3.0, -1.0), Point::new(4.0, 0.5));
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
    }

    #[test]
    fn distance_to_point_zero_inside() {
        let r = Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        assert_eq!(r.distance_to_point(Point::new(1.0, 1.0)), 0.0);
        assert_eq!(r.distance_to_point(Point::new(5.0, 1.0)), 3.0);
        assert!((r.distance_to_point(Point::new(5.0, 6.0)) - 5.0).abs() < EPSILON);
    }

    #[test]
    fn bounding_box_of_points() {
        assert!(Rect::bounding(&[]).is_none());
        let r = Rect::bounding(&[
            Point::new(1.0, 5.0),
            Point::new(-2.0, 0.0),
            Point::new(3.0, 2.0),
        ])
        .unwrap();
        assert_eq!(r.min(), Point::new(-2.0, 0.0));
        assert_eq!(r.max(), Point::new(3.0, 5.0));
    }

    #[test]
    fn inflate_grows_every_side() {
        let r = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)).inflated(0.5);
        assert_eq!(r.min(), Point::new(-0.5, -0.5));
        assert_eq!(r.max(), Point::new(1.5, 1.5));
    }

    proptest! {
        /// Intersection area never exceeds either operand's area.
        #[test]
        fn intersection_area_bounded(
            ax in -10.0f64..10.0, ay in -10.0f64..10.0, aw in 0.1f64..10.0, ah in 0.1f64..10.0,
            bx in -10.0f64..10.0, by in -10.0f64..10.0, bw in 0.1f64..10.0, bh in 0.1f64..10.0,
        ) {
            let a = Rect::new(Point::new(ax, ay), Point::new(ax + aw, ay + ah));
            let b = Rect::new(Point::new(bx, by), Point::new(bx + bw, by + bh));
            if let Some(x) = a.intersection(&b) {
                prop_assert!(x.area() <= a.area() + 1e-9);
                prop_assert!(x.area() <= b.area() + 1e-9);
                prop_assert!(a.contains_rect(&x));
            }
        }

        /// Union always contains both operands and intersection commutes.
        #[test]
        fn union_intersection_laws(
            ax in -10.0f64..10.0, ay in -10.0f64..10.0, aw in 0.1f64..10.0, ah in 0.1f64..10.0,
            bx in -10.0f64..10.0, by in -10.0f64..10.0, bw in 0.1f64..10.0, bh in 0.1f64..10.0,
        ) {
            let a = Rect::new(Point::new(ax, ay), Point::new(ax + aw, ay + ah));
            let b = Rect::new(Point::new(bx, by), Point::new(bx + bw, by + bh));
            prop_assert!(a.union(&b).contains_rect(&a));
            prop_assert_eq!(a.intersection(&b), b.intersection(&a));
        }
    }
}
