//! Spatial aggregation functions `g_s` (Eq. 4.4).
//!
//! "A spatial event condition can be represented as
//! `g_s[l1, l2, l3, ...] OP_S C_s` where `g_s` is an aggregation function,
//! which takes the location of n entities."

use crate::{convex_hull, Field, Point, Polygon, Rect, SpatialExtent};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A spatial aggregation function `g_s` mapping the occurrence locations of
/// *n* entities to a single [`SpatialExtent`].
///
/// # Example
///
/// ```
/// use stem_spatial::{Point, SpatialAgg, SpatialExtent};
///
/// let locs = [
///     SpatialExtent::point(Point::new(0.0, 0.0)),
///     SpatialExtent::point(Point::new(4.0, 0.0)),
/// ];
/// let c = SpatialAgg::Centroid.apply(&locs).unwrap();
/// assert!(c.representative().approx_eq(Point::new(2.0, 0.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpatialAgg {
    /// The mean of the representative points (point result).
    Centroid,
    /// The tight axis-aligned bounding box of all extents (field result).
    BoundingBox,
    /// The convex hull of all extents' defining points (field result;
    /// degenerate inputs fall back to the bounding box).
    Hull,
    /// The identity on a single input; on several inputs behaves like
    /// [`SpatialAgg::BoundingBox`]. Used when a condition refers to one
    /// entity's location directly.
    Identity,
}

impl SpatialAgg {
    /// Applies the aggregate to a slice of extents.
    ///
    /// Returns `None` on empty input (an aggregation over zero entities is
    /// undefined; conditions always reference at least one entity).
    #[must_use]
    pub fn apply(self, locs: &[SpatialExtent]) -> Option<SpatialExtent> {
        let (first, _) = locs.split_first()?;
        Some(match self {
            SpatialAgg::Centroid => {
                let n = locs.len() as f64;
                let (sx, sy) = locs.iter().fold((0.0, 0.0), |(sx, sy), e| {
                    let p = e.representative();
                    (sx + p.x, sy + p.y)
                });
                SpatialExtent::point(Point::new(sx / n, sy / n))
            }
            SpatialAgg::BoundingBox => {
                if locs.len() == 1 && first.is_point() {
                    return Some(first.clone());
                }
                let bb = locs
                    .iter()
                    .map(SpatialExtent::bounding_box)
                    .reduce(|a, b| a.union(&b))
                    .expect("non-empty input");
                SpatialExtent::field(Field::rect(bb))
            }
            SpatialAgg::Hull => {
                let mut pts: Vec<Point> = Vec::new();
                for e in locs {
                    match e {
                        SpatialExtent::Point(p) => pts.push(*p),
                        SpatialExtent::Field(f) => {
                            pts.extend(f.to_polygon().vertices().iter().copied());
                        }
                    }
                }
                let hull = convex_hull(&pts);
                match Polygon::new(hull) {
                    Ok(poly) => SpatialExtent::field(Field::polygon(poly)),
                    Err(_) => {
                        // Collinear/degenerate: fall back to the bounding box.
                        let bb = Rect::bounding(&pts).expect("non-empty input");
                        if bb.area() == 0.0 && pts.len() == 1 {
                            SpatialExtent::point(pts[0])
                        } else {
                            SpatialExtent::field(Field::rect(bb))
                        }
                    }
                }
            }
            SpatialAgg::Identity => {
                if locs.len() == 1 {
                    first.clone()
                } else {
                    SpatialAgg::BoundingBox.apply(locs)?
                }
            }
        })
    }

    /// Parses the aggregate from its canonical lowercase name
    /// (`centroid, bbox, convex, loc`).
    ///
    /// The convex hull is named `convex` (not `hull`) so that the textual
    /// condition DSL can distinguish it from the *temporal* hull aggregate.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "centroid" => SpatialAgg::Centroid,
            "bbox" => SpatialAgg::BoundingBox,
            "convex" => SpatialAgg::Hull,
            "loc" => SpatialAgg::Identity,
            _ => return None,
        })
    }

    /// The canonical lowercase name (inverse of [`SpatialAgg::from_name`]).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SpatialAgg::Centroid => "centroid",
            SpatialAgg::BoundingBox => "bbox",
            SpatialAgg::Hull => "convex",
            SpatialAgg::Identity => "loc",
        }
    }
}

impl fmt::Display for SpatialAgg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Circle;
    use proptest::prelude::*;

    fn pt(x: f64, y: f64) -> SpatialExtent {
        SpatialExtent::point(Point::new(x, y))
    }

    #[test]
    fn empty_input_is_undefined() {
        for agg in [
            SpatialAgg::Centroid,
            SpatialAgg::BoundingBox,
            SpatialAgg::Hull,
            SpatialAgg::Identity,
        ] {
            assert_eq!(agg.apply(&[]), None, "{agg} on empty input");
        }
    }

    #[test]
    fn centroid_of_points() {
        let c = SpatialAgg::Centroid
            .apply(&[pt(0.0, 0.0), pt(2.0, 0.0), pt(1.0, 3.0)])
            .unwrap();
        assert!(c.representative().approx_eq(Point::new(1.0, 1.0)));
    }

    #[test]
    fn centroid_uses_field_centroids() {
        let f = SpatialExtent::field(Field::circle(Circle::new(Point::new(4.0, 0.0), 1.0)));
        let c = SpatialAgg::Centroid.apply(&[pt(0.0, 0.0), f]).unwrap();
        assert!(c.representative().approx_eq(Point::new(2.0, 0.0)));
    }

    #[test]
    fn bounding_box_covers_all() {
        let f = SpatialExtent::field(Field::circle(Circle::new(Point::new(5.0, 5.0), 1.0)));
        let bb = SpatialAgg::BoundingBox
            .apply(&[pt(0.0, 0.0), f.clone()])
            .unwrap();
        assert!(bb.contains_extent(&pt(0.0, 0.0)));
        assert!(bb.contains_extent(&f));
    }

    #[test]
    fn bounding_box_of_single_point_is_point() {
        let bb = SpatialAgg::BoundingBox.apply(&[pt(1.0, 2.0)]).unwrap();
        assert!(bb.is_point());
    }

    #[test]
    fn hull_of_triangle_points_is_polygon() {
        let h = SpatialAgg::Hull
            .apply(&[pt(0.0, 0.0), pt(4.0, 0.0), pt(2.0, 3.0)])
            .unwrap();
        match h {
            SpatialExtent::Field(Field::Polygon(p)) => {
                assert_eq!(p.len(), 3);
                assert!((p.area() - 6.0).abs() < 1e-9);
            }
            other => panic!("expected polygon hull, got {other:?}"),
        }
    }

    #[test]
    fn hull_of_collinear_points_falls_back_to_bbox() {
        let h = SpatialAgg::Hull
            .apply(&[pt(0.0, 0.0), pt(1.0, 1.0), pt(2.0, 2.0)])
            .unwrap();
        assert!(matches!(h, SpatialExtent::Field(Field::Rect(_))));
    }

    #[test]
    fn identity_single_and_multi() {
        let f = SpatialExtent::field(Field::circle(Circle::new(Point::new(0.0, 0.0), 1.0)));
        assert_eq!(
            SpatialAgg::Identity.apply(std::slice::from_ref(&f)),
            Some(f.clone())
        );
        let multi = SpatialAgg::Identity.apply(&[f, pt(9.0, 9.0)]).unwrap();
        assert!(multi.contains_extent(&pt(9.0, 9.0)));
    }

    #[test]
    fn names_round_trip() {
        for agg in [
            SpatialAgg::Centroid,
            SpatialAgg::BoundingBox,
            SpatialAgg::Hull,
            SpatialAgg::Identity,
        ] {
            assert_eq!(SpatialAgg::from_name(agg.name()), Some(agg));
        }
    }

    proptest! {
        /// Every input point is covered by the hull and bbox aggregates.
        #[test]
        fn aggregates_cover_inputs(raw in proptest::collection::vec((-20.0f64..20.0, -20.0f64..20.0), 1..12)) {
            let pts: Vec<SpatialExtent> = raw.iter().map(|&(x, y)| pt(x, y)).collect();
            let bb = SpatialAgg::BoundingBox.apply(&pts).unwrap();
            let hull = SpatialAgg::Hull.apply(&pts).unwrap();
            for p in &pts {
                prop_assert!(bb.intersects(p), "bbox must cover {p:?}");
                prop_assert!(hull.intersects(p), "hull must cover {p:?}");
            }
        }

        /// The centroid lies within the bounding box.
        #[test]
        fn centroid_in_bbox(raw in proptest::collection::vec((-20.0f64..20.0, -20.0f64..20.0), 2..12)) {
            let pts: Vec<SpatialExtent> = raw.iter().map(|&(x, y)| pt(x, y)).collect();
            let c = SpatialAgg::Centroid.apply(&pts).unwrap();
            let bb = SpatialAgg::BoundingBox.apply(&pts).unwrap();
            prop_assert!(bb.covers(c.representative()));
        }
    }
}
