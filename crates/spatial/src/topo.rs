//! Topological relation classification.
//!
//! The paper cites Egenhofer's topological relationships of objects in 2-D
//! space ([17]) and extends spatial relations to "3 types: point event with
//! point event (e.g. Equal to), point event with field event (e.g. Inside,
//! Outside), and field event with field event (e.g. Joint)" (Sec. 4.2).
//! This module implements the full region–region classification
//! (Egenhofer's eight relations) plus the point–field family.

use crate::{Field, Point, Polygon, EPSILON};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Relation between a point and a field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PointFieldRelation {
    /// The point lies strictly outside the field.
    Outside,
    /// The point lies on the field boundary.
    OnBoundary,
    /// The point lies strictly inside the field.
    Inside,
}

impl fmt::Display for PointFieldRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PointFieldRelation::Outside => "outside",
            PointFieldRelation::OnBoundary => "on-boundary",
            PointFieldRelation::Inside => "inside",
        };
        f.write_str(s)
    }
}

/// Classifies a point against a field.
///
/// # Example
///
/// ```
/// use stem_spatial::{relate_point_field, Circle, Field, Point, PointFieldRelation};
///
/// let f = Field::circle(Circle::new(Point::new(0.0, 0.0), 2.0));
/// assert_eq!(relate_point_field(Point::new(0.0, 0.0), &f), PointFieldRelation::Inside);
/// assert_eq!(relate_point_field(Point::new(2.0, 0.0), &f), PointFieldRelation::OnBoundary);
/// assert_eq!(relate_point_field(Point::new(3.0, 0.0), &f), PointFieldRelation::Outside);
/// ```
#[must_use]
pub fn relate_point_field(p: Point, f: &Field) -> PointFieldRelation {
    // Boundary tolerance: geometric EPSILON scaled up for stability of the
    // polygonal circle approximation.
    let tol = 1e-7;
    if f.distance_to_boundary(p) < tol {
        PointFieldRelation::OnBoundary
    } else if f.contains(p) {
        PointFieldRelation::Inside
    } else {
        PointFieldRelation::Outside
    }
}

/// Egenhofer's eight topological relations between two regions.
///
/// Classification is performed on polygonal views of the fields (circles
/// become 64-gons), so boundary-coincidence answers for circles are
/// approximate at the polygonalization tolerance; all containment and
/// disjointness answers are robust.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopoRelation {
    /// Interiors and boundaries are disjoint.
    Disjoint,
    /// Boundaries touch; interiors are disjoint.
    Meet,
    /// Interiors overlap but neither region contains the other.
    Overlap,
    /// The regions coincide.
    Equal,
    /// The first region contains the second, boundaries apart.
    Contains,
    /// The first region lies inside the second, boundaries apart.
    Inside,
    /// The first region contains the second with boundary contact.
    Covers,
    /// The first region lies inside the second with boundary contact.
    CoveredBy,
}

impl TopoRelation {
    /// The converse relation (`relate(b, a)` given `relate(a, b)`).
    #[must_use]
    pub fn converse(self) -> TopoRelation {
        match self {
            TopoRelation::Disjoint => TopoRelation::Disjoint,
            TopoRelation::Meet => TopoRelation::Meet,
            TopoRelation::Overlap => TopoRelation::Overlap,
            TopoRelation::Equal => TopoRelation::Equal,
            TopoRelation::Contains => TopoRelation::Inside,
            TopoRelation::Inside => TopoRelation::Contains,
            TopoRelation::Covers => TopoRelation::CoveredBy,
            TopoRelation::CoveredBy => TopoRelation::Covers,
        }
    }
}

impl fmt::Display for TopoRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TopoRelation::Disjoint => "disjoint",
            TopoRelation::Meet => "meet",
            TopoRelation::Overlap => "overlap",
            TopoRelation::Equal => "equal",
            TopoRelation::Contains => "contains",
            TopoRelation::Inside => "inside",
            TopoRelation::Covers => "covers",
            TopoRelation::CoveredBy => "covered-by",
        };
        f.write_str(s)
    }
}

/// Classifies the topological relation between two fields.
///
/// # Example
///
/// ```
/// use stem_spatial::{relate_fields, Field, Point, Rect, TopoRelation};
///
/// let a = Field::rect(Rect::new(Point::new(0.0, 0.0), Point::new(4.0, 4.0)));
/// let b = Field::rect(Rect::new(Point::new(1.0, 1.0), Point::new(2.0, 2.0)));
/// assert_eq!(relate_fields(&a, &b), TopoRelation::Contains);
/// assert_eq!(relate_fields(&b, &a), TopoRelation::Inside);
/// ```
#[must_use]
pub fn relate_fields(a: &Field, b: &Field) -> TopoRelation {
    let pa = a.to_polygon();
    let pb = b.to_polygon();

    let a_in_b = pb.contains_polygon(&pa);
    let b_in_a = pa.contains_polygon(&pb);
    if a_in_b && b_in_a {
        return TopoRelation::Equal;
    }
    let touch = boundaries_touch(&pa, &pb);
    if a_in_b {
        return if touch {
            TopoRelation::CoveredBy
        } else {
            TopoRelation::Inside
        };
    }
    if b_in_a {
        return if touch {
            TopoRelation::Covers
        } else {
            TopoRelation::Contains
        };
    }
    if !pa.intersects(&pb) {
        return TopoRelation::Disjoint;
    }
    if interiors_overlap(&pa, &pb) {
        TopoRelation::Overlap
    } else {
        TopoRelation::Meet
    }
}

/// Returns `true` if the polygon boundaries come within tolerance of each
/// other.
fn boundaries_touch(a: &Polygon, b: &Polygon) -> bool {
    let tol = 1e-7;
    a.vertices().iter().any(|&v| b_dist(b, v) < tol)
        || b.vertices().iter().any(|&v| b_dist(a, v) < tol)
        || edge_pairs_touch(a, b, tol)
}

fn b_dist(p: &Polygon, v: Point) -> f64 {
    p.edges()
        .map(|(s, e)| seg_dist(v, s, e))
        .fold(f64::INFINITY, f64::min)
}

fn seg_dist(p: Point, a: Point, b: Point) -> f64 {
    let ab = a.vector_to(b);
    let len2 = ab.dot(ab);
    if len2 < EPSILON * EPSILON {
        return a.distance(p);
    }
    let t = (a.vector_to(p).dot(ab) / len2).clamp(0.0, 1.0);
    a.lerp(b, t).distance(p)
}

fn edge_pairs_touch(a: &Polygon, b: &Polygon, tol: f64) -> bool {
    for (s1, e1) in a.edges() {
        for (s2, e2) in b.edges() {
            if seg_dist(s1, s2, e2) < tol
                || seg_dist(e1, s2, e2) < tol
                || seg_dist(s2, s1, e1) < tol
                || seg_dist(e2, s1, e1) < tol
            {
                return true;
            }
        }
    }
    false
}

/// Returns `true` if the polygon interiors share a point: either an edge
/// pair crosses properly, or a vertex of one lies strictly inside the
/// other.
fn interiors_overlap(a: &Polygon, b: &Polygon) -> bool {
    let strictly_inside = |poly: &Polygon, v: Point| poly.contains(v) && !poly.on_boundary(v);
    if a.vertices().iter().any(|&v| strictly_inside(b, v))
        || b.vertices().iter().any(|&v| strictly_inside(a, v))
    {
        return true;
    }
    for (s1, e1) in a.edges() {
        for (s2, e2) in b.edges() {
            if cross_properly(s1, e1, s2, e2) {
                return true;
            }
        }
    }
    false
}

fn cross_properly(a: Point, b: Point, c: Point, d: Point) -> bool {
    let o = |p: Point, q: Point, r: Point| p.vector_to(q).cross(p.vector_to(r));
    let d1 = o(c, d, a);
    let d2 = o(c, d, b);
    let d3 = o(a, b, c);
    let d4 = o(a, b, d);
    ((d1 > EPSILON && d2 < -EPSILON) || (d1 < -EPSILON && d2 > EPSILON))
        && ((d3 > EPSILON && d4 < -EPSILON) || (d3 < -EPSILON && d4 > EPSILON))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Circle, Rect};
    use proptest::prelude::*;

    fn rect_field(x0: f64, y0: f64, x1: f64, y1: f64) -> Field {
        Field::rect(Rect::new(Point::new(x0, y0), Point::new(x1, y1)))
    }

    #[test]
    fn disjoint_rects() {
        assert_eq!(
            relate_fields(
                &rect_field(0.0, 0.0, 1.0, 1.0),
                &rect_field(5.0, 5.0, 6.0, 6.0)
            ),
            TopoRelation::Disjoint
        );
    }

    #[test]
    fn meeting_rects_share_only_boundary() {
        assert_eq!(
            relate_fields(
                &rect_field(0.0, 0.0, 1.0, 1.0),
                &rect_field(1.0, 0.0, 2.0, 1.0)
            ),
            TopoRelation::Meet
        );
        // Corner touch is also Meet.
        assert_eq!(
            relate_fields(
                &rect_field(0.0, 0.0, 1.0, 1.0),
                &rect_field(1.0, 1.0, 2.0, 2.0)
            ),
            TopoRelation::Meet
        );
    }

    #[test]
    fn overlapping_rects() {
        assert_eq!(
            relate_fields(
                &rect_field(0.0, 0.0, 2.0, 2.0),
                &rect_field(1.0, 1.0, 3.0, 3.0)
            ),
            TopoRelation::Overlap
        );
    }

    #[test]
    fn equal_rects() {
        assert_eq!(
            relate_fields(
                &rect_field(0.0, 0.0, 2.0, 2.0),
                &rect_field(0.0, 0.0, 2.0, 2.0)
            ),
            TopoRelation::Equal
        );
    }

    #[test]
    fn contains_vs_covers() {
        // Strict containment: no boundary contact.
        assert_eq!(
            relate_fields(
                &rect_field(0.0, 0.0, 4.0, 4.0),
                &rect_field(1.0, 1.0, 2.0, 2.0)
            ),
            TopoRelation::Contains
        );
        // Containment with shared boundary edge.
        assert_eq!(
            relate_fields(
                &rect_field(0.0, 0.0, 4.0, 4.0),
                &rect_field(0.0, 1.0, 2.0, 2.0)
            ),
            TopoRelation::Covers
        );
        assert_eq!(
            relate_fields(
                &rect_field(0.0, 1.0, 2.0, 2.0),
                &rect_field(0.0, 0.0, 4.0, 4.0)
            ),
            TopoRelation::CoveredBy
        );
    }

    #[test]
    fn circle_inside_rect() {
        let r = rect_field(0.0, 0.0, 10.0, 10.0);
        let c = Field::circle(Circle::new(Point::new(5.0, 5.0), 2.0));
        assert_eq!(relate_fields(&r, &c), TopoRelation::Contains);
        assert_eq!(relate_fields(&c, &r), TopoRelation::Inside);
    }

    #[test]
    fn circle_circle_relations() {
        let a = Field::circle(Circle::new(Point::new(0.0, 0.0), 2.0));
        let b = Field::circle(Circle::new(Point::new(10.0, 0.0), 2.0));
        assert_eq!(relate_fields(&a, &b), TopoRelation::Disjoint);
        let c = Field::circle(Circle::new(Point::new(1.0, 0.0), 2.0));
        assert_eq!(relate_fields(&a, &c), TopoRelation::Overlap);
    }

    #[test]
    fn point_field_classification_rect() {
        let f = rect_field(0.0, 0.0, 2.0, 2.0);
        assert_eq!(
            relate_point_field(Point::new(1.0, 1.0), &f),
            PointFieldRelation::Inside
        );
        assert_eq!(
            relate_point_field(Point::new(0.0, 1.0), &f),
            PointFieldRelation::OnBoundary
        );
        assert_eq!(
            relate_point_field(Point::new(3.0, 1.0), &f),
            PointFieldRelation::Outside
        );
    }

    #[test]
    fn converse_round_trips() {
        for r in [
            TopoRelation::Disjoint,
            TopoRelation::Meet,
            TopoRelation::Overlap,
            TopoRelation::Equal,
            TopoRelation::Contains,
            TopoRelation::Inside,
            TopoRelation::Covers,
            TopoRelation::CoveredBy,
        ] {
            assert_eq!(r.converse().converse(), r);
        }
    }

    proptest! {
        /// relate_fields(a, b) is always the converse of relate_fields(b, a).
        #[test]
        fn relation_converse_consistency(
            ax in 0.0f64..5.0, ay in 0.0f64..5.0, aw in 1.0f64..4.0, ah in 1.0f64..4.0,
            bx in 0.0f64..5.0, by in 0.0f64..5.0, bw in 1.0f64..4.0, bh in 1.0f64..4.0,
        ) {
            let a = rect_field(ax, ay, ax + aw, ay + ah);
            let b = rect_field(bx, by, bx + bw, by + bh);
            prop_assert_eq!(relate_fields(&a, &b).converse(), relate_fields(&b, &a));
        }

        /// Disjoint classification agrees with the intersects predicate.
        #[test]
        fn disjoint_iff_not_intersecting(
            ax in 0.0f64..5.0, ay in 0.0f64..5.0, aw in 1.0f64..4.0, ah in 1.0f64..4.0,
            bx in 0.0f64..5.0, by in 0.0f64..5.0, bw in 1.0f64..4.0, bh in 1.0f64..4.0,
        ) {
            let a = rect_field(ax, ay, ax + aw, ay + ah);
            let b = rect_field(bx, by, bx + bw, by + bh);
            let rel = relate_fields(&a, &b);
            if rel == TopoRelation::Disjoint {
                prop_assert!(!a.intersects(&b));
            } else {
                prop_assert!(a.intersects(&b));
            }
        }
    }
}
