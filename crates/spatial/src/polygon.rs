//! Simple polygons: the general "polytope" field geometry of the paper.

use crate::{Point, Rect, EPSILON};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error returned when constructing an invalid [`Polygon`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvalidPolygon {
    /// Fewer than three vertices were supplied.
    TooFewVertices(usize),
    /// A vertex coordinate was NaN or infinite.
    NonFiniteVertex(usize),
    /// The polygon has (numerically) zero area.
    ZeroArea,
}

impl fmt::Display for InvalidPolygon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidPolygon::TooFewVertices(n) => {
                write!(f, "polygon needs at least 3 vertices, got {n}")
            }
            InvalidPolygon::NonFiniteVertex(i) => {
                write!(f, "polygon vertex {i} has a non-finite coordinate")
            }
            InvalidPolygon::ZeroArea => write!(f, "polygon has zero area"),
        }
    }
}

impl std::error::Error for InvalidPolygon {}

/// A simple polygon (no self-intersection checks are performed; callers
/// constructing exotic inputs get the usual even-odd semantics from the
/// containment test).
///
/// Vertices are stored in counter-clockwise order; clockwise input is
/// reversed on construction so that signed-area-based algorithms can rely
/// on orientation.
///
/// # Example
///
/// ```
/// use stem_spatial::{Point, Polygon};
///
/// let p = Polygon::new(vec![
///     Point::new(0.0, 0.0),
///     Point::new(4.0, 0.0),
///     Point::new(4.0, 3.0),
///     Point::new(0.0, 3.0),
/// ])?;
/// assert_eq!(p.area(), 12.0);
/// assert!(p.contains(Point::new(2.0, 1.5)));
/// # Ok::<(), stem_spatial::InvalidPolygon>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    vertices: Vec<Point>,
}

impl Polygon {
    /// Creates a polygon from its vertices (either winding order accepted).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidPolygon`] if fewer than three vertices are given,
    /// any coordinate is non-finite, or the signed area is numerically
    /// zero (fully degenerate/collinear input).
    pub fn new(vertices: Vec<Point>) -> Result<Self, InvalidPolygon> {
        if vertices.len() < 3 {
            return Err(InvalidPolygon::TooFewVertices(vertices.len()));
        }
        for (i, v) in vertices.iter().enumerate() {
            if !v.is_finite() {
                return Err(InvalidPolygon::NonFiniteVertex(i));
            }
        }
        let signed = signed_area(&vertices);
        if signed.abs() < EPSILON {
            return Err(InvalidPolygon::ZeroArea);
        }
        let mut vertices = vertices;
        if signed < 0.0 {
            vertices.reverse();
        }
        Ok(Polygon { vertices })
    }

    /// Convenience: an axis-aligned rectangle as a polygon.
    #[must_use]
    pub fn from_rect(r: &Rect) -> Polygon {
        Polygon {
            vertices: r.corners().to_vec(),
        }
    }

    /// The vertices in counter-clockwise order.
    #[must_use]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of vertices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Always `false`: a constructed polygon has at least three vertices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The edges as vertex pairs, in order.
    pub fn edges(&self) -> impl Iterator<Item = (Point, Point)> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| (self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Area via the shoelace formula (always positive).
    #[must_use]
    pub fn area(&self) -> f64 {
        signed_area(&self.vertices).abs()
    }

    /// Perimeter length.
    #[must_use]
    pub fn perimeter(&self) -> f64 {
        self.edges().map(|(a, b)| a.distance(b)).sum()
    }

    /// The area centroid.
    #[must_use]
    pub fn centroid(&self) -> Point {
        let a = signed_area(&self.vertices);
        let mut cx = 0.0;
        let mut cy = 0.0;
        for (p, q) in self.edges() {
            let w = p.x * q.y - q.x * p.y;
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
        }
        Point::new(cx / (6.0 * a), cy / (6.0 * a))
    }

    /// The tight axis-aligned bounding box.
    #[must_use]
    pub fn bounding_box(&self) -> Rect {
        Rect::bounding(&self.vertices).expect("polygon has vertices")
    }

    /// Point containment (boundary counts as inside).
    ///
    /// Uses the even-odd ray-casting rule with an explicit boundary check
    /// so that points on edges or vertices classify as contained,
    /// consistent with the closed-region semantics used for intervals.
    #[must_use]
    pub fn contains(&self, p: Point) -> bool {
        if self.on_boundary(p) {
            return true;
        }
        let mut inside = false;
        for (a, b) in self.edges() {
            if (a.y > p.y) != (b.y > p.y) {
                let x_cross = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
                if p.x < x_cross {
                    inside = !inside;
                }
            }
        }
        inside
    }

    /// Returns `true` if `p` lies on the polygon boundary (within
    /// [`EPSILON`] of some edge).
    #[must_use]
    pub fn on_boundary(&self, p: Point) -> bool {
        self.edges()
            .any(|(a, b)| point_segment_distance(p, a, b) < EPSILON)
    }

    /// Euclidean distance from `p` to the polygon (zero if inside).
    #[must_use]
    pub fn distance_to_point(&self, p: Point) -> f64 {
        if self.contains(p) {
            return 0.0;
        }
        self.edges()
            .map(|(a, b)| point_segment_distance(p, a, b))
            .fold(f64::INFINITY, f64::min)
    }

    /// Returns `true` if any edge of `self` crosses any edge of `other`,
    /// or one polygon contains the other. Touching boundaries count.
    #[must_use]
    pub fn intersects(&self, other: &Polygon) -> bool {
        if !self.bounding_box().intersects(&other.bounding_box()) {
            return false;
        }
        for (a, b) in self.edges() {
            for (c, d) in other.edges() {
                if segments_intersect(a, b, c, d) {
                    return true;
                }
            }
        }
        // No edge crossings: one may contain the other entirely.
        self.contains(other.vertices[0]) || other.contains(self.vertices[0])
    }

    /// Returns `true` if every vertex of `other` is contained in `self`
    /// and no edges cross (i.e. `other ⊆ self` for simple polygons).
    #[must_use]
    pub fn contains_polygon(&self, other: &Polygon) -> bool {
        if !other.vertices.iter().all(|&v| self.contains(v)) {
            return false;
        }
        // Edges may still poke out through a concavity: check for proper
        // crossings (shared boundary points are allowed).
        for (a, b) in self.edges() {
            for (c, d) in other.edges() {
                if segments_cross_properly(a, b, c, d) {
                    return false;
                }
            }
        }
        true
    }

    /// The polygon translated by `(dx, dy)`.
    #[must_use]
    pub fn translated(&self, dx: f64, dy: f64) -> Polygon {
        Polygon {
            vertices: self
                .vertices
                .iter()
                .map(|p| Point::new(p.x + dx, p.y + dy))
                .collect(),
        }
    }

    /// The polygon scaled about its centroid by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite or non-positive.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Polygon {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive and finite"
        );
        let c = self.centroid();
        Polygon {
            vertices: self
                .vertices
                .iter()
                .map(|p| Point::new(c.x + (p.x - c.x) * factor, c.y + (p.y - c.y) * factor))
                .collect(),
        }
    }
}

impl fmt::Display for Polygon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "polygon[{} vertices, area={:.3}]",
            self.len(),
            self.area()
        )
    }
}

/// Signed area: positive for counter-clockwise winding.
fn signed_area(vertices: &[Point]) -> f64 {
    let n = vertices.len();
    let mut sum = 0.0;
    for i in 0..n {
        let p = vertices[i];
        let q = vertices[(i + 1) % n];
        sum += p.x * q.y - q.x * p.y;
    }
    sum / 2.0
}

/// Distance from point `p` to segment `ab`.
fn point_segment_distance(p: Point, a: Point, b: Point) -> f64 {
    let ab = a.vector_to(b);
    let ap = a.vector_to(p);
    let len2 = ab.dot(ab);
    if len2 < EPSILON * EPSILON {
        return a.distance(p);
    }
    let t = (ap.dot(ab) / len2).clamp(0.0, 1.0);
    a.lerp(b, t).distance(p)
}

/// Orientation of the triple (a, b, c): >0 CCW, <0 CW, 0 collinear.
fn orient(a: Point, b: Point, c: Point) -> f64 {
    a.vector_to(b).cross(a.vector_to(c))
}

/// Segment intersection including endpoints and collinear overlap.
fn segments_intersect(a: Point, b: Point, c: Point, d: Point) -> bool {
    let d1 = orient(c, d, a);
    let d2 = orient(c, d, b);
    let d3 = orient(a, b, c);
    let d4 = orient(a, b, d);
    if ((d1 > EPSILON && d2 < -EPSILON) || (d1 < -EPSILON && d2 > EPSILON))
        && ((d3 > EPSILON && d4 < -EPSILON) || (d3 < -EPSILON && d4 > EPSILON))
    {
        return true;
    }
    (d1.abs() <= EPSILON && on_segment(c, d, a))
        || (d2.abs() <= EPSILON && on_segment(c, d, b))
        || (d3.abs() <= EPSILON && on_segment(a, b, c))
        || (d4.abs() <= EPSILON && on_segment(a, b, d))
}

/// Proper crossing: interiors intersect (endpoint touching excluded).
fn segments_cross_properly(a: Point, b: Point, c: Point, d: Point) -> bool {
    let d1 = orient(c, d, a);
    let d2 = orient(c, d, b);
    let d3 = orient(a, b, c);
    let d4 = orient(a, b, d);
    ((d1 > EPSILON && d2 < -EPSILON) || (d1 < -EPSILON && d2 > EPSILON))
        && ((d3 > EPSILON && d4 < -EPSILON) || (d3 < -EPSILON && d4 > EPSILON))
}

/// Whether collinear point `p` lies within the bounding box of `ab`.
fn on_segment(a: Point, b: Point, p: Point) -> bool {
    p.x >= a.x.min(b.x) - EPSILON
        && p.x <= a.x.max(b.x) + EPSILON
        && p.y >= a.y.min(b.y) - EPSILON
        && p.y <= a.y.max(b.y) + EPSILON
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn square() -> Polygon {
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
        ])
        .unwrap()
    }

    fn l_shape() -> Polygon {
        // Concave L: a 4x4 square with the top-right 2x2 bite removed.
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 2.0),
            Point::new(2.0, 2.0),
            Point::new(2.0, 4.0),
            Point::new(0.0, 4.0),
        ])
        .unwrap()
    }

    #[test]
    fn construction_validation() {
        assert_eq!(
            Polygon::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]).unwrap_err(),
            InvalidPolygon::TooFewVertices(2)
        );
        assert_eq!(
            Polygon::new(vec![
                Point::new(0.0, 0.0),
                Point::new(f64::NAN, 0.0),
                Point::new(1.0, 1.0)
            ])
            .unwrap_err(),
            InvalidPolygon::NonFiniteVertex(1)
        );
        assert_eq!(
            Polygon::new(vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 1.0),
                Point::new(2.0, 2.0)
            ])
            .unwrap_err(),
            InvalidPolygon::ZeroArea
        );
    }

    #[test]
    fn clockwise_input_is_normalized_to_ccw() {
        let cw = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 4.0),
            Point::new(4.0, 4.0),
            Point::new(4.0, 0.0),
        ])
        .unwrap();
        assert!(signed_area(cw.vertices()) > 0.0);
        assert_eq!(cw.area(), 16.0);
    }

    #[test]
    fn area_perimeter_centroid_of_square() {
        let s = square();
        assert_eq!(s.area(), 16.0);
        assert_eq!(s.perimeter(), 16.0);
        assert!(s.centroid().approx_eq(Point::new(2.0, 2.0)));
    }

    #[test]
    fn l_shape_area_and_centroid() {
        let l = l_shape();
        assert!((l.area() - 12.0).abs() < EPSILON);
        // Centroid of the L: weighted mean of 4x2 bottom (c=(2,1), a=8)
        // and 2x2 top-left (c=(1,3), a=4) => ((2*8+1*4)/12, (1*8+3*4)/12).
        let c = l.centroid();
        assert!((c.x - 20.0 / 12.0).abs() < 1e-9);
        assert!((c.y - 20.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn containment_square() {
        let s = square();
        assert!(s.contains(Point::new(2.0, 2.0)));
        assert!(s.contains(Point::new(0.0, 0.0)), "vertex is inside");
        assert!(s.contains(Point::new(2.0, 0.0)), "edge is inside");
        assert!(!s.contains(Point::new(4.1, 2.0)));
        assert!(!s.contains(Point::new(-0.1, 2.0)));
    }

    #[test]
    fn containment_concave() {
        let l = l_shape();
        assert!(l.contains(Point::new(1.0, 3.0)), "inside the L's upright");
        assert!(
            !l.contains(Point::new(3.0, 3.0)),
            "inside the bite, outside the L"
        );
        assert!(l.contains(Point::new(3.0, 1.0)), "inside the L's base");
    }

    #[test]
    fn distance_to_point() {
        let s = square();
        assert_eq!(s.distance_to_point(Point::new(1.0, 1.0)), 0.0);
        assert_eq!(s.distance_to_point(Point::new(6.0, 2.0)), 2.0);
        assert!((s.distance_to_point(Point::new(7.0, 8.0)) - 5.0).abs() < EPSILON);
    }

    #[test]
    fn intersects_overlapping_and_disjoint() {
        let s = square();
        let t = square().translated(2.0, 2.0);
        assert!(s.intersects(&t));
        let far = square().translated(10.0, 0.0);
        assert!(!s.intersects(&far));
        // Touching edge counts (closed regions).
        let touching = square().translated(4.0, 0.0);
        assert!(s.intersects(&touching));
    }

    #[test]
    fn containment_of_nested_polygons() {
        let s = square();
        let inner = square().scaled(0.5);
        assert!(s.contains_polygon(&inner));
        assert!(!inner.contains_polygon(&s));
        assert!(s.intersects(&inner), "containment implies intersection");
        // A polygon contains itself (shared boundary allowed).
        assert!(s.contains_polygon(&s));
    }

    #[test]
    fn concave_containment_rejects_poking_edges() {
        let l = l_shape();
        // A bar whose endpoints are in the L but whose middle crosses the bite.
        let bar = Polygon::new(vec![
            Point::new(0.5, 2.5),
            Point::new(0.5, 1.2),
            Point::new(3.5, 1.2),
            Point::new(3.5, 1.8),
            Point::new(1.2, 1.8),
            Point::new(1.2, 2.5),
        ])
        .unwrap();
        assert!(l.contains_polygon(&bar));
    }

    #[test]
    fn from_rect_round_trips_area() {
        let r = Rect::new(Point::new(1.0, 1.0), Point::new(3.0, 5.0));
        let p = Polygon::from_rect(&r);
        assert_eq!(p.area(), r.area());
        assert!(p.contains(r.center()));
    }

    #[test]
    fn segment_intersection_cases() {
        // Crossing.
        assert!(segments_intersect(
            Point::new(0.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
            Point::new(2.0, 0.0)
        ));
        // Endpoint touching.
        assert!(segments_intersect(
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 0.0)
        ));
        // Collinear overlap.
        assert!(segments_intersect(
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(3.0, 0.0)
        ));
        // Parallel disjoint.
        assert!(!segments_intersect(
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(2.0, 1.0)
        ));
    }

    proptest! {
        /// The centroid of a convex polygon lies inside it.
        #[test]
        fn centroid_inside_rectangles(x in -10.0f64..10.0, y in -10.0f64..10.0, w in 0.5f64..10.0, h in 0.5f64..10.0) {
            let p = Polygon::from_rect(&Rect::new(Point::new(x, y), Point::new(x + w, y + h)));
            prop_assert!(p.contains(p.centroid()));
        }

        /// Translation preserves area and containment relationships.
        #[test]
        fn translation_invariance(dx in -20.0f64..20.0, dy in -20.0f64..20.0, px in 0.1f64..3.9, py in 0.1f64..3.9) {
            let s = square();
            let t = s.translated(dx, dy);
            prop_assert!((s.area() - t.area()).abs() < 1e-9);
            prop_assert_eq!(
                s.contains(Point::new(px, py)),
                t.contains(Point::new(px + dx, py + dy))
            );
        }

        /// Scaling scales area quadratically.
        #[test]
        fn scaling_area(factor in 0.1f64..5.0) {
            let s = square();
            let t = s.scaled(factor);
            prop_assert!((t.area() - s.area() * factor * factor).abs() < 1e-6);
        }
    }
}
