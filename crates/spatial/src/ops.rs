//! The paper's spatial operators `OP_S` (Eq. 4.4), evaluated over extents.

use crate::{relate_fields, SpatialExtent, TopoRelation};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A spatial operator `OP_S` from Eq. 4.4: "spatial operators such as
/// *Inside, Outside, Joint*", extended with the relations needed for the
/// full point/field classification of Sec. 4.2.
///
/// Every operator is defined uniformly over [`SpatialExtent`]s, covering
/// the three relation families (point–point, point–field, field–field).
///
/// # Example
///
/// ```
/// use stem_spatial::{Circle, Field, Point, SpatialExtent, SpatialOperator};
///
/// let user = SpatialExtent::point(Point::new(1.0, 0.0));
/// let area = SpatialExtent::field(Field::circle(Circle::new(Point::new(0.0, 0.0), 3.0)));
/// assert!(SpatialOperator::Inside.eval(&user, &area));
/// assert!(SpatialOperator::Contains.eval(&area, &user));
/// assert!(!SpatialOperator::Outside.eval(&user, &area));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpatialOperator {
    /// `a` lies entirely within `b`. Point–point: coincidence.
    Inside,
    /// `a` and `b` share no location.
    Outside,
    /// `a` and `b` share at least one location (the paper's *Joint*).
    Joint,
    /// `a` and `b` occupy the same location(s).
    Equal,
    /// `b` lies entirely within `a` (converse of [`SpatialOperator::Inside`]).
    Contains,
    /// Boundaries touch but interiors are disjoint (field–field only;
    /// false for combinations involving points, which have no interior
    /// to keep disjoint while touching — a coincident point is `Joint`).
    Meet,
}

/// All spatial operators, for exhaustive sweeps in tests and benchmarks.
pub const ALL_SPATIAL_OPERATORS: [SpatialOperator; 6] = [
    SpatialOperator::Inside,
    SpatialOperator::Outside,
    SpatialOperator::Joint,
    SpatialOperator::Equal,
    SpatialOperator::Contains,
    SpatialOperator::Meet,
];

impl SpatialOperator {
    /// Evaluates `a OP_S b`.
    #[must_use]
    pub fn eval(self, a: &SpatialExtent, b: &SpatialExtent) -> bool {
        match self {
            SpatialOperator::Inside => b.contains_extent(a),
            SpatialOperator::Outside => !a.intersects(b),
            SpatialOperator::Joint => a.intersects(b),
            SpatialOperator::Equal => match (a, b) {
                (SpatialExtent::Point(p), SpatialExtent::Point(q)) => p.approx_eq(*q),
                (SpatialExtent::Field(f), SpatialExtent::Field(g)) => {
                    f.approx_eq(g) || relate_fields(f, g) == TopoRelation::Equal
                }
                _ => false,
            },
            SpatialOperator::Contains => a.contains_extent(b),
            SpatialOperator::Meet => match (a, b) {
                (SpatialExtent::Field(f), SpatialExtent::Field(g)) => {
                    relate_fields(f, g) == TopoRelation::Meet
                }
                _ => false,
            },
        }
    }

    /// Parses the operator from its canonical lowercase name
    /// (`inside, outside, joint, equal, contains, meet`).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "inside" => SpatialOperator::Inside,
            "outside" => SpatialOperator::Outside,
            "joint" => SpatialOperator::Joint,
            "equal" => SpatialOperator::Equal,
            "contains" => SpatialOperator::Contains,
            "meet" => SpatialOperator::Meet,
            _ => return None,
        })
    }

    /// The canonical lowercase name (inverse of [`SpatialOperator::from_name`]).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SpatialOperator::Inside => "inside",
            SpatialOperator::Outside => "outside",
            SpatialOperator::Joint => "joint",
            SpatialOperator::Equal => "equal",
            SpatialOperator::Contains => "contains",
            SpatialOperator::Meet => "meet",
        }
    }
}

impl fmt::Display for SpatialOperator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Circle, Field, Point, Rect};
    use proptest::prelude::*;

    fn pt(x: f64, y: f64) -> SpatialExtent {
        SpatialExtent::point(Point::new(x, y))
    }

    fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> SpatialExtent {
        SpatialExtent::field(Field::rect(Rect::new(
            Point::new(x0, y0),
            Point::new(x1, y1),
        )))
    }

    #[test]
    fn inside_outside_joint_point_field() {
        let p = pt(1.0, 1.0);
        let f = rect(0.0, 0.0, 2.0, 2.0);
        assert!(SpatialOperator::Inside.eval(&p, &f));
        assert!(SpatialOperator::Joint.eval(&p, &f));
        assert!(!SpatialOperator::Outside.eval(&p, &f));
        let q = pt(5.0, 5.0);
        assert!(SpatialOperator::Outside.eval(&q, &f));
        assert!(!SpatialOperator::Inside.eval(&q, &f));
    }

    #[test]
    fn point_point_semantics() {
        let a = pt(1.0, 1.0);
        let b = pt(1.0, 1.0);
        let c = pt(2.0, 2.0);
        assert!(SpatialOperator::Equal.eval(&a, &b));
        assert!(
            SpatialOperator::Inside.eval(&a, &b),
            "coincident points are inside each other"
        );
        assert!(SpatialOperator::Outside.eval(&a, &c));
        assert!(!SpatialOperator::Meet.eval(&a, &b), "points cannot meet");
    }

    #[test]
    fn field_field_meet_and_equal() {
        let a = rect(0.0, 0.0, 1.0, 1.0);
        let b = rect(1.0, 0.0, 2.0, 1.0);
        assert!(SpatialOperator::Meet.eval(&a, &b));
        assert!(
            SpatialOperator::Joint.eval(&a, &b),
            "meeting fields are joint"
        );
        assert!(SpatialOperator::Equal.eval(&a, &a.clone()));
        assert!(!SpatialOperator::Equal.eval(&a, &b));
    }

    #[test]
    fn contains_is_converse_of_inside() {
        let small = SpatialExtent::field(Field::circle(Circle::new(Point::new(1.0, 1.0), 0.5)));
        let big = rect(0.0, 0.0, 4.0, 4.0);
        assert!(SpatialOperator::Inside.eval(&small, &big));
        assert!(SpatialOperator::Contains.eval(&big, &small));
        assert!(!SpatialOperator::Contains.eval(&small, &big));
    }

    #[test]
    fn a_point_never_contains_a_field() {
        let p = pt(1.0, 1.0);
        let f = rect(0.0, 0.0, 2.0, 2.0);
        assert!(!SpatialOperator::Contains.eval(&p, &f));
    }

    #[test]
    fn names_round_trip() {
        for op in ALL_SPATIAL_OPERATORS {
            assert_eq!(SpatialOperator::from_name(op.name()), Some(op));
        }
        assert_eq!(SpatialOperator::from_name("bogus"), None);
    }

    proptest! {
        /// Outside and Joint are complementary.
        #[test]
        fn outside_joint_complementary(
            px in -5.0f64..5.0, py in -5.0f64..5.0,
            fx in -5.0f64..5.0, fy in -5.0f64..5.0, fw in 0.5f64..4.0, fh in 0.5f64..4.0,
        ) {
            let p = pt(px, py);
            let f = rect(fx, fy, fx + fw, fy + fh);
            prop_assert_ne!(
                SpatialOperator::Outside.eval(&p, &f),
                SpatialOperator::Joint.eval(&p, &f)
            );
        }

        /// Inside implies Joint.
        #[test]
        fn inside_implies_joint(
            ax in -5.0f64..5.0, ay in -5.0f64..5.0, aw in 0.5f64..3.0, ah in 0.5f64..3.0,
            bx in -5.0f64..5.0, by in -5.0f64..5.0, bw in 0.5f64..3.0, bh in 0.5f64..3.0,
        ) {
            let a = rect(ax, ay, ax + aw, ay + ah);
            let b = rect(bx, by, bx + bw, by + bh);
            if SpatialOperator::Inside.eval(&a, &b) {
                prop_assert!(SpatialOperator::Joint.eval(&a, &b));
            }
        }
    }
}
