//! Circular fields.

use crate::{Point, Rect};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A circular field: centre plus radius.
///
/// Circles model sensing ranges, radio ranges, and "nearby" areas (the
/// paper's running example defines "a nearby window B area" — naturally a
/// disc around the window).
///
/// # Example
///
/// ```
/// use stem_spatial::{Circle, Point};
///
/// let c = Circle::new(Point::new(0.0, 0.0), 2.0);
/// assert!(c.contains(Point::new(1.0, 1.0)));
/// assert!(!c.contains(Point::new(2.0, 2.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Circle {
    center: Point,
    radius: f64,
}

impl Circle {
    /// Creates a circle with the given centre and radius.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or not finite.
    #[must_use]
    pub fn new(center: Point, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "circle radius must be finite and non-negative, got {radius}"
        );
        Circle { center, radius }
    }

    /// The centre point.
    #[must_use]
    pub const fn center(&self) -> Point {
        self.center
    }

    /// The radius.
    #[must_use]
    pub const fn radius(&self) -> f64 {
        self.radius
    }

    /// Area (`πr²`).
    #[must_use]
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }

    /// Returns `true` if `p` lies inside or on the boundary.
    #[must_use]
    pub fn contains(&self, p: Point) -> bool {
        self.center.distance_squared(p) <= self.radius * self.radius
    }

    /// Returns `true` if the circles share at least one point.
    #[must_use]
    pub fn intersects(&self, other: &Circle) -> bool {
        let d = self.center.distance(other.center);
        d <= self.radius + other.radius
    }

    /// Returns `true` if `other` lies entirely within `self` (non-strict).
    #[must_use]
    pub fn contains_circle(&self, other: &Circle) -> bool {
        let d = self.center.distance(other.center);
        d + other.radius <= self.radius + crate::EPSILON
    }

    /// Euclidean distance from `p` to the disc (zero if inside).
    #[must_use]
    pub fn distance_to_point(&self, p: Point) -> f64 {
        (self.center.distance(p) - self.radius).max(0.0)
    }

    /// The tight axis-aligned bounding box.
    #[must_use]
    pub fn bounding_box(&self) -> Rect {
        Rect::centered(self.center, self.radius, self.radius)
    }

    /// Approximates the circle as a regular polygon with `n` vertices
    /// (counter-clockwise). Used when mixed-shape boolean predicates need a
    /// polygonal stand-in.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    #[must_use]
    pub fn to_polygon(&self, n: usize) -> crate::Polygon {
        assert!(n >= 3, "polygon approximation needs at least 3 vertices");
        let verts: Vec<Point> = (0..n)
            .map(|i| {
                let theta = 2.0 * std::f64::consts::PI * (i as f64) / (n as f64);
                Point::new(
                    self.center.x + self.radius * theta.cos(),
                    self.center.y + self.radius * theta.sin(),
                )
            })
            .collect();
        crate::Polygon::new(verts).expect("regular polygon is always valid")
    }
}

impl fmt::Display for Circle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "circle[c={}, r={:.3}]", self.center, self.radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn contains_boundary_point() {
        let c = Circle::new(Point::new(0.0, 0.0), 5.0);
        assert!(c.contains(Point::new(5.0, 0.0)));
        assert!(c.contains(Point::new(0.0, -5.0)));
        assert!(!c.contains(Point::new(5.0, 0.1)));
    }

    #[test]
    #[should_panic(expected = "radius must be finite and non-negative")]
    fn rejects_negative_radius() {
        let _ = Circle::new(Point::new(0.0, 0.0), -1.0);
    }

    #[test]
    fn tangent_circles_intersect() {
        let a = Circle::new(Point::new(0.0, 0.0), 1.0);
        let b = Circle::new(Point::new(2.0, 0.0), 1.0);
        assert!(a.intersects(&b));
        let c = Circle::new(Point::new(2.1, 0.0), 1.0);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn containment_of_concentric_circles() {
        let big = Circle::new(Point::new(0.0, 0.0), 5.0);
        let small = Circle::new(Point::new(1.0, 0.0), 2.0);
        assert!(big.contains_circle(&small));
        assert!(!small.contains_circle(&big));
        // A circle contains itself.
        assert!(big.contains_circle(&big));
    }

    #[test]
    fn distance_to_point_outside_and_inside() {
        let c = Circle::new(Point::new(0.0, 0.0), 2.0);
        assert_eq!(c.distance_to_point(Point::new(0.0, 0.0)), 0.0);
        assert_eq!(c.distance_to_point(Point::new(5.0, 0.0)), 3.0);
    }

    #[test]
    fn bounding_box_is_tight() {
        let c = Circle::new(Point::new(1.0, 2.0), 3.0);
        let bb = c.bounding_box();
        assert_eq!(bb.min(), Point::new(-2.0, -1.0));
        assert_eq!(bb.max(), Point::new(4.0, 5.0));
    }

    #[test]
    fn polygon_approximation_area_converges() {
        let c = Circle::new(Point::new(0.0, 0.0), 1.0);
        let p64 = c.to_polygon(64);
        let err = (p64.area() - c.area()).abs() / c.area();
        assert!(err < 0.01, "relative area error {err} too large");
    }

    proptest! {
        /// Points produced on the boundary are contained; scaled-out points
        /// are not.
        #[test]
        fn boundary_classification(cx in -10.0f64..10.0, cy in -10.0f64..10.0, r in 0.1f64..5.0, theta in 0.0f64..std::f64::consts::TAU) {
            let c = Circle::new(Point::new(cx, cy), r);
            let on = Point::new(cx + r * theta.cos() * 0.999, cy + r * theta.sin() * 0.999);
            let out = Point::new(cx + r * theta.cos() * 1.01, cy + r * theta.sin() * 1.01);
            prop_assert!(c.contains(on));
            prop_assert!(!c.contains(out));
        }

        /// Circle intersection is symmetric.
        #[test]
        fn intersects_symmetric(ax in -5.0f64..5.0, ay in -5.0f64..5.0, ar in 0.1f64..3.0,
                                bx in -5.0f64..5.0, by in -5.0f64..5.0, br in 0.1f64..3.0) {
            let a = Circle::new(Point::new(ax, ay), ar);
            let b = Circle::new(Point::new(bx, by), br);
            prop_assert_eq!(a.intersects(&b), b.intersects(&a));
        }
    }
}
