//! Uniform grid index for neighbour queries.
//!
//! The WSN simulator issues millions of "which motes are within radio
//! range of `p`?" queries; a uniform grid gives O(1) expected lookups for
//! uniformly deployed nodes. See [`crate::QuadTree`] for the adaptive
//! alternative benchmarked against it.

use crate::{Point, Rect};
use std::collections::HashMap;

/// A uniform grid spatial index over items with point locations.
///
/// Items are bucketed by cell; radius and rectangle queries scan only the
/// overlapping cells. Items may lie outside the nominal bounds — their
/// cells are created on demand (the grid is a hash map, not an array).
///
/// # Example
///
/// ```
/// use stem_spatial::{GridIndex, Point, Rect};
///
/// let mut idx = GridIndex::new(10.0);
/// idx.insert(1u32, Point::new(0.0, 0.0));
/// idx.insert(2u32, Point::new(5.0, 5.0));
/// idx.insert(3u32, Point::new(50.0, 50.0));
/// let mut near = idx.query_radius(Point::new(1.0, 1.0), 10.0);
/// near.sort();
/// assert_eq!(near, vec![1, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex<T> {
    cell_size: f64,
    cells: HashMap<(i64, i64), Vec<(T, Point)>>,
    len: usize,
}

impl<T: Clone> GridIndex<T> {
    /// Creates an index with square cells of side `cell_size`.
    ///
    /// A good cell size is the typical query radius (e.g. the radio range).
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not finite and positive.
    #[must_use]
    pub fn new(cell_size: f64) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell size must be positive and finite, got {cell_size}"
        );
        GridIndex {
            cell_size,
            cells: HashMap::new(),
            len: 0,
        }
    }

    /// The configured cell size.
    #[must_use]
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Number of indexed items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no items are indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn cell_of(&self, p: Point) -> (i64, i64) {
        (
            (p.x / self.cell_size).floor() as i64,
            (p.y / self.cell_size).floor() as i64,
        )
    }

    /// Inserts an item at a location. Duplicate items are allowed; removal
    /// is by value+location via [`GridIndex::remove`].
    pub fn insert(&mut self, item: T, location: Point) {
        let cell = self.cell_of(location);
        self.cells.entry(cell).or_default().push((item, location));
        self.len += 1;
    }

    /// Returns all items within Euclidean distance `radius` of `center`
    /// (inclusive).
    #[must_use]
    pub fn query_radius(&self, center: Point, radius: f64) -> Vec<T> {
        let mut out = Vec::new();
        let r2 = radius * radius;
        let min = self.cell_of(Point::new(center.x - radius, center.y - radius));
        let max = self.cell_of(Point::new(center.x + radius, center.y + radius));
        for cx in min.0..=max.0 {
            for cy in min.1..=max.1 {
                if let Some(bucket) = self.cells.get(&(cx, cy)) {
                    for (item, loc) in bucket {
                        if center.distance_squared(*loc) <= r2 {
                            out.push(item.clone());
                        }
                    }
                }
            }
        }
        out
    }

    /// Returns all items whose location lies within `rect` (inclusive).
    #[must_use]
    pub fn query_rect(&self, rect: &Rect) -> Vec<T> {
        let mut out = Vec::new();
        let min = self.cell_of(rect.min());
        let max = self.cell_of(rect.max());
        for cx in min.0..=max.0 {
            for cy in min.1..=max.1 {
                if let Some(bucket) = self.cells.get(&(cx, cy)) {
                    for (item, loc) in bucket {
                        if rect.contains(*loc) {
                            out.push(item.clone());
                        }
                    }
                }
            }
        }
        out
    }

    /// Returns the nearest item to `p` (ties broken by scan order), or
    /// `None` if the index is empty.
    ///
    /// Searches expanding rings of cells and stops once the nearest
    /// candidate provably beats anything in un-scanned rings.
    #[must_use]
    pub fn nearest(&self, p: Point) -> Option<(T, f64)> {
        if self.is_empty() {
            return None;
        }
        let origin = self.cell_of(p);
        let mut best: Option<(T, f64)> = None;
        let mut ring: i64 = 0;
        // Upper bound on rings: enough to cover all populated cells.
        let max_ring = self
            .cells
            .keys()
            .map(|&(cx, cy)| (cx - origin.0).abs().max((cy - origin.1).abs()))
            .max()
            .unwrap_or(0);
        while ring <= max_ring {
            // Scan the ring at Chebyshev distance `ring`.
            for cx in (origin.0 - ring)..=(origin.0 + ring) {
                for cy in (origin.1 - ring)..=(origin.1 + ring) {
                    if (cx - origin.0).abs().max((cy - origin.1).abs()) != ring {
                        continue;
                    }
                    if let Some(bucket) = self.cells.get(&(cx, cy)) {
                        for (item, loc) in bucket {
                            let d = p.distance(*loc);
                            if best.as_ref().is_none_or(|(_, bd)| d < *bd) {
                                best = Some((item.clone(), d));
                            }
                        }
                    }
                }
            }
            // Anything in ring k+1 is at least k * cell_size away.
            if let Some((_, bd)) = &best {
                if *bd <= ring as f64 * self.cell_size {
                    break;
                }
            }
            ring += 1;
        }
        best
    }

    /// Removes one occurrence of `item` at `location`, returning `true` if
    /// it was found.
    pub fn remove(&mut self, item: &T, location: Point) -> bool
    where
        T: PartialEq,
    {
        let cell = self.cell_of(location);
        if let Some(bucket) = self.cells.get_mut(&cell) {
            if let Some(pos) = bucket
                .iter()
                .position(|(i, loc)| i == item && loc.approx_eq(location))
            {
                bucket.swap_remove(pos);
                self.len -= 1;
                return true;
            }
        }
        false
    }

    /// Iterates over all `(item, location)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&T, Point)> {
        self.cells
            .values()
            .flat_map(|bucket| bucket.iter().map(|(item, loc)| (item, *loc)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    #[should_panic(expected = "cell size must be positive")]
    fn rejects_zero_cell_size() {
        let _ = GridIndex::<u32>::new(0.0);
    }

    #[test]
    fn radius_query_includes_boundary() {
        let mut idx = GridIndex::new(1.0);
        idx.insert(1u32, Point::new(3.0, 0.0));
        assert_eq!(idx.query_radius(Point::new(0.0, 0.0), 3.0), vec![1]);
        assert!(idx.query_radius(Point::new(0.0, 0.0), 2.9).is_empty());
    }

    #[test]
    fn rect_query_filters_exactly() {
        let mut idx = GridIndex::new(2.0);
        idx.insert('a', Point::new(1.0, 1.0));
        idx.insert('b', Point::new(3.0, 3.0));
        idx.insert('c', Point::new(-1.0, -1.0));
        let r = Rect::new(Point::new(0.0, 0.0), Point::new(3.0, 3.0));
        let mut found = idx.query_rect(&r);
        found.sort();
        assert_eq!(found, vec!['a', 'b']);
    }

    #[test]
    fn nearest_finds_closest_across_rings() {
        let mut idx = GridIndex::new(1.0);
        idx.insert(1u32, Point::new(10.0, 0.0));
        idx.insert(2u32, Point::new(0.0, 3.0));
        idx.insert(3u32, Point::new(-8.0, -8.0));
        let (item, d) = idx.nearest(Point::new(0.0, 0.0)).unwrap();
        assert_eq!(item, 2);
        assert!((d - 3.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_on_empty_is_none() {
        let idx = GridIndex::<u32>::new(1.0);
        assert!(idx.nearest(Point::new(0.0, 0.0)).is_none());
    }

    #[test]
    fn remove_by_value_and_location() {
        let mut idx = GridIndex::new(1.0);
        idx.insert(7u32, Point::new(0.5, 0.5));
        idx.insert(7u32, Point::new(5.5, 5.5));
        assert_eq!(idx.len(), 2);
        assert!(idx.remove(&7, Point::new(0.5, 0.5)));
        assert_eq!(idx.len(), 1);
        assert!(!idx.remove(&7, Point::new(0.5, 0.5)), "already removed");
        assert_eq!(idx.query_radius(Point::new(5.5, 5.5), 0.1), vec![7]);
    }

    #[test]
    fn items_outside_initial_region_are_indexed() {
        let mut idx = GridIndex::new(1.0);
        idx.insert(1u32, Point::new(-1000.0, 2000.0));
        assert_eq!(idx.query_radius(Point::new(-1000.0, 2000.0), 0.5), vec![1]);
    }

    proptest! {
        /// Grid query equals brute force on random point sets.
        #[test]
        fn radius_query_matches_brute_force(
            raw in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 0..60),
            qx in -50.0f64..50.0, qy in -50.0f64..50.0, r in 0.0f64..40.0,
            cell in 0.5f64..20.0,
        ) {
            let mut idx = GridIndex::new(cell);
            for (i, &(x, y)) in raw.iter().enumerate() {
                idx.insert(i, Point::new(x, y));
            }
            let q = Point::new(qx, qy);
            let mut got = idx.query_radius(q, r);
            got.sort_unstable();
            let mut expected: Vec<usize> = raw
                .iter()
                .enumerate()
                .filter(|(_, &(x, y))| q.distance(Point::new(x, y)) <= r)
                .map(|(i, _)| i)
                .collect();
            expected.sort_unstable();
            prop_assert_eq!(got, expected);
        }

        /// Nearest matches brute force.
        #[test]
        fn nearest_matches_brute_force(
            raw in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..40),
            qx in -50.0f64..50.0, qy in -50.0f64..50.0,
            cell in 0.5f64..20.0,
        ) {
            let mut idx = GridIndex::new(cell);
            for (i, &(x, y)) in raw.iter().enumerate() {
                idx.insert(i, Point::new(x, y));
            }
            let q = Point::new(qx, qy);
            let (_, d) = idx.nearest(q).unwrap();
            let best = raw
                .iter()
                .map(|&(x, y)| q.distance(Point::new(x, y)))
                .fold(f64::INFINITY, f64::min);
            prop_assert!((d - best).abs() < 1e-9);
        }
    }
}
