//! # stem-snap — consistent checkpoints for bounded-time recovery
//!
//! The write-ahead log (`stem-wal`) makes every ingested operation
//! durable, but recovery by full-log replay grows without bound on a
//! long-running stream: rebuilding detector state takes time (and
//! disk) proportional to the whole history. This crate is the other
//! half of the durability story — periodic *snapshots* of each shard's
//! full evaluation state, cut at a consistent stream-clock epoch, so
//! recovery loads the newest valid snapshot and replays only the WAL
//! tail past its watermark, and compaction can retire log segments the
//! snapshots already cover. Together they turn the WAL from
//! "replayable history" into "bounded-time crash recovery + bounded
//! disk".
//!
//! ## On disk
//!
//! A snapshot directory (shared with the WAL) holds one file per shard
//! per checkpoint epoch:
//!
//! ```text
//! <dir>/snap-<shard>-<epoch>.snap
//! ```
//!
//! ```text
//! ┌───────────────┬───────────┬─────────────┬───────────────┐
//! │ magic 8 bytes │ crc32 u32 │ len u32     │ body (len B)  │
//! └───────────────┴───────────┴─────────────┴───────────────┘
//! ```
//!
//! The CRC covers the body. Files are written to a `.tmp` sibling,
//! fsynced, and renamed into place (then the directory is fsynced), so
//! a snapshot either exists completely or not at all under a crash;
//! a file torn by power loss fails its checksum and is skipped at
//! load, falling back to the previous epoch (or full-log replay).
//!
//! The body is versioned (`SNAPSHOT_VERSION`) and encoded with the
//! stable [`stem_core::codec`]: a header the engine interprets — the
//! epoch, the covered ingest-sequence prefix, the stream-clock
//! high-water mark, the active WAL segment (the compaction bound), and
//! per-subscription delivered counts — plus an opaque state section
//! the shard worker serializes through the
//! [`StateCodec`](stem_core::codec::StateCodec) seam.
//!
//! ## Retention and compaction
//!
//! [`prune_snapshots`] keeps the newest `retain` epochs per shard
//! (at least two) and returns the compaction bound: the *oldest
//! retained* snapshot's active segment. Retiring WAL segments below
//! that bound preserves the fallback chain — if the newest snapshot is
//! torn, the previous one plus the log tail behind it still
//! reconstructs the shard bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use stem_core::codec::{
    decode_opt_time_point, encode_opt_time_point, get_u16, get_u32, get_u64, put_u16, put_u32,
    put_u64, CodecError,
};
use stem_temporal::TimePoint;

/// Magic bytes opening every snapshot file (name + container version).
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"STEMSNP1";

/// Version of the snapshot body layout. Growing the format means a new
/// version (readers reject unknown ones), never reinterpreting bytes.
/// Version 2 stores shard state per shared detector plan — detector
/// state once, then `(subscriber, delivered)` rows — instead of one
/// record per subscription; version-1 snapshots are rejected and the
/// engine falls back to full-WAL replay.
pub const SNAPSHOT_VERSION: u16 = 2;

/// Everything that can go wrong writing or reading a snapshot.
#[derive(Debug)]
pub enum SnapError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// The file is too short or does not start with [`SNAPSHOT_MAGIC`]
    /// — a torn write or not a snapshot at all.
    BadMagic {
        /// The offending file.
        path: PathBuf,
    },
    /// The body failed its checksum (torn or corrupt).
    BadChecksum {
        /// The offending file.
        path: PathBuf,
    },
    /// The body was written by an unknown format version.
    BadVersion(u16),
    /// An intact (checksummed) body failed to decode.
    BadBody(CodecError),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapError::BadMagic { path } => {
                write!(f, "not a stem-snap snapshot: {}", path.display())
            }
            SnapError::BadChecksum { path } => {
                write!(f, "snapshot failed its checksum: {}", path.display())
            }
            SnapError::BadVersion(v) => write!(f, "unknown snapshot version {v}"),
            SnapError::BadBody(e) => write!(f, "snapshot body failed to decode: {e}"),
        }
    }
}

impl std::error::Error for SnapError {}

impl From<io::Error> for SnapError {
    fn from(e: io::Error) -> Self {
        SnapError::Io(e)
    }
}

impl From<CodecError> for SnapError {
    fn from(e: CodecError) -> Self {
        SnapError::BadBody(e)
    }
}

/// One shard's full evaluation state at a consistent checkpoint epoch.
///
/// The header fields are what the engine's recovery planner interprets;
/// `state` is opaque here — the shard worker serializes its reorder
/// buffer and per-subscription detector state into it over the
/// [`StateCodec`](stem_core::codec::StateCodec) seam and restores from
/// it after re-registration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// The shard this snapshot belongs to.
    pub shard: usize,
    /// The checkpoint epoch (monotone per engine run sequence; higher
    /// epochs are newer).
    pub epoch: u64,
    /// The engine's next global ingest sequence at the barrier: every
    /// operation with `seq < next_seq` that was routed to this shard is
    /// folded into `state`. Recovery replays only WAL records at or
    /// past it.
    pub next_seq: u64,
    /// The router's global stream-clock high-water mark at the barrier
    /// (seeds the recovered router so re-fed operations get their
    /// original prefix stamps).
    pub high_water: Option<TimePoint>,
    /// The WAL segment open on this shard when the snapshot was cut:
    /// segments strictly below are wholly covered by `state` — the
    /// compaction bound.
    pub active_segment: u64,
    /// Per-subscription notification counts folded into the snapshot
    /// (`(raw subscription id, delivered)`): what a resumed run will
    /// *not* re-deliver, surfaced so drivers and tests can line the
    /// resumed delivery stream up against an uninterrupted run.
    pub subs_delivered: Vec<(u64, u64)>,
    /// The opaque shard evaluation state section.
    pub state: Vec<u8>,
}

impl ShardSnapshot {
    fn encode_body(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.state.len() + 64);
        put_u16(&mut buf, SNAPSHOT_VERSION);
        put_u64(&mut buf, self.shard as u64);
        put_u64(&mut buf, self.epoch);
        put_u64(&mut buf, self.next_seq);
        encode_opt_time_point(self.high_water, &mut buf);
        put_u64(&mut buf, self.active_segment);
        put_u32(
            &mut buf,
            u32::try_from(self.subs_delivered.len()).unwrap_or(u32::MAX),
        );
        for (id, delivered) in &self.subs_delivered {
            put_u64(&mut buf, *id);
            put_u64(&mut buf, *delivered);
        }
        put_u32(
            &mut buf,
            u32::try_from(self.state.len()).unwrap_or(u32::MAX),
        );
        buf.extend_from_slice(&self.state);
        buf
    }

    fn decode_body(mut bytes: &[u8]) -> Result<ShardSnapshot, SnapError> {
        let bytes = &mut bytes;
        let version = get_u16(bytes)?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapError::BadVersion(version));
        }
        let shard = get_u64(bytes)? as usize;
        let epoch = get_u64(bytes)?;
        let next_seq = get_u64(bytes)?;
        let high_water = decode_opt_time_point(bytes)?;
        let active_segment = get_u64(bytes)?;
        let n_subs = get_u32(bytes)? as usize;
        let mut subs_delivered = Vec::with_capacity(n_subs.min(4096));
        for _ in 0..n_subs {
            let id = get_u64(bytes)?;
            let delivered = get_u64(bytes)?;
            subs_delivered.push((id, delivered));
        }
        let state_len = get_u32(bytes)? as usize;
        if bytes.len() != state_len {
            return Err(SnapError::BadBody(CodecError::Truncated));
        }
        Ok(ShardSnapshot {
            shard,
            epoch,
            next_seq,
            high_water,
            active_segment,
            subs_delivered,
            state: bytes.to_vec(),
        })
    }
}

/// Formats the snapshot file name for `(shard, epoch)`.
#[must_use]
pub fn snapshot_file_name(shard: usize, epoch: u64) -> String {
    format!("snap-{shard:03}-{epoch:06}.snap")
}

/// Parses `(shard, epoch)` back out of a snapshot file name.
#[must_use]
pub fn parse_snapshot_file_name(name: &str) -> Option<(usize, u64)> {
    let rest = name.strip_prefix("snap-")?.strip_suffix(".snap")?;
    let (shard, epoch) = rest.split_once('-')?;
    Some((shard.parse().ok()?, epoch.parse().ok()?))
}

use stem_core::codec::crc32;

/// Writes `snapshot` atomically under `dir` (creating the directory):
/// encode, write to a `.tmp` sibling, fsync, rename into place, fsync
/// the directory. Returns the file size in bytes.
///
/// # Errors
///
/// Returns [`SnapError::Io`] on any filesystem failure; the engine
/// treats that as fatal for the shard (a checkpoint was requested and
/// cannot be provided).
pub fn write_snapshot(dir: &Path, snapshot: &ShardSnapshot) -> Result<u64, SnapError> {
    std::fs::create_dir_all(dir)?;
    let body = snapshot.encode_body();
    let mut file_bytes = Vec::with_capacity(body.len() + 16);
    file_bytes.extend_from_slice(SNAPSHOT_MAGIC);
    file_bytes.extend_from_slice(&crc32(&body).to_le_bytes());
    file_bytes.extend_from_slice(
        &u32::try_from(body.len())
            .expect("snapshot < 4 GiB")
            .to_le_bytes(),
    );
    file_bytes.extend_from_slice(&body);

    let final_path = dir.join(snapshot_file_name(snapshot.shard, snapshot.epoch));
    let tmp_path = final_path.with_extension("snap.tmp");
    {
        let mut tmp = std::fs::File::create(&tmp_path)?;
        tmp.write_all(&file_bytes)?;
        tmp.sync_data()?;
    }
    std::fs::rename(&tmp_path, &final_path)?;
    // Make the rename itself durable: fsync the directory.
    std::fs::File::open(dir)?.sync_all()?;
    Ok(file_bytes.len() as u64)
}

/// Reads and validates one snapshot file.
///
/// # Errors
///
/// Returns [`SnapError::BadMagic`] / [`SnapError::BadChecksum`] for
/// torn or corrupt files (recovery falls back on those),
/// [`SnapError::BadVersion`] / [`SnapError::BadBody`] for format
/// mismatches, and [`SnapError::Io`] on filesystem failures.
pub fn read_snapshot(path: &Path) -> Result<ShardSnapshot, SnapError> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < 16 || &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(SnapError::BadMagic {
            path: path.to_path_buf(),
        });
    }
    let crc = u32::from_le_bytes(bytes[8..12].try_into().expect("4"));
    let len = u32::from_le_bytes(bytes[12..16].try_into().expect("4")) as usize;
    let body = &bytes[16..];
    if body.len() != len || crc32(body) != crc {
        return Err(SnapError::BadChecksum {
            path: path.to_path_buf(),
        });
    }
    ShardSnapshot::decode_body(body)
}

/// Lists `(epoch, path)` for every snapshot file of `shard` under
/// `dir`, ascending by epoch. An absent directory is an empty list.
///
/// # Errors
///
/// Returns [`SnapError::Io`] if the directory exists but cannot be
/// read.
pub fn list_snapshots(dir: &Path, shard: usize) -> Result<Vec<(u64, PathBuf)>, SnapError> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e.into()),
    };
    for entry in entries {
        let entry = entry?;
        if let Some((s, epoch)) = entry
            .file_name()
            .to_str()
            .and_then(parse_snapshot_file_name)
        {
            if s == shard {
                out.push((epoch, entry.path()));
            }
        }
    }
    out.sort_unstable_by_key(|(epoch, _)| *epoch);
    Ok(out)
}

/// The largest epoch any shard has a snapshot file for under `dir`
/// (valid or not — a recovered engine continues numbering past torn
/// files rather than reusing their names). `None` for no snapshots.
///
/// # Errors
///
/// Returns [`SnapError::Io`] if the directory exists but cannot be
/// read.
pub fn max_epoch(dir: &Path) -> Result<Option<u64>, SnapError> {
    let mut max = None;
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    for entry in entries {
        let entry = entry?;
        if let Some((_, epoch)) = entry
            .file_name()
            .to_str()
            .and_then(parse_snapshot_file_name)
        {
            max = Some(max.map_or(epoch, |m: u64| m.max(epoch)));
        }
    }
    Ok(max)
}

/// What [`load_latest`] found for one shard.
#[derive(Debug)]
pub struct LoadedSnapshot {
    /// The newest snapshot that validated, if any.
    pub snapshot: Option<ShardSnapshot>,
    /// Snapshot files skipped because they were torn, corrupt, or
    /// unreadable (newest-first fallback: each rejection degrades to
    /// the previous epoch, ultimately to full-log replay).
    pub rejected: u64,
}

/// Loads the newest valid snapshot for `shard`, trying epochs from
/// newest to oldest and skipping torn/corrupt files. A shard with no
/// valid snapshot recovers by full-log replay.
///
/// # Errors
///
/// Returns [`SnapError::Io`] only for directory-level failures;
/// per-file problems are counted as rejections, not errors.
pub fn load_latest(dir: &Path, shard: usize) -> Result<LoadedSnapshot, SnapError> {
    let mut rejected = 0;
    for (_, path) in list_snapshots(dir, shard)?.into_iter().rev() {
        match read_snapshot(&path) {
            Ok(snapshot) => {
                return Ok(LoadedSnapshot {
                    snapshot: Some(snapshot),
                    rejected,
                })
            }
            Err(_) => rejected += 1,
        }
    }
    Ok(LoadedSnapshot {
        snapshot: None,
        rejected,
    })
}

/// Deletes all but the newest `retain` snapshot files for `shard`
/// (minimum two — see below) plus any orphaned `.tmp` files, and
/// returns the WAL compaction bound: the *oldest retained* snapshot's
/// `active_segment`, provided every retained file validates. `None`
/// means "do not compact this round" (fewer than `retain` snapshots on
/// disk, or a retained file failed validation — compaction waits
/// rather than risking the fallback chain).
///
/// `retain >= 2` is the compaction invariant: a segment is retired
/// only once *two* durable snapshots cover it, so a newest snapshot
/// torn by the next crash still leaves the previous snapshot plus an
/// intact log tail behind it.
///
/// # Errors
///
/// Returns [`SnapError::Io`] if the directory cannot be scanned or a
/// file cannot be removed.
///
/// # Panics
///
/// Panics if `retain < 2`.
pub fn prune_snapshots(dir: &Path, shard: usize, retain: usize) -> Result<Option<u64>, SnapError> {
    assert!(
        retain >= 2,
        "compaction safety requires retaining >= 2 snapshots"
    );
    // Clean orphaned tmp files (a crash mid-write leaves one behind).
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with(&format!("snap-{shard:03}-")) && name.ends_with(".snap.tmp") {
                std::fs::remove_file(entry.path())?;
            }
        }
    }
    let chain = list_snapshots(dir, shard)?;
    if chain.len() < retain {
        return Ok(None);
    }
    let (old, retained) = chain.split_at(chain.len() - retain);
    for (_, path) in old {
        std::fs::remove_file(path)?;
    }
    let mut bound = u64::MAX;
    for (_, path) in retained {
        match read_snapshot(path) {
            Ok(snapshot) => bound = bound.min(snapshot.active_segment),
            // A retained file that does not validate poisons the
            // bound: compaction waits until the chain is healthy.
            Err(_) => return Ok(None),
        }
    }
    Ok(Some(bound))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("stem-snap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn mk(shard: usize, epoch: u64) -> ShardSnapshot {
        ShardSnapshot {
            shard,
            epoch,
            next_seq: 40 + epoch,
            high_water: Some(TimePoint::new(1000 + epoch)),
            active_segment: epoch * 2,
            subs_delivered: vec![(0, 7 + epoch), (1, 2)],
            state: (0..50u8).map(|b| b.wrapping_mul(epoch as u8 + 1)).collect(),
        }
    }

    #[test]
    fn file_names_round_trip() {
        let name = snapshot_file_name(4, 17);
        assert_eq!(parse_snapshot_file_name(&name), Some((4, 17)));
        assert_eq!(parse_snapshot_file_name("wal-000-000001.log"), None);
        assert_eq!(parse_snapshot_file_name("snap-x-1.snap"), None);
    }

    #[test]
    fn snapshot_round_trips_through_disk() {
        let dir = temp_dir("roundtrip");
        let snap = mk(2, 5);
        let bytes = write_snapshot(&dir, &snap).unwrap();
        assert!(bytes > 0);
        let path = dir.join(snapshot_file_name(2, 5));
        let back = read_snapshot(&path).unwrap();
        assert_eq!(back, snap);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_and_corrupt_files_are_rejected_not_decoded() {
        let dir = temp_dir("torn");
        let snap = mk(0, 1);
        write_snapshot(&dir, &snap).unwrap();
        let path = dir.join(snapshot_file_name(0, 1));
        let full = std::fs::read(&path).unwrap();
        // Every strict prefix fails (torn write).
        for cut in [0, 4, 15, full.len() - 1] {
            std::fs::write(&path, &full[..cut]).unwrap();
            assert!(read_snapshot(&path).is_err(), "cut at {cut} must fail");
        }
        // A flipped body byte fails the checksum.
        let mut corrupt = full.clone();
        *corrupt.last_mut().unwrap() ^= 0x01;
        std::fs::write(&path, &corrupt).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(SnapError::BadChecksum { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_latest_falls_back_past_torn_epochs() {
        let dir = temp_dir("fallback");
        write_snapshot(&dir, &mk(0, 1)).unwrap();
        write_snapshot(&dir, &mk(0, 2)).unwrap();
        write_snapshot(&dir, &mk(0, 3)).unwrap();
        // Tear the newest.
        let newest = dir.join(snapshot_file_name(0, 3));
        let len = std::fs::metadata(&newest).unwrap().len();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&newest)
            .unwrap()
            .set_len(len - 9)
            .unwrap();
        let loaded = load_latest(&dir, 0).unwrap();
        assert_eq!(loaded.rejected, 1);
        assert_eq!(loaded.snapshot.unwrap().epoch, 2, "fell back one epoch");
        // All torn: full-replay fallback.
        for epoch in [1, 2] {
            let path = dir.join(snapshot_file_name(0, epoch));
            std::fs::write(&path, b"garbage").unwrap();
        }
        let loaded = load_latest(&dir, 0).unwrap();
        assert!(loaded.snapshot.is_none());
        assert_eq!(loaded.rejected, 3);
        // A missing directory is an empty (not failed) load.
        let _ = std::fs::remove_dir_all(&dir);
        assert!(load_latest(&dir, 0).unwrap().snapshot.is_none());
    }

    #[test]
    fn prune_retains_newest_and_returns_oldest_retained_bound() {
        let dir = temp_dir("prune");
        for epoch in 1..=4 {
            write_snapshot(&dir, &mk(0, epoch)).unwrap();
        }
        // A different shard's files must be untouched.
        write_snapshot(&dir, &mk(1, 1)).unwrap();
        // An orphaned tmp file from a crashed write is cleaned up.
        std::fs::write(dir.join("snap-000-000099.snap.tmp"), b"partial").unwrap();

        let bound = prune_snapshots(&dir, 0, 2).unwrap();
        // Epochs 3 and 4 retained; oldest retained (3) has segment 6.
        assert_eq!(bound, Some(6));
        let left = list_snapshots(&dir, 0).unwrap();
        assert_eq!(left.iter().map(|(e, _)| *e).collect::<Vec<_>>(), vec![3, 4]);
        assert_eq!(list_snapshots(&dir, 1).unwrap().len(), 1);
        assert!(!dir.join("snap-000-000099.snap.tmp").exists());
        assert_eq!(max_epoch(&dir).unwrap(), Some(4));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_withholds_the_bound_until_the_chain_is_healthy() {
        let dir = temp_dir("withhold");
        // Only one snapshot: under the 2-snapshot invariant, no bound.
        write_snapshot(&dir, &mk(0, 1)).unwrap();
        assert_eq!(prune_snapshots(&dir, 0, 2).unwrap(), None);
        // Two snapshots but the older is corrupt: no bound either.
        write_snapshot(&dir, &mk(0, 2)).unwrap();
        std::fs::write(dir.join(snapshot_file_name(0, 1)), b"garbage").unwrap();
        assert_eq!(prune_snapshots(&dir, 0, 2).unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "retaining >= 2")]
    fn prune_rejects_unsafe_retention() {
        let _ = prune_snapshots(Path::new("/tmp/nowhere"), 0, 1);
    }
}
