//! Behavioural tests for the streaming engine: plain, pattern, and
//! sustained subscriptions, both execution modes, reordering, and
//! lifecycle edges.

use stem_cep::{ConsumptionMode, Pattern, SustainedConfig, SustainedEvent};
use stem_core::{dsl, Attributes, EventId, EventInstance, Layer, MoteId, ObserverId, SeqNo};
use stem_engine::{
    BackpressurePolicy, Collector, Engine, EngineConfig, NotificationKind, Subscription,
};
use stem_spatial::{Circle, Field, Point, Rect, SpatialExtent};
use stem_temporal::{Duration, TimePoint};

fn bounds() -> Rect {
    Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
}

fn circle_region(x: f64, y: f64, r: f64) -> SpatialExtent {
    SpatialExtent::field(Field::circle(Circle::new(Point::new(x, y), r)))
}

fn mk(event: &str, seq: u64, t: u64, x: f64, y: f64, temp: f64) -> EventInstance {
    EventInstance::builder(
        ObserverId::Mote(MoteId::new(1)),
        EventId::new(event),
        Layer::Sensor,
    )
    .seq(SeqNo::new(seq))
    .generated(TimePoint::new(t), Point::new(x, y))
    .attributes(Attributes::new().with("temp", temp))
    .build()
}

#[test]
fn plain_subscription_filters_by_region_event_and_condition() {
    for threaded in [false, true] {
        let mut config = EngineConfig::new(bounds())
            .with_shards(2)
            .with_batch_size(3);
        if !threaded {
            config = config.deterministic();
        }
        let mut engine = Engine::start(config);
        let collector = Collector::new();
        engine.subscribe(
            Subscription::new("hot", circle_region(25.0, 25.0, 15.0), collector.sink())
                .for_event("reading")
                .when(dsl::parse("x.temp > 40").unwrap()),
        );
        engine.ingest(mk("reading", 0, 10, 25.0, 25.0, 50.0)); // match
        engine.ingest(mk("reading", 1, 20, 25.0, 25.0, 30.0)); // too cool
        engine.ingest(mk("reading", 2, 30, 80.0, 80.0, 99.0)); // out of region
        engine.ingest(mk("pressure", 3, 40, 25.0, 25.0, 99.0)); // wrong event
        engine.ingest(mk("reading", 4, 50, 30.0, 25.0, 41.0)); // match
        let report = engine.finish();
        let matches = collector.take();
        assert_eq!(matches.len(), 2, "threaded={threaded}");
        assert!(matches.iter().all(|n| matches!(
            &n.kind,
            NotificationKind::Match(i) if i.event().as_str() == "reading"
        )));
        assert_eq!(report.router.routed, 5);
        assert_eq!(report.total_notifications(), 2);
    }
}

#[test]
fn pattern_subscription_generates_derived_instances() {
    let mut engine = Engine::start(
        EngineConfig::new(bounds())
            .with_shards(4)
            .with_batch_size(1)
            .deterministic(),
    );
    let collector = Collector::new();
    engine.subscribe(
        Subscription::new(
            "hot-pair",
            circle_region(30.0, 30.0, 25.0),
            collector.sink(),
        )
        .when(dsl::parse("dist(loc(a), loc(b)) < 10").unwrap())
        .matching(
            Pattern::atom("a", "hot").then(Pattern::atom("b", "hot")),
            ConsumptionMode::Chronicle,
            Some(Duration::new(100)),
        ),
    );
    engine.ingest(mk("hot", 0, 10, 28.0, 30.0, 50.0));
    engine.ingest(mk("hot", 1, 20, 33.0, 30.0, 55.0)); // pairs with the first, 5 m apart
    engine.ingest(mk("hot", 2, 30, 50.0, 48.0, 60.0)); // in region but ~24 m away: pattern pairs it, condition rejects
    let report = engine.finish();
    let out = collector.take();
    assert_eq!(out.len(), 1, "one derived instance");
    match &out[0].kind {
        NotificationKind::Derived(inst) => {
            assert_eq!(inst.event().as_str(), "hot-pair");
            assert_eq!(inst.layer(), Layer::Cyber);
        }
        other => panic!("expected Derived, got {other:?}"),
    }
    assert_eq!(report.shards.iter().map(|s| s.derived).sum::<u64>(), 1);
}

#[test]
fn sustained_subscription_reports_episodes() {
    let mut engine = Engine::start(
        EngineConfig::new(bounds())
            .with_batch_size(1)
            .deterministic(),
    );
    let collector = Collector::new();
    engine.subscribe(
        Subscription::new(
            "occupied",
            circle_region(50.0, 50.0, 40.0),
            collector.sink(),
        )
        .sustained(
            SustainedConfig {
                min_duration: Duration::new(15),
                enter_threshold: 45.0,
                exit_threshold: 40.0,
            },
            Some("temp".to_string()),
        ),
    );
    // Rises above 45 at t=10, stays hot past the 15-tick minimum (last
    // observed true at t=30), falls below 40 at t=50.
    for (t, temp) in [(0, 20.0), (10, 50.0), (20, 48.0), (30, 47.0), (50, 30.0)] {
        engine.ingest(mk("reading", t, t, 50.0, 50.0, temp));
    }
    let _ = engine.finish();
    let out = collector.take();
    assert_eq!(out.len(), 2, "began + ended");
    assert!(matches!(
        out[0].kind,
        NotificationKind::Sustained(SustainedEvent::Began { since, .. })
            if since == TimePoint::new(10)
    ));
    assert!(matches!(
        out[1].kind,
        NotificationKind::Sustained(SustainedEvent::Ended { interval })
            if interval.start() == TimePoint::new(10) && interval.end() == TimePoint::new(30)
    ));
}

#[test]
fn out_of_order_instances_are_reordered_within_slack() {
    let mut engine = Engine::start(
        EngineConfig::new(bounds())
            .with_batch_size(1)
            .with_watermark_slack(Duration::new(20))
            .deterministic(),
    );
    let collector = Collector::new();
    engine.subscribe(Subscription::new(
        "all",
        circle_region(50.0, 50.0, 60.0),
        collector.sink(),
    ));
    // Arrivals disordered by < slack.
    for t in [10u64, 30, 20, 40, 35, 60, 50] {
        engine.ingest(mk("reading", t, t, 50.0, 50.0, 25.0));
    }
    let report = engine.finish();
    let times: Vec<u64> = collector
        .take()
        .iter()
        .map(|n| match &n.kind {
            NotificationKind::Match(i) => i.generation_time().ticks(),
            other => panic!("unexpected {other:?}"),
        })
        .collect();
    assert_eq!(times, vec![10, 20, 30, 35, 40, 50, 60]);
    assert_eq!(report.total_late_dropped(), 0);
}

#[test]
fn late_instances_are_dropped_and_counted() {
    let mut engine = Engine::start(
        EngineConfig::new(bounds())
            .with_batch_size(1)
            .deterministic(),
    );
    let collector = Collector::new();
    engine.subscribe(Subscription::new(
        "all",
        circle_region(50.0, 50.0, 60.0),
        collector.sink(),
    ));
    engine.ingest(mk("reading", 0, 100, 50.0, 50.0, 25.0));
    engine.ingest(mk("reading", 1, 10, 50.0, 50.0, 25.0)); // 90 ticks late, slack 0
    let report = engine.finish();
    assert_eq!(collector.take().len(), 1);
    assert_eq!(report.total_late_dropped(), 1);
}

#[test]
fn unsubscribe_stops_deliveries() {
    let mut engine = Engine::start(
        EngineConfig::new(bounds())
            .with_batch_size(1)
            .deterministic(),
    );
    let collector = Collector::new();
    let id = engine.subscribe(Subscription::new(
        "all",
        circle_region(50.0, 50.0, 60.0),
        collector.sink(),
    ));
    engine.ingest(mk("reading", 0, 10, 50.0, 50.0, 25.0));
    assert!(engine.unsubscribe(id));
    assert!(!engine.unsubscribe(id), "second unsubscribe is a no-op");
    engine.ingest(mk("reading", 1, 20, 50.0, 50.0, 25.0));
    let _ = engine.finish();
    assert_eq!(
        collector.take().len(),
        1,
        "only the pre-unsubscribe instance"
    );
}

#[test]
fn broadcast_reaches_subscription_homed_on_another_shard() {
    // A subscription whose region center lives on one shard must still
    // see instances whose locations other shards own.
    let mut engine = Engine::start(
        EngineConfig::new(bounds())
            .with_shards(4)
            .with_batch_size(1)
            .deterministic(),
    );
    let collector = Collector::new();
    // Region spanning the whole world: homed on one shard, overlapping
    // all four.
    engine.subscribe(Subscription::new(
        "world",
        SpatialExtent::field(Field::rect(bounds())),
        collector.sink(),
    ));
    // One instance in each quadrant.
    for (i, (x, y)) in [(20.0, 20.0), (80.0, 20.0), (20.0, 80.0), (80.0, 80.0)]
        .into_iter()
        .enumerate()
    {
        engine.ingest(mk("reading", i as u64, 10 * (i as u64 + 1), x, y, 25.0));
    }
    let report = engine.finish();
    assert_eq!(collector.take().len(), 4, "every quadrant's instance seen");
    assert!(
        report.router.fanout >= report.router.routed,
        "broadcast fans out"
    );
}

#[test]
fn threaded_backpressure_block_is_lossless() {
    let mut engine = Engine::start(
        EngineConfig::new(bounds())
            .with_shards(2)
            .with_batch_size(4)
            .with_queue_capacity(1)
            .with_backpressure(BackpressurePolicy::Block),
    );
    let collector = Collector::new();
    engine.subscribe(Subscription::new(
        "all",
        SpatialExtent::field(Field::rect(bounds())),
        collector.sink(),
    ));
    let n = 10_000u64;
    for i in 0..n {
        let x = (i % 100) as f64;
        let y = ((i / 100) % 100) as f64;
        engine.ingest(mk("reading", i, i, x, y, 25.0));
    }
    let report = engine.finish();
    assert_eq!(collector.take().len() as u64, n, "no instance lost");
    assert_eq!(report.router.dropped_backpressure, 0);
    assert_eq!(report.total_late_dropped(), 0);
}

#[test]
fn metrics_account_for_the_stream() {
    let mut engine = Engine::start(
        EngineConfig::new(bounds())
            .with_shards(2)
            .with_batch_size(5)
            .deterministic(),
    );
    let collector = Collector::new();
    engine.subscribe(
        Subscription::new("hot", circle_region(25.0, 25.0, 20.0), collector.sink())
            .when(dsl::parse("x.temp > 40").unwrap()),
    );
    for i in 0..20u64 {
        engine.ingest(mk(
            "reading",
            i,
            i,
            25.0,
            25.0,
            if i % 2 == 0 { 50.0 } else { 30.0 },
        ));
    }
    let report = engine.finish();
    assert_eq!(report.router.routed, 20);
    assert_eq!(report.total_released(), 20);
    assert_eq!(report.total_notifications(), 10);
    assert_eq!(report.shards.len(), 2);
    let evaluated: u64 = report.shards.iter().map(|s| s.evaluated).sum();
    assert_eq!(evaluated, 20, "every in-region instance evaluated once");
}

#[test]
fn ingest_at_runs_the_evaluation_clock() {
    // A pattern subscription fed via ingest_at stamps derived instances
    // with the station clock (arrival + processing), not the completing
    // constituent's generation time.
    let mut engine = Engine::start(
        EngineConfig::new(bounds())
            .with_batch_size(1)
            .deterministic(),
    );
    let collector = Collector::new();
    engine.subscribe(
        Subscription::new("pair", circle_region(30.0, 30.0, 25.0), collector.sink()).matching(
            Pattern::atom("a", "hot").then(Pattern::atom("b", "hot")),
            ConsumptionMode::Chronicle,
            None,
        ),
    );
    engine.ingest_at(mk("hot", 0, 10, 30.0, 30.0, 50.0), TimePoint::new(40));
    engine.ingest_at(mk("hot", 1, 20, 31.0, 30.0, 55.0), TimePoint::new(70));
    let _ = engine.finish();
    let out = collector.take();
    assert_eq!(out.len(), 1);
    match &out[0].kind {
        NotificationKind::Derived(inst) => {
            assert_eq!(
                inst.generation_time(),
                TimePoint::new(70),
                "derived instance stamped with the evaluation clock"
            );
        }
        other => panic!("expected Derived, got {other:?}"),
    }
}

#[test]
fn ingest_at_orders_by_evaluation_time_not_generation_time() {
    // Arrival order at a station is the evaluation order, even when the
    // upstream generation times are out of order.
    let mut engine = Engine::start(
        EngineConfig::new(bounds())
            .with_batch_size(1)
            .deterministic(),
    );
    let collector = Collector::new();
    engine.subscribe(
        Subscription::new("all", circle_region(30.0, 30.0, 40.0), collector.sink())
            .for_event("hot"),
    );
    engine.ingest_at(mk("hot", 0, 90, 30.0, 30.0, 50.0), TimePoint::new(100));
    engine.ingest_at(mk("hot", 1, 10, 30.0, 30.0, 55.0), TimePoint::new(110));
    let report = engine.finish();
    assert_eq!(report.total_late_dropped(), 0, "keyed by eval time");
    let out = collector.take();
    let gen_times: Vec<u64> = out
        .iter()
        .map(|n| match &n.kind {
            NotificationKind::Match(i) => i.generation_time().ticks(),
            other => panic!("expected Match, got {other:?}"),
        })
        .collect();
    assert_eq!(gen_times, vec![90, 10], "delivered in arrival order");
}

#[test]
fn layer_filter_keeps_station_streams_apart() {
    let mut engine = Engine::start(
        EngineConfig::new(bounds())
            .with_batch_size(1)
            .deterministic(),
    );
    let sensor_station = Collector::new();
    let cyber_station = Collector::new();
    engine.subscribe(
        Subscription::new(
            "sensor-side",
            circle_region(30.0, 30.0, 40.0),
            sensor_station.sink(),
        )
        .at_layers(vec![Layer::Sensor]),
    );
    engine.subscribe(
        Subscription::new(
            "cyber-side",
            circle_region(30.0, 30.0, 40.0),
            cyber_station.sink(),
        )
        .at_layers(vec![Layer::CyberPhysical, Layer::Cyber]),
    );
    engine.ingest(mk("reading", 0, 10, 30.0, 30.0, 50.0)); // Layer::Sensor
    let cp = EventInstance::builder(
        ObserverId::Mote(MoteId::new(2)),
        EventId::new("area"),
        Layer::CyberPhysical,
    )
    .generated(TimePoint::new(20), Point::new(30.0, 30.0))
    .build();
    engine.ingest(cp);
    let _ = engine.finish();
    assert_eq!(sensor_station.take().len(), 1);
    assert_eq!(cyber_station.take().len(), 1);
}

#[test]
fn silence_probe_closes_quiet_episodes() {
    use stem_engine::{SilenceSpec, SustainedSpec, SustainedValue};
    let mut engine = Engine::start(
        EngineConfig::new(bounds())
            .with_batch_size(1)
            .deterministic(),
    );
    let collector = Collector::new();
    let id = engine.subscribe(
        Subscription::new(
            "occupied",
            circle_region(30.0, 30.0, 25.0),
            collector.sink(),
        )
        .for_event("presence")
        .sustained_spec(SustainedSpec {
            config: SustainedConfig {
                min_duration: Duration::new(10),
                enter_threshold: 1.0,
                exit_threshold: 1.0,
            },
            value: SustainedValue::Attribute("present".into()),
            negate: false,
            silence: Some(SilenceSpec {
                timeout: Duration::new(50),
                inactive_value: 0.0,
            }),
        }),
    );
    let present = |seq: u64, t: u64| {
        EventInstance::builder(
            ObserverId::Mote(MoteId::new(1)),
            EventId::new("presence"),
            Layer::Sensor,
        )
        .seq(SeqNo::new(seq))
        .generated(TimePoint::new(t), Point::new(30.0, 30.0))
        .attributes(Attributes::new().with("present", 1.0))
        .build()
    };
    engine.ingest_at(present(0, 10), TimePoint::new(10));
    engine.ingest_at(present(1, 40), TimePoint::new(40));
    // Input recent at t=60: the probe must NOT close the episode.
    assert!(engine.probe_silence(id, TimePoint::new(60)));
    // Input stale at t=100: the probe feeds the inactive sample.
    assert!(engine.probe_silence(id, TimePoint::new(100)));
    let _ = engine.finish();
    let out = collector.take();
    let kinds: Vec<&NotificationKind> = out.iter().map(|n| &n.kind).collect();
    assert!(
        matches!(
            kinds[0],
            NotificationKind::Sustained(SustainedEvent::Began { .. })
        ),
        "episode began"
    );
    assert!(
        matches!(
            kinds[1],
            NotificationKind::Sustained(SustainedEvent::Ended { interval })
                if interval.end() == TimePoint::new(40)
        ),
        "silence probe ended the episode at the last true sample"
    );
    assert_eq!(out.len(), 2);
}

#[test]
fn finish_at_closes_open_episodes_at_the_horizon() {
    let mut engine = Engine::start(
        EngineConfig::new(bounds())
            .with_batch_size(1)
            .deterministic(),
    );
    let collector = Collector::new();
    engine.subscribe(
        Subscription::new(
            "hot-spell",
            circle_region(30.0, 30.0, 25.0),
            collector.sink(),
        )
        .for_event("reading")
        .sustained(
            SustainedConfig {
                min_duration: Duration::new(10),
                enter_threshold: 45.0,
                exit_threshold: 40.0,
            },
            Some("temp".into()),
        ),
    );
    engine.ingest(mk("reading", 0, 10, 30.0, 30.0, 50.0));
    engine.ingest(mk("reading", 1, 30, 30.0, 30.0, 55.0));
    let report = engine.finish_at(TimePoint::new(90));
    let out = collector.take();
    assert!(
        matches!(
            out.last().map(|n| &n.kind),
            Some(NotificationKind::Sustained(SustainedEvent::Ended { interval }))
                if interval.start() == TimePoint::new(10) && interval.end() == TimePoint::new(30)
        ),
        "open episode closed at the horizon: {out:?}"
    );
    assert_eq!(report.total_notifications(), out.len() as u64);
}

#[test]
fn precision_pass_skips_bounding_box_only_broadcast() {
    // A thin diagonal-ish circle's bounding box spans leaves its exact
    // region never covers; instances in those corners must not be
    // shipped to the subscription's home shard.
    let mut engine = Engine::start(
        EngineConfig::new(bounds())
            .with_shards(4)
            .with_batch_size(1)
            .deterministic(),
    );
    let collector = Collector::new();
    engine.subscribe(
        Subscription::new("ring", circle_region(50.0, 50.0, 40.0), collector.sink())
            .for_event("reading"),
    );
    // Bounding box corner (12, 12): inside the bbox, ~54 m from the
    // center. The leaf mask is scope-exact, so this one is pruned by
    // the leaf lookup alone and never reaches the precision pass.
    engine.ingest(mk("reading", 0, 10, 12.0, 12.0, 50.0));
    // Just past the rim (90.5, 50): 40.5 m out, but its interest leaf
    // grazes the circle, so the mask is set and only the precision
    // pass can reject it.
    engine.ingest(mk("reading", 1, 15, 90.5, 50.0, 50.0));
    // Center: covered, delivered.
    engine.ingest(mk("reading", 2, 20, 50.0, 50.0, 50.0));
    let report = engine.finish();
    assert_eq!(collector.take().len(), 1);
    assert!(
        report.router.precision_skipped >= 1,
        "rim instance skipped by the precision pass: {:?}",
        report.router
    );
    assert!(
        report.router.owner_only >= 1,
        "corner instance pruned by the exact leaf mask: {:?}",
        report.router
    );
}

#[test]
fn silence_probe_respects_the_reorder_buffer() {
    // With nonzero slack, a probe must not reach the sustained detector
    // ahead of earlier-keyed samples still held behind the watermark —
    // it rides the reorder buffer like any other stream entry.
    use stem_engine::{SilenceSpec, SustainedSpec, SustainedValue};
    let mut engine = Engine::start(
        EngineConfig::new(bounds())
            .with_batch_size(1)
            .with_watermark_slack(Duration::new(100))
            .deterministic(),
    );
    let collector = Collector::new();
    let id = engine.subscribe(
        Subscription::new(
            "occupied",
            circle_region(30.0, 30.0, 25.0),
            collector.sink(),
        )
        .for_event("presence")
        .sustained_spec(SustainedSpec {
            config: SustainedConfig {
                min_duration: Duration::new(10),
                enter_threshold: 1.0,
                exit_threshold: 1.0,
            },
            value: SustainedValue::Attribute("present".into()),
            negate: false,
            silence: Some(SilenceSpec {
                timeout: Duration::new(50),
                inactive_value: 0.0,
            }),
        }),
    );
    let present = |seq: u64, t: u64| {
        EventInstance::builder(
            ObserverId::Mote(MoteId::new(1)),
            EventId::new("presence"),
            Layer::Sensor,
        )
        .seq(SeqNo::new(seq))
        .generated(TimePoint::new(t), Point::new(30.0, 30.0))
        .attributes(Attributes::new().with("present", 1.0))
        .build()
    };
    // Both samples sit behind the 100-tick watermark slack when the
    // probe arrives; the probe (at t=200) must evaluate after them, and
    // must find the input fresh enough (200 - 160 < timeout) to skip
    // the inactive feed.
    engine.ingest_at(present(0, 60), TimePoint::new(60));
    engine.ingest_at(present(1, 160), TimePoint::new(160));
    assert!(engine.probe_silence(id, TimePoint::new(200)));
    // A second probe far past the silence timeout closes the episode.
    assert!(engine.probe_silence(id, TimePoint::new(400)));
    let _ = engine.finish();
    let out = collector.take();
    assert_eq!(out.len(), 2, "began + ended, no panic: {out:?}");
    assert!(matches!(
        out[0].kind,
        NotificationKind::Sustained(SustainedEvent::Began { since, .. })
            if since == TimePoint::new(60)
    ));
    assert!(matches!(
        out[1].kind,
        NotificationKind::Sustained(SustainedEvent::Ended { interval })
            if interval.end() == TimePoint::new(160)
    ));
}

// ---------------------------------------------------------------------
// Write-ahead log: record, crash, recover, resume, replay.
// ---------------------------------------------------------------------

fn wal_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("stem-engine-wal-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn wal_config(dir: &std::path::Path) -> EngineConfig {
    EngineConfig::new(bounds())
        .with_shards(2)
        .with_batch_size(2)
        .with_wal(dir)
        .deterministic()
}

fn hot_subscription(collector: &Collector) -> Subscription {
    Subscription::new("hot", circle_region(25.0, 25.0, 20.0), collector.sink())
        .for_event("reading")
        .when(dsl::parse("x.temp > 40").unwrap())
}

/// The synthetic op stream both runs feed: readings alternating between
/// two shards' territories, all hot inside the region.
fn wal_stream() -> Vec<EventInstance> {
    (0..40u64)
        .map(|i| {
            let (x, y) = if i % 2 == 0 {
                (20.0, 20.0)
            } else {
                (80.0, 80.0)
            };
            mk("reading", i, 10 * i, x, y, 50.0)
        })
        .collect()
}

fn notification_multiset(notes: Vec<stem_engine::Notification>) -> Vec<String> {
    let mut out: Vec<String> = notes.into_iter().map(|n| format!("{:?}", n.kind)).collect();
    out.sort();
    out
}

#[test]
fn crash_recovery_resumes_bit_identically() {
    let stream = wal_stream();

    // Uninterrupted reference run with a WAL.
    let full_dir = wal_dir("full");
    let reference = Collector::new();
    let mut engine = Engine::start(wal_config(&full_dir));
    engine.subscribe(hot_subscription(&reference));
    engine.ingest_all(stream.iter().cloned());
    let report = engine.finish();
    let wal = report.total_wal();
    // Every appended record is a routed instance, a heartbeat, or a
    // checkpoint — counted independently from the logs themselves.
    let mut heartbeats = 0u64;
    let mut checkpoints = 0u64;
    let mut instances = 0u64;
    for shard in 0..2 {
        for record in stem_wal::read_shard(&full_dir, shard, false)
            .unwrap()
            .records
        {
            match record {
                stem_wal::WalRecord::Instance { .. } => instances += 1,
                stem_wal::WalRecord::Heartbeat { .. } => heartbeats += 1,
                stem_wal::WalRecord::Watermark { .. } => checkpoints += 1,
                stem_wal::WalRecord::Probe { .. } => panic!("no probes in this stream"),
            }
        }
    }
    assert_eq!(instances, report.router.fanout, "one record per delivery");
    assert!(heartbeats > 0, "advancing high-water marks are journaled");
    assert_eq!(
        wal.records_appended,
        instances + heartbeats + checkpoints,
        "append counter accounts for every record on disk"
    );
    assert!(wal.bytes_appended > 0);
    assert!(wal.segments_created >= 2, "one segment chain per shard");

    // Crashed run: same stream, dropped mid-flight without finish().
    let crash_dir = wal_dir("crash");
    let lost = Collector::new();
    let mut engine = Engine::start(wal_config(&crash_dir));
    engine.subscribe(hot_subscription(&lost));
    engine.ingest_all(stream.iter().take(25).cloned());
    engine.flush();
    drop(engine); // the crash: notifications in `lost` are gone with it

    // Recover + re-register + resume, then re-feed from the resume point.
    let survivor = Collector::new();
    let mut recovery = Engine::recover(wal_config(&crash_dir)).expect("recover from durable state");
    recovery.subscribe(hot_subscription(&survivor));
    let stats = recovery.stats();
    assert_eq!(stats.torn_truncations, 0, "clean shutdown had no torn tail");
    let mut engine = recovery.resume();
    let resume = engine.resume_from();
    assert!(
        resume > 0 && resume <= 25,
        "resume point within the durable prefix"
    );
    for inst in stream.iter().skip(usize::try_from(resume).unwrap()) {
        engine.ingest(inst.clone());
    }
    let recovered_report = engine.finish();
    assert!(recovered_report.total_wal().records_recovered > 0);

    // Bit-identical detection multisets: recovered prefix re-delivers
    // into the fresh sink, resumed suffix continues live.
    assert_eq!(
        notification_multiset(survivor.take()),
        notification_multiset(reference.take()),
    );
    let _ = std::fs::remove_dir_all(&full_dir);
    let _ = std::fs::remove_dir_all(&crash_dir);
}

#[test]
fn recorded_wal_replays_into_any_subscription_set() {
    let dir = wal_dir("replay");
    let stream = wal_stream();
    let original = Collector::new();
    let mut engine = Engine::start(wal_config(&dir));
    engine.subscribe(hot_subscription(&original));
    engine.ingest_all(stream.iter().cloned());
    let _ = engine.finish();
    let original_notes = notification_multiset(original.take());

    // Full-fidelity re-run: same subscriptions, replay_records.
    let rerun = Collector::new();
    let replay = stem_wal::Replay::open(&dir).unwrap();
    assert_eq!(replay.len(), stream.len());
    let mut engine = Engine::start(EngineConfig::new(bounds()).with_shards(2).deterministic());
    engine.subscribe(hot_subscription(&rerun));
    engine.replay_records(replay.records());
    let _ = engine.finish();
    assert_eq!(notification_multiset(rerun.take()), original_notes);

    // Historical re-analysis: a *different* subscription set over the
    // recorded instances through the InstanceSource seam.
    let reanalysis = Collector::new();
    let mut engine = Engine::start(EngineConfig::new(bounds()).deterministic());
    engine.subscribe(
        Subscription::new(
            "anywhere-warm",
            circle_region(50.0, 50.0, 80.0),
            reanalysis.sink(),
        )
        .for_event("reading")
        .when(dsl::parse("x.temp > 45").unwrap()),
    );
    let mut source = stem_wal::Replay::open(&dir).unwrap().into_instances();
    engine.pump(&mut source);
    let _ = engine.finish();
    assert_eq!(
        reanalysis.take().len(),
        stream.len(),
        "the new condition matches every recorded reading"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_is_repaired_and_counted_in_the_report() {
    let dir = wal_dir("torn");
    let stream = wal_stream();
    let mut engine = Engine::start(wal_config(&dir));
    engine.subscribe(hot_subscription(&Collector::new()));
    engine.ingest_all(stream.iter().cloned());
    let _ = engine.finish();

    // Tear the tail of shard 0's last segment mid-record.
    let mut segments: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-000-"))
        })
        .collect();
    segments.sort();
    let last = segments.last().unwrap();
    let len = std::fs::metadata(last).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(last)
        .unwrap()
        .set_len(len - 3)
        .unwrap();

    let survivor = Collector::new();
    let mut recovery = Engine::recover(wal_config(&dir)).expect("recover from durable state");
    recovery.subscribe(hot_subscription(&survivor));
    assert_eq!(recovery.stats().torn_truncations, 1);
    let mut engine = recovery.resume();
    let resume = engine.resume_from();
    assert!(
        resume < stream.len() as u64,
        "the torn record pulls the resume point back"
    );
    for inst in stream.iter().skip(usize::try_from(resume).unwrap()) {
        engine.ingest(inst.clone());
    }
    let report = engine.finish();
    assert_eq!(report.total_wal().torn_truncations, 1);
    assert!(
        report.total_wal().deduped > 0,
        "the intact shard dedups the overlap"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Checkpoint snapshots (stem-snap): bounded-time recovery + compaction.
// ---------------------------------------------------------------------

fn snap_config(dir: &std::path::Path) -> EngineConfig {
    wal_config(dir)
        .with_wal_segment_bytes(512)
        .with_checkpoint(stem_engine::CheckpointPolicy::EveryNBatches(4))
}

/// Per-subscription delivery *sequences* (order matters: the snapshot
/// cut is a prefix in delivery order, not an arbitrary sub-multiset).
fn per_sub_sequences(
    notes: Vec<stem_engine::Notification>,
) -> std::collections::BTreeMap<u64, Vec<String>> {
    let mut out: std::collections::BTreeMap<u64, Vec<String>> = std::collections::BTreeMap::new();
    for n in notes {
        out.entry(n.subscription.raw())
            .or_default()
            .push(format!("{:?}", n.kind));
    }
    out
}

/// The headline acceptance path: recovery with checkpoints loads the
/// newest snapshot set, replays only the WAL tail past its watermark
/// (asserted via the snap/WAL counters), and the resumed delivery
/// stream continues the uninterrupted run exactly — the snapshot covers
/// the prefix, the resumed engine delivers the rest.
#[test]
fn checkpointed_recovery_replays_only_the_tail_bit_identically() {
    let stream = wal_stream();

    // Uninterrupted reference run with the same checkpoint config.
    let full_dir = wal_dir("snap-full");
    let reference = Collector::new();
    let mut engine = Engine::start(snap_config(&full_dir));
    engine.subscribe(hot_subscription(&reference));
    engine.ingest_all(stream.iter().cloned());
    let full_report = engine.finish();
    assert!(
        full_report.total_snap().snapshots_written >= 4,
        "the batch cadence must have cut several checkpoints: {:?}",
        full_report.total_snap(),
    );
    let expected = per_sub_sequences(reference.take());

    // Crash run: same config, killed mid-stream.
    let crash_dir = wal_dir("snap-crash");
    let lost = Collector::new();
    let mut engine = Engine::start(snap_config(&crash_dir));
    engine.subscribe(hot_subscription(&lost));
    engine.ingest_all(stream.iter().take(30).cloned());
    engine.flush();
    drop(engine); // the crash

    // What a full replay of the surviving chains would read (the
    // pre-snapshot baseline recovery cost).
    let live_log_records: u64 = (0..2)
        .map(|s| {
            stem_wal::read_shard(&crash_dir, s, false)
                .unwrap()
                .records
                .len() as u64
        })
        .sum();

    let survivor = Collector::new();
    let mut recovery =
        Engine::recover(snap_config(&crash_dir)).expect("recover from durable state");
    recovery.subscribe(hot_subscription(&survivor));
    let stats = recovery.stats();
    assert!(
        stats.snapshot_epoch.is_some(),
        "a checkpoint floor was found"
    );
    assert_eq!(stats.snapshots_loaded, 2, "both shards restore from it");
    assert!(
        stats.records < live_log_records,
        "recovery read only the tail ({} records), not the whole surviving log \
         ({live_log_records})",
        stats.records,
    );
    let skipped = recovery.snapshot_delivered();
    assert!(
        skipped.values().sum::<u64>() > 0,
        "the snapshot covers some already-delivered notifications"
    );
    let mut engine = recovery.resume();
    let resume = usize::try_from(engine.resume_from()).unwrap();
    assert!(resume > 0 && resume <= 30);
    for inst in stream.iter().skip(resume) {
        engine.ingest(inst.clone());
    }
    let report = engine.finish();
    let snap = report.total_snap();
    assert_eq!(snap.snapshots_loaded, 2);
    assert!(
        report.total_wal().records_recovered < live_log_records,
        "only tail records were replayed"
    );

    // The resumed stream is exactly the uninterrupted stream minus the
    // per-subscription prefix the snapshot compressed into state.
    let resumed = per_sub_sequences(survivor.take());
    for (sub, full_sequence) in &expected {
        let cut = usize::try_from(*skipped.get(sub).unwrap_or(&0)).unwrap();
        let got = resumed.get(sub).cloned().unwrap_or_default();
        assert_eq!(
            got,
            full_sequence[cut..],
            "sub {sub}: resumed deliveries must continue the reference run after \
             its first {cut} notifications"
        );
    }

    let _ = std::fs::remove_dir_all(&full_dir);
    let _ = std::fs::remove_dir_all(&crash_dir);
}

/// Compaction retires WAL segments wholly behind the oldest retained
/// snapshot, so live segment count stays bounded on a long stream.
#[test]
fn compaction_keeps_live_segment_count_bounded() {
    let dir = wal_dir("snap-compact");
    let mut engine = Engine::start(snap_config(&dir));
    engine.subscribe(hot_subscription(&Collector::new()));
    // A long stream: many segments at 512 bytes, many checkpoints.
    for round in 0..6u64 {
        for inst in wal_stream() {
            let shifted = mk(
                "reading",
                round * 40 + inst.seq().raw(),
                round * 400 + inst.generation_time().ticks(),
                inst.generation_location().x,
                inst.generation_location().y,
                50.0,
            );
            engine.ingest(shifted);
        }
    }
    let report = engine.finish();
    let snap = report.total_snap();
    let wal = report.total_wal();
    assert!(snap.snapshots_written >= 10);
    assert!(
        snap.segments_retired > 0,
        "compaction must have retired segments"
    );
    // What's live on disk is a bounded suffix, not the whole history.
    let live_segments = std::fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .file_name()
                .to_str()
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .count() as u64;
    assert_eq!(
        live_segments + snap.segments_retired,
        wal.segments_created,
        "every created segment is either live or retired"
    );
    assert!(
        live_segments < wal.segments_created / 2,
        "live segments ({live_segments}) must be a small suffix of \
         {} created",
        wal.segments_created,
    );
    // Snapshot retention: at most 2 epochs per shard remain.
    for shard in 0..2 {
        assert!(stem_snap::list_snapshots(&dir, shard).unwrap().len() <= 2);
    }
    // The compacted directory still recovers (from the snapshots).
    let survivor = Collector::new();
    let mut recovery = Engine::recover(snap_config(&dir)).expect("recover from durable state");
    recovery.subscribe(hot_subscription(&survivor));
    assert_eq!(recovery.stats().snapshots_loaded, 2);
    let engine = recovery.resume();
    let _ = engine.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A snapshot torn mid-write (the crash hits the checkpoint itself)
/// fails its checksum and recovery degrades to the previous epoch on
/// every shard — same consistent floor, same resumed deliveries.
#[test]
fn torn_newest_snapshot_falls_back_to_the_previous_epoch() {
    let stream = wal_stream();
    let dir = wal_dir("snap-torn");
    let lost = Collector::new();
    let mut engine = Engine::start(snap_config(&dir));
    engine.subscribe(hot_subscription(&lost));
    engine.ingest_all(stream.iter().take(30).cloned());
    engine.flush();
    drop(engine);

    // Find the newest epoch and tear shard 0's file for it mid-write.
    let newest = stem_snap::list_snapshots(&dir, 0).unwrap();
    let (newest_epoch, newest_path) = newest.last().unwrap().clone();
    let len = std::fs::metadata(&newest_path).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&newest_path)
        .unwrap()
        .set_len(len / 2)
        .unwrap();

    let survivor = Collector::new();
    let mut recovery = Engine::recover(snap_config(&dir)).expect("recover from durable state");
    recovery.subscribe(hot_subscription(&survivor));
    let stats = recovery.stats();
    assert_eq!(stats.snapshots_rejected, 1, "the torn file was rejected");
    assert_eq!(
        stats.snapshot_epoch,
        Some(newest_epoch - 1),
        "the floor degraded to the previous epoch on every shard"
    );
    assert_eq!(stats.snapshots_loaded, 2);
    let skipped = recovery.snapshot_delivered();
    let mut engine = recovery.resume();
    let resume = usize::try_from(engine.resume_from()).unwrap();
    for inst in stream.iter().skip(resume) {
        engine.ingest(inst.clone());
    }
    let _ = engine.finish();

    // Reference: the same uninterrupted run.
    let full_dir = wal_dir("snap-torn-full");
    let reference = Collector::new();
    let mut engine = Engine::start(snap_config(&full_dir));
    engine.subscribe(hot_subscription(&reference));
    engine.ingest_all(stream.iter().cloned());
    let _ = engine.finish();
    let expected = per_sub_sequences(reference.take());
    let resumed = per_sub_sequences(survivor.take());
    for (sub, full_sequence) in &expected {
        let cut = usize::try_from(*skipped.get(sub).unwrap_or(&0)).unwrap();
        let got = resumed.get(sub).cloned().unwrap_or_default();
        assert_eq!(
            got,
            full_sequence[cut..],
            "sub {sub} diverged after fallback"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&full_dir);
}

/// A manual checkpoint before a planned shutdown makes the next start
/// recover with an empty tail: nothing to replay, nothing re-delivered.
#[test]
fn manual_checkpoint_makes_recovery_instant() {
    let dir = wal_dir("snap-manual");
    let stream = wal_stream();
    // Policy Never: only the explicit calls checkpoint.
    let config = wal_config(&dir).with_wal_segment_bytes(512);
    let collector = Collector::new();
    let mut engine = Engine::start(config.clone());
    engine.subscribe(hot_subscription(&collector));
    engine.ingest_all(stream.iter().cloned());
    engine.checkpoint();
    engine.checkpoint(); // two epochs: the floor needs no fallback
    drop(engine);
    let delivered_live = collector.take().len() as u64;

    let survivor = Collector::new();
    let mut recovery = Engine::recover(config).expect("recover from durable state");
    recovery.subscribe(hot_subscription(&survivor));
    let stats = recovery.stats();
    assert_eq!(stats.snapshots_loaded, 2);
    assert_eq!(
        recovery.snapshot_delivered().values().sum::<u64>(),
        delivered_live,
        "the snapshot covers every live delivery"
    );
    let engine = recovery.resume();
    assert_eq!(engine.resume_from(), stream.len() as u64);
    let report = engine.finish();
    assert_eq!(
        report.total_wal().records_recovered,
        0,
        "an up-to-date snapshot leaves no tail to replay"
    );
    assert!(survivor.take().is_empty(), "nothing is re-delivered");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Damage beyond the single-crash fault model — history segments gone
/// with no snapshot covering them — must refuse recovery loudly, never
/// resume with silently-missing durable history.
#[test]
#[should_panic(expected = "the chain starts at")]
fn recovery_refuses_a_compacted_log_without_a_covering_snapshot() {
    let dir = wal_dir("snap-broken-chain");
    let mut engine = Engine::start(wal_config(&dir).with_wal_segment_bytes(512));
    engine.subscribe(hot_subscription(&Collector::new()));
    engine.ingest_all(wal_stream());
    let _ = engine.finish();
    // Delete shard 0's first segment by hand (no snapshot covers it).
    std::fs::remove_file(dir.join("wal-000-000000.log")).unwrap();
    let _ = Engine::recover(wal_config(&dir).with_wal_segment_bytes(512));
}

/// A checkpoint cut during the post-recovery re-feed overlap window
/// must not understate a shard's coverage: a shard whose own tail
/// replay reached past the barrier (its durable max exceeds the least
/// durable shard's) folds those operations into the snapshot state, so
/// a *second* recovery from that epoch must still dedup them instead
/// of evaluating them twice.
#[test]
fn checkpoint_during_resume_overlap_claims_full_coverage() {
    let stream = wal_stream();
    // Reference: deliveries of an uninterrupted run (checkpoints do
    // not change detection, so the config needs no policy).
    let dir_ref = wal_dir("overlap-ref");
    let reference = Collector::new();
    let mut engine = Engine::start(wal_config(&dir_ref));
    engine.subscribe(hot_subscription(&reference));
    engine.ingest_all(stream.iter().cloned());
    let _ = engine.finish();
    let expected = per_sub_sequences(reference.take());

    // Crash 1 at op 30; tear shard 0's log tail so the shards'
    // durability diverges and recovery leaves a wide re-feed overlap
    // on shard 1.
    let dir = wal_dir("overlap");
    let lost = Collector::new();
    let mut engine = Engine::start(wal_config(&dir));
    engine.subscribe(hot_subscription(&lost));
    engine.ingest_all(stream.iter().take(30).cloned());
    engine.flush();
    drop(engine);
    let mut shard0: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-000-"))
        })
        .collect();
    shard0.sort();
    let victim = shard0.last().unwrap();
    let len = std::fs::metadata(victim).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(victim)
        .unwrap()
        .set_len(len / 2)
        .unwrap();

    // Recovery 1: resume, re-feed only part of the overlap, then cut
    // manual checkpoints mid-overlap (the second gives the floor its
    // fallback epoch) and crash again.
    let survivor1 = Collector::new();
    let mut recovery = Engine::recover(wal_config(&dir)).expect("recover from durable state");
    recovery.subscribe(hot_subscription(&survivor1));
    let mut engine = recovery.resume();
    let resume1 = usize::try_from(engine.resume_from()).unwrap();
    assert!(resume1 < 30, "the torn shard pulls the resume point back");
    let partial = resume1 + (30 - resume1) / 2;
    for inst in stream.iter().take(partial).skip(resume1) {
        engine.ingest(inst.clone());
    }
    engine.checkpoint();
    engine.checkpoint();
    drop(engine); // crash 2

    // Recovery 2 restores from the mid-overlap epoch; the continuation
    // must line up exactly — a coverage-understating snapshot would
    // re-evaluate shard 1's overlap and deliver duplicates here.
    let survivor2 = Collector::new();
    let mut recovery = Engine::recover(wal_config(&dir)).expect("recover from durable state");
    recovery.subscribe(hot_subscription(&survivor2));
    assert!(recovery.stats().snapshot_epoch.is_some());
    let skipped = recovery.snapshot_delivered();
    let mut engine = recovery.resume();
    let resume2 = usize::try_from(engine.resume_from()).unwrap();
    for inst in stream.iter().skip(resume2) {
        engine.ingest(inst.clone());
    }
    let report = engine.finish();
    // The sharp edge: an understated snapshot would re-push shard 1's
    // already-folded overlap into the restored reorder buffer, where
    // the watermark silently late-drops it (or worse, re-delivers ties
    // at the watermark). Proper coverage dedups the overlap instead —
    // an in-order stream must see zero late drops.
    assert_eq!(
        report.total_late_dropped(),
        0,
        "re-fed overlap must be deduplicated, not re-pushed behind the watermark"
    );
    let resumed = per_sub_sequences(survivor2.take());
    for (sub, full_sequence) in &expected {
        let cut = usize::try_from(*skipped.get(sub).unwrap_or(&0)).unwrap();
        let got = resumed.get(sub).cloned().unwrap_or_default();
        assert_eq!(
            got,
            full_sequence[cut..],
            "sub {sub}: a second recovery through a mid-overlap checkpoint \
             must not duplicate or drop deliveries"
        );
    }
    let _ = std::fs::remove_dir_all(&dir_ref);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Spatial scope + BVH interest index
// ---------------------------------------------------------------------

fn everywhere() -> SpatialExtent {
    SpatialExtent::field(Field::rect(Rect::new(
        Point::new(-1e15, -1e15),
        Point::new(1e15, 1e15),
    )))
}

fn rect_extent(x0: f64, y0: f64, x1: f64, y1: f64) -> SpatialExtent {
    SpatialExtent::field(Field::rect(Rect::new(
        Point::new(x0, y0),
        Point::new(x1, y1),
    )))
}

/// A station-style subscription (unbounded semantic region) scoped to
/// one district observes exactly the in-district stream, the worker
/// counts its out-of-scope skips, and the router prunes broadcast
/// deliveries to its home shard at enqueue time. Runs under durable
/// logging: that is the mode that retains the territorial owner's copy
/// of every instance, which is exactly what the worker-side scan must
/// prune (without a log, the router drops uncovered owner deliveries
/// at enqueue time and the worker never sees them).
#[test]
fn scope_prunes_out_of_district_work_before_evaluation() {
    let dir = wal_dir("scope-prune");
    let mut engine = Engine::start(
        EngineConfig::new(bounds())
            .with_shards(4)
            .with_batch_size(1)
            .with_wal(&dir)
            .deterministic(),
    );
    let scoped = Collector::new();
    engine.subscribe(
        Subscription::new("district", everywhere(), scoped.sink())
            .scoped_to(rect_extent(0.0, 0.0, 30.0, 30.0))
            .for_event("reading")
            .homed_near(Point::new(5.0, 5.0)),
    );
    let unscoped = Collector::new();
    engine.subscribe(
        Subscription::new("global", everywhere(), unscoped.sink())
            .for_event("reading")
            .homed_near(Point::new(95.0, 95.0)),
    );
    for i in 0..42u64 {
        // A third inside the district, a third outside it but on the
        // scoped home's own territory (reaches the shard as owner, so
        // the worker-side scan must prune it), a third far away (the
        // router prunes the delivery at enqueue time).
        let (x, y) = match i % 3 {
            0 => (10.0, 10.0),
            1 => (40.0, 40.0),
            _ => (80.0, 80.0),
        };
        engine.ingest(mk("reading", i, 10 * i, x, y, 50.0));
    }
    let report = engine.finish();
    assert_eq!(scoped.take().len(), 14, "only the in-district third");
    assert_eq!(unscoped.take().len(), 42, "the unscoped control sees all");
    assert_eq!(report.router.scoped_subscriptions, 1);
    assert!(
        report.total_scope_skipped() > 0,
        "worker-side pruning must be visible: {}",
        report.summary_line()
    );
    // The out-of-district half is never copied to the scoped home shard
    // (unless it owns the territory): strictly less fanout than the
    // 2-deliveries-per-instance an unscoped pair would cost.
    assert!(
        report.router.fanout < 2 * report.router.routed,
        "scope must prune broadcast fanout: {}",
        report.summary_line()
    );
}

/// `Engine::recover` distinguishes "no durable state" (clean empty
/// recovery) from an unreadable directory (typed error), instead of
/// panicking on either.
#[test]
fn recover_separates_no_durable_state_from_io_failure() {
    // Absent directory: a clean, empty recovery.
    let absent = wal_dir("recover-absent");
    let _ = std::fs::remove_dir_all(&absent);
    let recovery = Engine::recover(wal_config(&absent)).expect("absent dir is no durable state");
    assert_eq!(recovery.stats(), stem_engine::RecoveryStats::default());
    let engine = recovery.resume();
    assert_eq!(engine.resume_from(), 0);
    let _ = engine.finish();
    let _ = std::fs::remove_dir_all(&absent);

    // A regular file where the directory should be: a typed scan error,
    // not a panic and not a silent empty recovery.
    let clobbered = wal_dir("recover-clobbered");
    let _ = std::fs::remove_dir_all(&clobbered);
    std::fs::write(&clobbered, b"not a directory").unwrap();
    let err = Engine::recover(wal_config(&clobbered)).expect_err("unreadable dir must error");
    assert!(
        matches!(err, stem_engine::RecoverError::Wal(_)),
        "scan failures surface as RecoverError::Wal: {err}"
    );
    assert!(err.to_string().contains("could not scan the wal"));
    let _ = std::fs::remove_file(&clobbered);
}

use proptest::prelude::*;

proptest! {
    /// BVH-backed routing is indistinguishable from the linear
    /// exact-scope scan: same notification multiset, same fanout, same
    /// `precision_skipped` semantics, across random region sets and
    /// random streams — only the traversal-cost counter differs.
    #[test]
    fn bvh_routing_matches_linear_scan(
        regions in proptest::collection::vec(
            (0.0f64..90.0, 0.0f64..90.0, 2.0f64..25.0), 1..24),
        points in proptest::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0), 1..120),
        shards in 1usize..5,
    ) {
        let run = |bvh_threshold: usize| {
            let mut engine = Engine::start(
                EngineConfig::new(bounds())
                    .with_shards(shards)
                    .with_batch_size(4)
                    .with_interest_bvh_threshold(bvh_threshold)
                    .deterministic(),
            );
            let collector = Collector::new();
            for (i, &(x, y, r)) in regions.iter().enumerate() {
                engine.subscribe(
                    Subscription::new(format!("r{i}"), circle_region(x, y, r), collector.sink())
                        .for_event("reading"),
                );
            }
            for (i, &(x, y)) in points.iter().enumerate() {
                engine.ingest(mk("reading", i as u64, 10 * i as u64, x, y, 50.0));
            }
            let report = engine.finish();
            (notification_multiset(collector.take()), report)
        };
        let (linear_notes, linear) = run(usize::MAX);
        let (bvh_notes, bvh) = run(0);
        prop_assert_eq!(linear_notes, bvh_notes, "delivery multisets diverged");
        prop_assert_eq!(linear.router.fanout, bvh.router.fanout);
        prop_assert_eq!(linear.router.precision_skipped, bvh.router.precision_skipped);
        prop_assert_eq!(linear.router.bvh_nodes_visited, 0);
        prop_assert_eq!(
            linear.router.scoped_subscriptions,
            bvh.router.scoped_subscriptions
        );
    }

    /// Columnar ingest ([`Engine::ingest_all`]) is semantically
    /// identical to the per-instance path: same notification multiset
    /// and same routing counters, across random streams × region sets ×
    /// shard counts × chunk sizes × both execution modes — the columnar
    /// chunking, arena-backed rows, and shared-batch routing are pure
    /// layout changes.
    #[test]
    fn columnar_ingest_matches_per_instance_path(
        regions in proptest::collection::vec(
            (0.0f64..90.0, 0.0f64..90.0, 2.0f64..25.0), 1..16),
        points in proptest::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0), 1..100),
        shards in 1usize..5,
        batch in 1usize..40,
        threaded in proptest::bool::ANY,
    ) {
        let run = |columnar: bool| {
            let mut config = EngineConfig::new(bounds())
                .with_shards(shards)
                .with_batch_size(batch);
            if !threaded {
                config = config.deterministic();
            }
            let mut engine = Engine::start(config);
            let collector = Collector::new();
            for (i, &(x, y, r)) in regions.iter().enumerate() {
                engine.subscribe(
                    Subscription::new(format!("r{i}"), circle_region(x, y, r), collector.sink())
                        .for_event("reading"),
                );
            }
            let stream: Vec<EventInstance> = points
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| mk("reading", i as u64, 10 * i as u64, x, y, 50.0))
                .collect();
            if columnar {
                engine.ingest_all(stream);
            } else {
                for instance in stream {
                    engine.ingest(instance);
                }
            }
            let report = engine.finish();
            (notification_multiset(collector.take()), report)
        };
        let (per_instance_notes, per_instance) = run(false);
        let (columnar_notes, columnar) = run(true);
        prop_assert_eq!(per_instance_notes, columnar_notes, "delivery multisets diverged");
        prop_assert_eq!(per_instance.router.routed, columnar.router.routed);
        prop_assert_eq!(per_instance.router.fanout, columnar.router.fanout);
        prop_assert_eq!(
            per_instance.router.precision_skipped,
            columnar.router.precision_skipped
        );
    }

    /// Scoped-vs-unscoped equivalence: wrapping a subscription's region
    /// in an explicit covering scope changes nothing observable —
    /// pruning never drops an in-scope delivery.
    #[test]
    fn scope_pruning_never_drops_an_in_scope_delivery(
        regions in proptest::collection::vec(
            (0.0f64..90.0, 0.0f64..90.0, 2.0f64..25.0), 1..16),
        points in proptest::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0), 1..100),
        shards in 1usize..5,
        pad in 0.0f64..10.0,
    ) {
        let run = |scoped: bool| {
            let mut engine = Engine::start(
                EngineConfig::new(bounds())
                    .with_shards(shards)
                    .with_batch_size(4)
                    .deterministic(),
            );
            let collector = Collector::new();
            for (i, &(x, y, r)) in regions.iter().enumerate() {
                let region = circle_region(x, y, r);
                let mut sub =
                    Subscription::new(format!("r{i}"), region.clone(), collector.sink())
                        .for_event("reading");
                if scoped {
                    // Any scope covering the region is equivalent; the
                    // pad varies how much looser it is than the region.
                    sub = sub.scoped_to(SpatialExtent::field(Field::rect(
                        region.bounding_box().inflated(pad),
                    )));
                }
                engine.subscribe(sub);
            }
            for (i, &(x, y)) in points.iter().enumerate() {
                engine.ingest(mk("reading", i as u64, 10 * i as u64, x, y, 50.0));
            }
            let report = engine.finish();
            (notification_multiset(collector.take()), report)
        };
        let (unscoped_notes, _) = run(false);
        let (scoped_notes, scoped_report) = run(true);
        prop_assert_eq!(
            unscoped_notes,
            scoped_notes,
            "an in-scope delivery was dropped"
        );
        prop_assert_eq!(
            scoped_report.router.scoped_subscriptions,
            regions.len() as u64
        );
    }
}
