//! The shard router: spatial partitioning, interest tracking, batching.

use crate::batch::{Batch, BatchItem, ItemPayload, ItemTrace};
use crate::config::ShardId;
use crate::metrics::RouterMetrics;
use crate::plan::PlanId;
use crate::shard_map::{Grid, ShardMap};
use std::sync::Arc;
use stem_core::{ColumnarBatch, EventInstance, Layer, TraceClock};
use stem_spatial::{Bvh, Field, Point, Rect, SpatialExtent};
use stem_temporal::TimePoint;

/// The bit for a model layer in an [`Interest`]'s layer mask.
fn layer_bit(layer: Layer) -> u8 {
    1 << (layer as u8)
}

/// The mask for a subscription's layer filter (`None` = every layer).
fn layer_mask(layers: Option<&[Layer]>) -> u8 {
    layers.map_or(u8::MAX, |list| {
        list.iter().fold(0, |mask, &l| mask | layer_bit(l))
    })
}

/// One registered detector plan as the router sees it: the union of
/// its subscribers' routing scopes (exact extents for precision
/// checks, plus their cheaper union bounding box) and the plan's layer
/// filter as a bitmask — everything the worker's own candidate filter
/// would reject is already rejected here, at enqueue time. A plan with
/// many subscribers costs one interest entry, so mega-tenancy
/// registration leaves the routing tables plan-sized; the worker
/// re-applies each subscriber's own scope at fan-out, keeping the
/// union's pruning exact.
#[derive(Debug, Clone)]
struct Interest {
    id: PlanId,
    /// Union bounding box over `scopes`.
    bbox: Rect,
    /// Every distinct subscriber scope attached to the plan (the engine
    /// dedupes identical scopes before they reach the router).
    scopes: Vec<SpatialExtent>,
    layers: u8,
}

/// Routes instances to shards and accumulates per-shard batches.
///
/// Every instance goes to each shard that is home to a subscription
/// whose layer filter and routing scope cover it — and, under durable
/// logging, unconditionally to the shard that *owns* its location
/// under the [`ShardMap`]. A subscription lives on exactly one home
/// shard (the owner of its scope's center, or of the home hint clamped
/// into the scope), so detector state is never split and the match
/// multiset is independent of the shard count.
#[derive(Debug)]
pub struct ShardRouter {
    map: ShardMap,
    batch_size: usize,
    /// Per home shard: interests of resident plans (one entry per
    /// plan, however many subscribers share it).
    interests: Vec<Vec<Interest>>,
    /// Per home shard: the BVH over the resident scope bounding boxes,
    /// built once the interest count crosses `bvh_threshold` (item
    /// index = position in `interests[shard]`). `None` = linear scan.
    bvhs: Vec<Option<Bvh>>,
    /// Interest count per home shard at which the precision pass
    /// switches to the BVH.
    bvh_threshold: usize,
    /// Candidate buffer reused across BVH point queries.
    scratch: Vec<u32>,
    /// The interest index resolution: a fixed fine quadtree grid,
    /// independent of the (coarser) shard-territory grid so broadcast
    /// stays confined to actual region boundaries.
    interest_grid: Grid,
    /// Per interest-grid leaf: bitmask of shards homing a subscription
    /// whose bounding box touches the leaf. Routing is then O(1) per
    /// instance regardless of the subscription count; workers re-check
    /// exact region coverage, so the leaf granularity only costs an
    /// occasional extra delivery, never a missed one.
    leaf_masks: Vec<u64>,
    /// Per shard: the accumulating batch.
    pending: Vec<Vec<BatchItem>>,
    /// Maximum generation time seen across the whole stream.
    high_water: Option<TimePoint>,
    /// The next global ingest sequence number (instances and silence
    /// probes each consume one, in arrival order).
    next_seq: u64,
    /// Per shard: the high-water mark last handed off in a batch, so
    /// heartbeat-only batches are cut only when the stream clock
    /// actually advanced for that shard (see [`ShardRouter::needs_heartbeat`]).
    heartbeat_sent: Vec<Option<TimePoint>>,
    /// Whether the territorial owner receives every instance even with
    /// no covering subscription. Required under durable logging (each
    /// operation must reach some shard's write-ahead log); without it,
    /// an instance nothing subscribes to is dropped at enqueue time
    /// instead of riding a shard's reorder buffer to a no-op dispatch.
    retain_owner: bool,
    /// The engine-wide trace clock (None with tracing off): the router
    /// takes each item's `route` stamp when it consumes the item's
    /// sequence number, and each batch's `enqueue` stamp at handoff.
    trace_clock: Option<Arc<TraceClock>>,
    metrics: RouterMetrics,
}

impl ShardRouter {
    /// Interest-index depth: `4^6 = 4096` leaves (32 KiB of masks),
    /// fine enough that a subscription's interest footprint hugs its
    /// actual bounding box instead of whole shard territories.
    const INTEREST_DEPTH: u32 = 6;

    /// Creates a router over `map`, flushing batches at `batch_size`.
    /// `bvh_threshold` is the per-home-shard interest count at which
    /// the precision pass switches from the linear exact-scope scan to
    /// the BVH index (see
    /// [`crate::EngineConfig::interest_bvh_threshold`]). `retain_owner`
    /// keeps the territorial-owner delivery even for instances no
    /// subscription covers (durable-logging mode; see
    /// [`ShardRouter::target_mask`]).
    #[must_use]
    pub fn new(map: ShardMap, batch_size: usize, bvh_threshold: usize, retain_owner: bool) -> Self {
        let shards = map.shard_count();
        let interest_grid = Grid::new(map.bounds(), Self::INTEREST_DEPTH);
        let leaves = interest_grid.leaf_count();
        ShardRouter {
            map,
            batch_size: batch_size.max(1),
            interests: vec![Vec::new(); shards],
            bvhs: vec![None; shards],
            bvh_threshold,
            scratch: Vec::new(),
            interest_grid,
            leaf_masks: vec![0; leaves],
            pending: vec![Vec::new(); shards],
            high_water: None,
            next_seq: 0,
            heartbeat_sent: vec![None; shards],
            retain_owner,
            trace_clock: None,
            metrics: RouterMetrics::default(),
        }
    }

    /// Attaches the engine-wide trace clock: routed items gain
    /// ingest/route stamps and batches gain enqueue stamps.
    pub(crate) fn set_trace_clock(&mut self, clock: Arc<TraceClock>) {
        self.trace_clock = Some(clock);
    }

    /// The shard map in use.
    #[must_use]
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The router's global high-water mark.
    #[must_use]
    pub fn high_water(&self) -> Option<TimePoint> {
        self.high_water
    }

    /// The next global ingest sequence number.
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.next_seq
    }

    /// Consumes and returns one global ingest sequence number (the
    /// engine stamps silence probes from the same counter as instances,
    /// so the union of the per-shard logs is totally ordered).
    pub(crate) fn take_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Seeds the sequence counter and high-water mark after a crash
    /// recovery, so the resumed stream continues exactly where the
    /// durable prefix ended.
    ///
    /// The per-shard heartbeat memory is seeded too: every shard is
    /// treated as already knowing the recovered mark. Each shard
    /// relearns its *own* watermark from its own log during replay —
    /// pushing the global mark at it beforehand would race the replay
    /// and late-drop the entire durable prefix.
    pub(crate) fn seed_recovery(&mut self, next_seq: u64, high_water: Option<TimePoint>) {
        self.next_seq = next_seq;
        self.high_water = high_water;
        self.heartbeat_sent.fill(high_water);
    }

    /// The home shard a scope + hint pair resolves to: the owner of
    /// `home_hint` — clamped into the scope's bounding box, so a scoped
    /// plan always homes inside its own scope — or of the scope's
    /// center without a hint. Pure: registration uses exactly this
    /// computation, so the engine can derive a subscription's home (a
    /// plan-key ingredient) before deciding whether the plan already
    /// exists.
    #[must_use]
    pub fn home_for(&self, scope: &SpatialExtent, home_hint: Option<Point>) -> ShardId {
        let bbox = scope.bounding_box();
        let anchor = home_hint.map_or_else(
            || bbox.center(),
            |hint| {
                Point::new(
                    hint.x.clamp(bbox.min().x, bbox.max().x),
                    hint.y.clamp(bbox.min().y, bbox.max().y),
                )
            },
        );
        self.map.shard_for_point(anchor)
    }

    /// Registers a plan's first routing scope and returns its home
    /// shard (see [`ShardRouter::home_for`]).
    pub(crate) fn subscribe(
        &mut self,
        id: PlanId,
        scope: SpatialExtent,
        layers: Option<&[Layer]>,
        home_hint: Option<Point>,
    ) -> ShardId {
        let bbox = scope.bounding_box();
        let home = self.home_for(&scope, home_hint);
        if !bbox.contains_rect(&self.map.bounds()) {
            self.metrics.scoped_subscriptions += 1;
        }
        self.interests[home].push(Interest {
            id,
            bbox,
            scopes: vec![scope],
            layers: layer_mask(layers),
        });
        if let Some(bvh) = &mut self.bvhs[home] {
            bvh.insert(bbox);
        } else if self.interests[home].len() >= self.bvh_threshold.max(1) {
            self.rebuild_bvh(home);
        }
        self.mark_leaves(home, self.interests[home].len() - 1);
        home
    }

    /// Widens an existing plan's interest with a further subscriber's
    /// scope: the scope joins the precision list, the union bounding
    /// box grows, and the layer mask widens. The engine only calls this
    /// for scopes the plan has not seen yet, so a million structurally
    /// identical subscriptions over one region cost the router exactly
    /// one interest entry with one scope.
    pub(crate) fn add_scope(&mut self, id: PlanId, scope: SpatialExtent, layers: Option<&[Layer]>) {
        let Some((home, pos)) = self.locate(id) else {
            return;
        };
        let grew = {
            let interest = &mut self.interests[home][pos];
            let bbox = interest.bbox.union(&scope.bounding_box());
            let grew = bbox != interest.bbox;
            interest.bbox = bbox;
            interest.layers |= layer_mask(layers);
            interest.scopes.push(scope);
            grew
        };
        if grew {
            // BVH item boxes are immutable once inserted; a widened
            // union bbox needs the home shard's index rebuilt.
            self.rebuild_bvh(home);
        }
        self.mark_leaves(home, pos);
    }

    /// Sets the interest-grid leaf bits for the newest scope of
    /// `interests[home][pos]`.
    fn mark_leaves(&mut self, home: ShardId, pos: usize) {
        let scope = self.interests[home][pos]
            .scopes
            .last()
            .expect("interest holds at least one scope");
        for (leaf, cell) in self
            .interest_grid
            .leaf_rects_for_rect(&scope.bounding_box())
        {
            // Exact-coverage refinement: a bounding box overstates a
            // circular or polygonal scope by up to its whole corner
            // area, and at leaf granularity that marks interest on
            // cells the scope can never match. Testing the scope
            // against each cell keeps the mask tight, so points in the
            // uncovered residue route on the leaf lookup alone —
            // no precision query at all.
            if scope.intersects(&SpatialExtent::field(Field::rect(cell))) {
                self.leaf_masks[leaf] |= 1 << home;
            }
        }
    }

    /// The `(home shard, list position)` of a registered plan.
    fn locate(&self, id: PlanId) -> Option<(ShardId, usize)> {
        self.interests
            .iter()
            .enumerate()
            .find_map(|(shard, list)| list.iter().position(|i| i.id == id).map(|pos| (shard, pos)))
    }

    /// (Re)builds a home shard's BVH over its resident scope boxes, or
    /// drops it when the count fell back below the threshold.
    fn rebuild_bvh(&mut self, shard: ShardId) {
        let list = &self.interests[shard];
        self.bvhs[shard] = if list.len() >= self.bvh_threshold.max(1) {
            let rects: Vec<Rect> = list.iter().map(|i| i.bbox).collect();
            Some(Bvh::build(&rects))
        } else {
            None
        };
    }

    /// The home shard of a registered plan, if known.
    #[cfg(test)]
    #[must_use]
    pub(crate) fn home_of(&self, id: PlanId) -> Option<ShardId> {
        self.locate(id).map(|(shard, _)| shard)
    }

    /// Forgets a plan (its last subscriber left); returns its home
    /// shard if it was known.
    pub(crate) fn unsubscribe(&mut self, id: PlanId) -> Option<ShardId> {
        let (shard, pos) = self.locate(id)?;
        self.interests[shard].remove(pos);
        self.rebuild_leaf_masks();
        self.rebuild_bvh(shard);
        Some(shard)
    }

    /// Recomputes the leaf interest masks from scratch (unsubscribe is
    /// rare; ingestion never pays for this).
    fn rebuild_leaf_masks(&mut self) {
        for mask in &mut self.leaf_masks {
            *mask = 0;
        }
        for (shard, list) in self.interests.iter().enumerate() {
            for interest in list {
                for scope in &interest.scopes {
                    for (leaf, cell) in self
                        .interest_grid
                        .leaf_rects_for_rect(&scope.bounding_box())
                    {
                        // Same exact-coverage refinement as `mark_leaves`.
                        if scope.intersects(&SpatialExtent::field(Field::rect(cell))) {
                            self.leaf_masks[leaf] |= 1 << shard;
                        }
                    }
                }
            }
        }
    }

    /// Whether some plan homed on `shard` accepts the layer and has a
    /// subscriber routing scope *exactly* covering the point (leaf
    /// masks are bounding-box granular; this is the precision pass that
    /// trims the broadcast fan-out). Served by the per-shard BVH once
    /// the shard's interest count crossed the threshold, by the linear
    /// scan below it — both answer identically.
    fn covered_by_interest(&mut self, shard: ShardId, p: Point, layer: u8) -> bool {
        let covers = |i: &Interest| i.scopes.iter().any(|s| s.covers(p));
        if let Some(bvh) = &self.bvhs[shard] {
            self.scratch.clear();
            self.metrics.bvh_nodes_visited += bvh.query_point(p, &mut self.scratch);
            let list = &self.interests[shard];
            self.scratch
                .iter()
                .map(|&i| &list[i as usize])
                .any(|i| i.layers & layer != 0 && covers(i))
        } else {
            self.interests[shard]
                .iter()
                .any(|i| i.layers & layer != 0 && i.bbox.contains(p) && covers(i))
        }
    }

    /// Routes one instance into the per-shard pending batches and
    /// returns the shards whose batch just reached the flush threshold.
    pub fn route(&mut self, instance: EventInstance) -> Vec<ShardId> {
        self.route_at(instance, None)
    }

    /// Like [`ShardRouter::route`], with an explicit observer-local
    /// evaluation time used as the stream-clock sample and the shard
    /// reorder key (`None` = the instance's generation time).
    pub fn route_at(
        &mut self,
        instance: EventInstance,
        eval_at: Option<TimePoint>,
    ) -> Vec<ShardId> {
        // Direct router callers did not stamp an engine-entry time:
        // the ingest stage collapses onto the route stamp.
        let ingest = self.trace_stamp();
        self.route_at_traced(instance, eval_at, ingest)
    }

    /// A trace-clock stamp, or 0 with tracing off.
    pub(crate) fn trace_stamp(&self) -> u64 {
        self.trace_clock.as_ref().map_or(0, |c| c.now())
    }

    /// [`ShardRouter::route_at`] with an explicit engine-entry ingest
    /// stamp (the engine samples it before routing so `ingest <= route`
    /// reflects real queueing between the two).
    pub(crate) fn route_at_traced(
        &mut self,
        instance: EventInstance,
        eval_at: Option<TimePoint>,
        ingest: u64,
    ) -> Vec<ShardId> {
        let location = instance.estimated_location().representative();
        let t = eval_at.unwrap_or_else(|| instance.generation_time());
        let targets = self.target_mask(location, layer_bit(instance.layer()));
        let mut full = Vec::new();
        let route = self.trace_stamp();
        let (seq, prefix_high_water, trace) = self.stamp(t, ingest, route);
        if targets == 0 {
            // Nothing subscribed and no durable log to feed: the clock
            // advanced, the instance goes nowhere.
            return full;
        }
        if targets.count_ones() == 1 {
            // Single target: the instance moves — no clone, no Arc.
            let shard = targets.trailing_zeros() as ShardId;
            let item = ItemPayload::Owned(instance);
            if self.push_item(shard, seq, item, eval_at, prefix_high_water, trace) {
                full.push(shard);
            }
            return full;
        }
        // Broadcast: one allocation shared by every target copy.
        let shared = Arc::new(instance);
        let mut bits = targets;
        while bits != 0 {
            let shard = bits.trailing_zeros() as ShardId;
            bits &= bits - 1;
            let item = ItemPayload::Shared(Arc::clone(&shared));
            if self.push_item(shard, seq, item, eval_at, prefix_high_water, trace) {
                full.push(shard);
            }
        }
        full
    }

    /// Routes every row of a shared columnar chunk, iterating the
    /// batch's dense representative-point and generation-time columns
    /// instead of walking per-instance heap structures. Shards receive
    /// [`ItemPayload::Columnar`] references into the chunk; the full
    /// instance is only re-materialized downstream for rows that reach
    /// evaluation or durable logging.
    ///
    /// Sequence numbers, prefix high-water stamps, and the target
    /// selection (leaf mask + precision pass) are identical to routing
    /// the same instances one at a time through [`ShardRouter::route`].
    /// Returns the shards whose pending batch reached the flush
    /// threshold, deduplicated, in shard order.
    pub fn route_batch(&mut self, batch: &Arc<ColumnarBatch>) -> Vec<ShardId> {
        let mut full_mask: u64 = 0;
        // One route stamp per chunk, shared by every row: a per-row
        // clock read costs more than the routing itself on the columnar
        // path, and the rows' ingest stamps (taken at batch fill, all
        // before this call) stay `<=` the shared stamp.
        let route = self.trace_stamp();
        for row in 0..batch.len() {
            let location = batch.representatives()[row];
            let t = batch.generation_times()[row];
            let targets = self.target_mask(location, layer_bit(batch.layer(row)));
            let (seq, prefix_high_water, trace) = self.stamp(t, batch.ingest_stamp(row), route);
            let mut bits = targets;
            while bits != 0 {
                let shard = bits.trailing_zeros() as ShardId;
                bits &= bits - 1;
                let item = ItemPayload::Columnar(Arc::clone(batch), row as u32);
                if self.push_item(shard, seq, item, None, prefix_high_water, trace) {
                    full_mask |= 1 << shard;
                }
            }
        }
        let mut full = Vec::with_capacity(full_mask.count_ones() as usize);
        while full_mask != 0 {
            full.push(full_mask.trailing_zeros() as ShardId);
            full_mask &= full_mask - 1;
        }
        full
    }

    /// Advances the stream clock past `t` and consumes one sequence
    /// number, returning `(seq, prefix_high_water, trace)` for the
    /// routed item. The caller supplies the `route` stamp (taken once
    /// per instance on the scalar path, once per chunk on the columnar
    /// path) so `ingest..route` measures the real gap between engine
    /// entry and routing without a clock read per routed copy.
    fn stamp(
        &mut self,
        t: TimePoint,
        ingest: u64,
        route: u64,
    ) -> (u64, Option<TimePoint>, Option<ItemTrace>) {
        // The high-water mark over the strict prefix: stamped onto the
        // routed item so shard drop decisions replay the global run.
        let prefix_high_water = self.high_water;
        self.high_water = Some(self.high_water.map_or(t, |h| h.max(t)));
        self.metrics.routed += 1;
        let trace = self
            .trace_clock
            .as_ref()
            .map(|_| ItemTrace { ingest, route });
        (self.take_seq(), prefix_high_water, trace)
    }

    /// The delivery bitmask for an instance at `location` on `layer`
    /// (as a [`layer_bit`]): every interested shard that survives the
    /// precision pass, plus — under durable logging — the territorial
    /// owner unconditionally.
    ///
    /// The precision pass drops, at enqueue time, every shard whose
    /// resident subscriptions either sit on other layers or do not
    /// exactly cover the point. Workers re-check both anyway, so a skip
    /// can never lose a match — it only saves the delivery. Without
    /// `retain_owner` the owner is pruned like any other shard: an
    /// instance nobody subscribes to routes nowhere (the stream clock
    /// and sequence still advance, so watermark/late-drop decisions on
    /// the rest of the stream are untouched). With it, the owner always
    /// receives a copy so the operation reaches its shard's
    /// write-ahead log.
    fn target_mask(&mut self, location: Point, layer: u8) -> u64 {
        let owner = self.map.shard_for_point(location);
        let leaf = self.interest_grid.leaf_for_point(location);
        let mask = self.leaf_masks[leaf];
        if mask == 0 {
            self.metrics.owner_only += 1;
        }
        let mut targets = mask;
        let mut bits = if self.retain_owner {
            // The owner receives regardless; don't bill a precision
            // skip for a shard that stays in the mask.
            mask & !(1 << owner)
        } else {
            mask
        };
        while bits != 0 {
            let shard = bits.trailing_zeros() as ShardId;
            bits &= bits - 1;
            if !self.covered_by_interest(shard, location, layer) {
                self.metrics.precision_skipped += 1;
                targets &= !(1 << shard);
            }
        }
        if self.retain_owner {
            targets |= 1 << owner;
        }
        self.metrics.fanout += u64::from(targets.count_ones());
        targets
    }

    /// Appends one routed item to a shard's pending batch; returns
    /// whether the batch just reached the flush threshold.
    fn push_item(
        &mut self,
        shard: ShardId,
        seq: u64,
        payload: ItemPayload,
        eval_at: Option<TimePoint>,
        prefix_high_water: Option<TimePoint>,
        trace: Option<ItemTrace>,
    ) -> bool {
        let pending = &mut self.pending[shard];
        pending.push(BatchItem {
            seq,
            payload,
            eval_at,
            prefix_high_water,
            trace,
        });
        pending.len() >= self.batch_size
    }

    /// Takes the pending batch for `shard`, stamped with the current
    /// high-water mark and the number of operations in the stream's
    /// strict prefix.
    ///
    /// The stamp is `next_seq` — an *exclusive* bound ("this heartbeat
    /// summarizes every operation with `seq < stamp`") — not the last
    /// consumed sequence. The previous `next_seq - 1` (saturating)
    /// labelled a heartbeat cut before any ingest with seq 0, colliding
    /// with the first real operation's sequence in WAL replay ordering:
    /// a reader could not tell "covers operation 0" from "covers
    /// nothing". With the exclusive bound, 0 unambiguously means an
    /// empty prefix.
    pub fn take_batch(&mut self, shard: ShardId) -> Batch {
        self.metrics.batches_sent += 1;
        self.heartbeat_sent[shard] = self.high_water;
        Batch {
            instances: std::mem::take(&mut self.pending[shard]),
            high_water: self.high_water,
            seq: self.next_seq,
            enqueue: self.trace_stamp(),
        }
    }

    /// Whether `shard` would learn anything from a heartbeat-only batch:
    /// `true` when the global high-water mark advanced past the last one
    /// handed to it. Cutting heartbeats only on stream-clock advance is
    /// what amortizes the all-shard flush round to once per simulation
    /// tick instead of once per delivery — a repeated heartbeat is a
    /// semantic no-op for the shard's reorder buffer.
    #[must_use]
    pub fn needs_heartbeat(&self, shard: ShardId) -> bool {
        self.high_water.is_some() && self.heartbeat_sent[shard] != self.high_water
    }

    /// Number of instances pending for `shard`.
    #[must_use]
    pub fn pending_len(&self, shard: ShardId) -> usize {
        self.pending[shard].len()
    }

    /// Shards that still hold pending instances.
    #[must_use]
    pub fn pending_shards(&self) -> Vec<ShardId> {
        (0..self.pending.len())
            .filter(|&s| !self.pending[s].is_empty())
            .collect()
    }

    /// Records a batch lost to backpressure.
    pub(crate) fn note_dropped_batch(&mut self) {
        self.metrics.dropped_backpressure += 1;
    }

    /// Records a heartbeat-only flush elided because its target shard
    /// was idle and held nothing reordering.
    pub(crate) fn note_suppressed_heartbeat(&mut self) {
        self.metrics.heartbeats_suppressed += 1;
    }

    /// A live view of the counters (telemetry sampling reads routed /
    /// fanout / BVH traversal totals mid-run without disturbing them).
    #[must_use]
    pub fn metrics(&self) -> &RouterMetrics {
        &self.metrics
    }

    /// Surrenders the counters.
    pub(crate) fn take_metrics(&mut self) -> RouterMetrics {
        std::mem::take(&mut self.metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stem_core::{EventId, EventInstance, Layer, MoteId, ObserverId};
    use stem_spatial::Field;

    fn router(shards: usize, bvh_threshold: usize) -> ShardRouter {
        let map = ShardMap::build(
            Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
            shards,
        );
        ShardRouter::new(map, 1, bvh_threshold, true)
    }

    fn inst(t: u64, x: f64, y: f64) -> EventInstance {
        EventInstance::builder(
            ObserverId::Mote(MoteId::new(1)),
            EventId::new("e"),
            Layer::Sensor,
        )
        .generated(TimePoint::new(t), Point::new(x, y))
        .build()
    }

    fn rect_scope(x0: f64, y0: f64, x1: f64, y1: f64) -> SpatialExtent {
        SpatialExtent::field(Field::rect(Rect::new(
            Point::new(x0, y0),
            Point::new(x1, y1),
        )))
    }

    /// The empty-prefix case: a heartbeat cut before any ingest must
    /// not share a stamp with the first real operation. The batch stamp
    /// is the exclusive prefix bound — 0 means "covers nothing", and
    /// after the first operation (seq 0) the stamp is 1.
    #[test]
    fn watermark_stamp_is_unambiguous_on_an_empty_prefix() {
        let mut r = router(1, usize::MAX);
        let pre_ingest = r.take_batch(0);
        assert_eq!(pre_ingest.seq, 0, "empty prefix stamps 0");
        assert!(pre_ingest.high_water.is_none());

        let targets = r.route(inst(10, 5.0, 5.0));
        assert_eq!(targets, vec![0]);
        let first = r.take_batch(0);
        assert_eq!(first.instances[0].seq, 0, "the first operation is seq 0");
        assert_eq!(
            first.seq, 1,
            "a heartbeat covering operation 0 stamps the exclusive bound 1, \
             never colliding with the operation's own sequence"
        );
        assert_eq!(r.seq(), 1);
    }

    /// A scoped subscription's home hint is clamped into its scope, so
    /// the home shard always lies inside the scope's bounding box.
    #[test]
    fn scoped_home_hint_is_clamped_into_the_scope() {
        let mut r = router(4, usize::MAX);
        // Scope is the lower-left quadrant; the hint points at the
        // opposite corner of the world.
        let scope = rect_scope(0.0, 0.0, 40.0, 40.0);
        let home = r.subscribe(PlanId(0), scope, None, Some(Point::new(99.0, 99.0)));
        assert_eq!(
            home,
            r.map().shard_for_point(Point::new(40.0, 40.0)),
            "the hint clamps to the scope's nearest corner"
        );
        assert_eq!(r.take_metrics().scoped_subscriptions, 1);
    }

    /// BVH-backed and linear precision passes answer identically and
    /// the BVH path reports its traversal cost.
    #[test]
    fn bvh_precision_pass_matches_linear_scan() {
        let subscribe_all = |r: &mut ShardRouter| {
            for i in 0..12u64 {
                let f = i as f64;
                r.subscribe(
                    PlanId(i),
                    rect_scope(f * 8.0, f * 8.0, f * 8.0 + 6.0, f * 8.0 + 6.0),
                    None,
                    // One shared home so the precision scan sees all 12.
                    Some(Point::new(1.0, 1.0)),
                );
            }
        };
        let mut linear = router(4, usize::MAX);
        let mut bvh = router(4, 1);
        subscribe_all(&mut linear);
        subscribe_all(&mut bvh);
        for i in 0..200u64 {
            let p = Point::new((i as f64 * 7.3) % 100.0, (i as f64 * 3.1) % 100.0);
            let a = linear.route(inst(i, p.x, p.y));
            let b = bvh.route(inst(i, p.x, p.y));
            assert_eq!(a, b, "targets diverged at {p:?}");
        }
        let lm = linear.take_metrics();
        let bm = bvh.take_metrics();
        assert_eq!(lm.fanout, bm.fanout);
        assert_eq!(lm.precision_skipped, bm.precision_skipped);
        assert_eq!(lm.bvh_nodes_visited, 0, "linear side never descends");
        assert!(bm.bvh_nodes_visited > 0, "the BVH side reports its cost");
    }

    /// A plan whose interest unions two subscriber scopes routes every
    /// point exactly as two separate single-scope plans on the same
    /// home would: the union is a compaction of the routing tables, not
    /// a loss of precision. (Both scopes here resolve to the same home
    /// shard — sharing never *moves* a home, it only merges interests
    /// that already landed together.)
    #[test]
    fn union_scope_interest_routes_like_separate_interests() {
        let hint = Some(Point::new(1.0, 1.0));
        let mut split = router(4, usize::MAX);
        split.subscribe(PlanId(0), rect_scope(0.0, 0.0, 20.0, 20.0), None, hint);
        split.subscribe(PlanId(1), rect_scope(25.0, 25.0, 45.0, 45.0), None, hint);

        let mut shared = router(4, usize::MAX);
        shared.subscribe(PlanId(0), rect_scope(0.0, 0.0, 20.0, 20.0), None, hint);
        shared.add_scope(PlanId(0), rect_scope(25.0, 25.0, 45.0, 45.0), None);

        for i in 0..200u64 {
            let p = Point::new((i as f64 * 7.3) % 100.0, (i as f64 * 3.1) % 100.0);
            let a = split.route(inst(i, p.x, p.y));
            let b = shared.route(inst(i, p.x, p.y));
            assert_eq!(a, b, "targets diverged at {p:?}");
        }
        // The gap between the two scopes stays pruned: the union
        // *bounding box* covers (22.5, 22.5) but no exact scope does.
        assert!(!shared.covered_by_interest(
            shared.home_of(PlanId(0)).unwrap(),
            Point::new(22.5, 22.5),
            layer_bit(Layer::Sensor)
        ));
        assert_eq!(shared.unsubscribe(PlanId(0)), Some(0));
        assert!(shared.home_of(PlanId(0)).is_none());
    }
}
