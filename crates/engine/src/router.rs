//! The shard router: spatial partitioning, interest tracking, batching.

use crate::batch::{Batch, BatchItem};
use crate::config::ShardId;
use crate::metrics::RouterMetrics;
use crate::shard_map::{Grid, ShardMap};
use crate::subscription::SubscriptionId;
use stem_core::EventInstance;
use stem_spatial::Rect;
use stem_temporal::TimePoint;

/// Routes instances to shards and accumulates per-shard batches.
///
/// Every instance goes to the shard that *owns* its location under the
/// [`ShardMap`], plus — the broadcast path — every other shard that is
/// home to a subscription whose region covers the location. A
/// subscription lives on exactly one home shard (the owner of its
/// region's center), so detector state is never split and the match
/// multiset is independent of the shard count.
#[derive(Debug)]
pub struct ShardRouter {
    map: ShardMap,
    batch_size: usize,
    /// Per home shard: bounding boxes of resident subscriptions.
    interests: Vec<Vec<(SubscriptionId, Rect)>>,
    /// The interest index resolution: a fixed fine quadtree grid,
    /// independent of the (coarser) shard-territory grid so broadcast
    /// stays confined to actual region boundaries.
    interest_grid: Grid,
    /// Per interest-grid leaf: bitmask of shards homing a subscription
    /// whose bounding box touches the leaf. Routing is then O(1) per
    /// instance regardless of the subscription count; workers re-check
    /// exact region coverage, so the leaf granularity only costs an
    /// occasional extra delivery, never a missed one.
    leaf_masks: Vec<u64>,
    /// Per shard: the accumulating batch.
    pending: Vec<Vec<BatchItem>>,
    /// Maximum generation time seen across the whole stream.
    high_water: Option<TimePoint>,
    metrics: RouterMetrics,
}

impl ShardRouter {
    /// Interest-index depth: `4^6 = 4096` leaves (32 KiB of masks),
    /// fine enough that a subscription's interest footprint hugs its
    /// actual bounding box instead of whole shard territories.
    const INTEREST_DEPTH: u32 = 6;

    /// Creates a router over `map`, flushing batches at `batch_size`.
    #[must_use]
    pub fn new(map: ShardMap, batch_size: usize) -> Self {
        let shards = map.shard_count();
        let interest_grid = Grid::new(map.bounds(), Self::INTEREST_DEPTH);
        let leaves = interest_grid.leaf_count();
        ShardRouter {
            map,
            batch_size: batch_size.max(1),
            interests: vec![Vec::new(); shards],
            interest_grid,
            leaf_masks: vec![0; leaves],
            pending: vec![Vec::new(); shards],
            high_water: None,
            metrics: RouterMetrics::default(),
        }
    }

    /// The shard map in use.
    #[must_use]
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The router's global high-water mark.
    #[must_use]
    pub fn high_water(&self) -> Option<TimePoint> {
        self.high_water
    }

    /// Registers a subscription region and returns its home shard: the
    /// owner of the region's center.
    pub fn subscribe(&mut self, id: SubscriptionId, region_bbox: Rect) -> ShardId {
        let home = self.map.shard_for_point(region_bbox.center());
        self.interests[home].push((id, region_bbox));
        for leaf in self.interest_grid.leaves_for_rect(&region_bbox) {
            self.leaf_masks[leaf] |= 1 << home;
        }
        home
    }

    /// Forgets a subscription; returns its home shard if it was known.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> Option<ShardId> {
        for (shard, list) in self.interests.iter_mut().enumerate() {
            if let Some(pos) = list.iter().position(|(sid, _)| *sid == id) {
                list.remove(pos);
                let shard_id = shard;
                self.rebuild_leaf_masks();
                return Some(shard_id);
            }
        }
        None
    }

    /// Recomputes the leaf interest masks from scratch (unsubscribe is
    /// rare; ingestion never pays for this).
    fn rebuild_leaf_masks(&mut self) {
        for mask in &mut self.leaf_masks {
            *mask = 0;
        }
        for (shard, list) in self.interests.iter().enumerate() {
            for (_, bbox) in list {
                for leaf in self.interest_grid.leaves_for_rect(bbox) {
                    self.leaf_masks[leaf] |= 1 << shard;
                }
            }
        }
    }

    /// Routes one instance into the per-shard pending batches and
    /// returns the shards whose batch just reached the flush threshold.
    pub fn route(&mut self, instance: EventInstance) -> Vec<ShardId> {
        let t = instance.generation_time();
        // The high-water mark over the strict prefix: stamped onto the
        // routed item so shard drop decisions replay the global run.
        let prefix_high_water = self.high_water;
        self.high_water = Some(self.high_water.map_or(t, |h| h.max(t)));
        self.metrics.routed += 1;

        let location = instance.estimated_location().representative();
        let owner = self.map.shard_for_point(location);
        let leaf = self.interest_grid.leaf_for_point(location);
        // Fan out to every shard with leaf-level interest; the
        // territorial owner always receives the instance so watermark
        // and occupancy metrics stay complete even with no subscribers.
        let mask = self.leaf_masks[leaf] | (1 << owner);
        if self.leaf_masks[leaf] == 0 {
            self.metrics.owner_only += 1;
        }
        let mut targets = Vec::with_capacity(mask.count_ones() as usize);
        let mut bits = mask;
        while bits != 0 {
            let shard = bits.trailing_zeros() as ShardId;
            targets.push(shard);
            bits &= bits - 1;
        }
        self.metrics.fanout += targets.len() as u64;

        let last = targets.len() - 1;
        for &shard in &targets[..last] {
            self.pending[shard].push(BatchItem {
                instance: instance.clone(),
                prefix_high_water,
            });
        }
        self.pending[targets[last]].push(BatchItem {
            instance,
            prefix_high_water,
        });
        targets
            .into_iter()
            .filter(|&shard| self.pending[shard].len() >= self.batch_size)
            .collect()
    }

    /// Takes the pending batch for `shard`, stamped with the current
    /// high-water mark.
    pub fn take_batch(&mut self, shard: ShardId) -> Batch {
        self.metrics.batches_sent += 1;
        Batch {
            instances: std::mem::take(&mut self.pending[shard]),
            high_water: self.high_water,
        }
    }

    /// Shards that still hold pending instances.
    #[must_use]
    pub fn pending_shards(&self) -> Vec<ShardId> {
        (0..self.pending.len())
            .filter(|&s| !self.pending[s].is_empty())
            .collect()
    }

    /// Records a batch lost to backpressure.
    pub(crate) fn note_dropped_batch(&mut self) {
        self.metrics.dropped_backpressure += 1;
    }

    /// Surrenders the counters.
    pub(crate) fn take_metrics(&mut self) -> RouterMetrics {
        std::mem::take(&mut self.metrics)
    }
}
