//! The shard router: spatial partitioning, interest tracking, batching.

use crate::batch::{Batch, BatchItem};
use crate::config::ShardId;
use crate::metrics::RouterMetrics;
use crate::shard_map::{Grid, ShardMap};
use crate::subscription::SubscriptionId;
use stem_core::EventInstance;
use stem_spatial::{Point, Rect, SpatialExtent};
use stem_temporal::TimePoint;

/// One registered subscription region as the router sees it: the exact
/// region for precision checks plus its (cheaper) bounding box.
#[derive(Debug, Clone)]
struct Interest {
    id: SubscriptionId,
    bbox: Rect,
    region: SpatialExtent,
}

/// Routes instances to shards and accumulates per-shard batches.
///
/// Every instance goes to the shard that *owns* its location under the
/// [`ShardMap`], plus — the broadcast path — every other shard that is
/// home to a subscription whose region covers the location. A
/// subscription lives on exactly one home shard (the owner of its
/// region's center), so detector state is never split and the match
/// multiset is independent of the shard count.
#[derive(Debug)]
pub struct ShardRouter {
    map: ShardMap,
    batch_size: usize,
    /// Per home shard: regions of resident subscriptions.
    interests: Vec<Vec<Interest>>,
    /// The interest index resolution: a fixed fine quadtree grid,
    /// independent of the (coarser) shard-territory grid so broadcast
    /// stays confined to actual region boundaries.
    interest_grid: Grid,
    /// Per interest-grid leaf: bitmask of shards homing a subscription
    /// whose bounding box touches the leaf. Routing is then O(1) per
    /// instance regardless of the subscription count; workers re-check
    /// exact region coverage, so the leaf granularity only costs an
    /// occasional extra delivery, never a missed one.
    leaf_masks: Vec<u64>,
    /// Per shard: the accumulating batch.
    pending: Vec<Vec<BatchItem>>,
    /// Maximum generation time seen across the whole stream.
    high_water: Option<TimePoint>,
    /// The next global ingest sequence number (instances and silence
    /// probes each consume one, in arrival order).
    next_seq: u64,
    /// Per shard: the high-water mark last handed off in a batch, so
    /// heartbeat-only batches are cut only when the stream clock
    /// actually advanced for that shard (see [`ShardRouter::needs_heartbeat`]).
    heartbeat_sent: Vec<Option<TimePoint>>,
    metrics: RouterMetrics,
}

impl ShardRouter {
    /// Interest-index depth: `4^6 = 4096` leaves (32 KiB of masks),
    /// fine enough that a subscription's interest footprint hugs its
    /// actual bounding box instead of whole shard territories.
    const INTEREST_DEPTH: u32 = 6;

    /// Creates a router over `map`, flushing batches at `batch_size`.
    #[must_use]
    pub fn new(map: ShardMap, batch_size: usize) -> Self {
        let shards = map.shard_count();
        let interest_grid = Grid::new(map.bounds(), Self::INTEREST_DEPTH);
        let leaves = interest_grid.leaf_count();
        ShardRouter {
            map,
            batch_size: batch_size.max(1),
            interests: vec![Vec::new(); shards],
            interest_grid,
            leaf_masks: vec![0; leaves],
            pending: vec![Vec::new(); shards],
            high_water: None,
            next_seq: 0,
            heartbeat_sent: vec![None; shards],
            metrics: RouterMetrics::default(),
        }
    }

    /// The shard map in use.
    #[must_use]
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The router's global high-water mark.
    #[must_use]
    pub fn high_water(&self) -> Option<TimePoint> {
        self.high_water
    }

    /// The next global ingest sequence number.
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.next_seq
    }

    /// Consumes and returns one global ingest sequence number (the
    /// engine stamps silence probes from the same counter as instances,
    /// so the union of the per-shard logs is totally ordered).
    pub(crate) fn take_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Seeds the sequence counter and high-water mark after a crash
    /// recovery, so the resumed stream continues exactly where the
    /// durable prefix ended.
    ///
    /// The per-shard heartbeat memory is seeded too: every shard is
    /// treated as already knowing the recovered mark. Each shard
    /// relearns its *own* watermark from its own log during replay —
    /// pushing the global mark at it beforehand would race the replay
    /// and late-drop the entire durable prefix.
    pub(crate) fn seed_recovery(&mut self, next_seq: u64, high_water: Option<TimePoint>) {
        self.next_seq = next_seq;
        self.high_water = high_water;
        self.heartbeat_sent.fill(high_water);
    }

    /// Registers a subscription region and returns its home shard: the
    /// owner of `home_hint` when given, else of the region's center.
    pub fn subscribe(
        &mut self,
        id: SubscriptionId,
        region: SpatialExtent,
        home_hint: Option<Point>,
    ) -> ShardId {
        let bbox = region.bounding_box();
        let home = self
            .map
            .shard_for_point(home_hint.unwrap_or_else(|| bbox.center()));
        self.interests[home].push(Interest { id, bbox, region });
        for leaf in self.interest_grid.leaves_for_rect(&bbox) {
            self.leaf_masks[leaf] |= 1 << home;
        }
        home
    }

    /// The home shard of a registered subscription, if known.
    #[must_use]
    pub fn home_of(&self, id: SubscriptionId) -> Option<ShardId> {
        self.interests
            .iter()
            .position(|list| list.iter().any(|i| i.id == id))
    }

    /// Forgets a subscription; returns its home shard if it was known.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> Option<ShardId> {
        for (shard, list) in self.interests.iter_mut().enumerate() {
            if let Some(pos) = list.iter().position(|i| i.id == id) {
                list.remove(pos);
                let shard_id = shard;
                self.rebuild_leaf_masks();
                return Some(shard_id);
            }
        }
        None
    }

    /// Recomputes the leaf interest masks from scratch (unsubscribe is
    /// rare; ingestion never pays for this).
    fn rebuild_leaf_masks(&mut self) {
        for mask in &mut self.leaf_masks {
            *mask = 0;
        }
        for (shard, list) in self.interests.iter().enumerate() {
            for interest in list {
                for leaf in self.interest_grid.leaves_for_rect(&interest.bbox) {
                    self.leaf_masks[leaf] |= 1 << shard;
                }
            }
        }
    }

    /// Whether some subscription homed on `shard` *exactly* covers the
    /// point (leaf masks are bounding-box granular; this is the
    /// precision pass that trims the broadcast fan-out).
    fn covered_by_interest(&self, shard: ShardId, p: Point) -> bool {
        self.interests[shard]
            .iter()
            .any(|i| i.bbox.contains(p) && i.region.covers(p))
    }

    /// Routes one instance into the per-shard pending batches and
    /// returns the shards whose batch just reached the flush threshold.
    pub fn route(&mut self, instance: EventInstance) -> Vec<ShardId> {
        self.route_at(instance, None)
    }

    /// Like [`ShardRouter::route`], with an explicit observer-local
    /// evaluation time used as the stream-clock sample and the shard
    /// reorder key (`None` = the instance's generation time).
    pub fn route_at(
        &mut self,
        instance: EventInstance,
        eval_at: Option<TimePoint>,
    ) -> Vec<ShardId> {
        let t = eval_at.unwrap_or_else(|| instance.generation_time());
        // The high-water mark over the strict prefix: stamped onto the
        // routed item so shard drop decisions replay the global run.
        let prefix_high_water = self.high_water;
        self.high_water = Some(self.high_water.map_or(t, |h| h.max(t)));
        let seq = self.take_seq();
        self.metrics.routed += 1;

        let location = instance.estimated_location().representative();
        let owner = self.map.shard_for_point(location);
        let leaf = self.interest_grid.leaf_for_point(location);
        // Fan out to every shard with leaf-level interest; the
        // territorial owner always receives the instance so watermark
        // and occupancy metrics stay complete even with no subscribers.
        let mask = self.leaf_masks[leaf] | (1 << owner);
        if self.leaf_masks[leaf] == 0 {
            self.metrics.owner_only += 1;
        }
        let mut targets = Vec::with_capacity(mask.count_ones() as usize);
        let mut bits = mask;
        while bits != 0 {
            let shard = bits.trailing_zeros() as ShardId;
            bits &= bits - 1;
            // Precision pass: beyond the owner (which always receives),
            // only deliver where a resident subscription's exact region
            // covers the point. Workers re-check coverage anyway, so a
            // skip can never lose a match — it only saves the delivery.
            if shard != owner && !self.covered_by_interest(shard, location) {
                self.metrics.precision_skipped += 1;
                continue;
            }
            targets.push(shard);
        }
        self.metrics.fanout += targets.len() as u64;

        let last = targets.len() - 1;
        for &shard in &targets[..last] {
            self.pending[shard].push(BatchItem {
                seq,
                instance: instance.clone(),
                eval_at,
                prefix_high_water,
            });
        }
        self.pending[targets[last]].push(BatchItem {
            seq,
            instance,
            eval_at,
            prefix_high_water,
        });
        targets
            .into_iter()
            .filter(|&shard| self.pending[shard].len() >= self.batch_size)
            .collect()
    }

    /// Takes the pending batch for `shard`, stamped with the current
    /// high-water mark and the last consumed sequence number.
    pub fn take_batch(&mut self, shard: ShardId) -> Batch {
        self.metrics.batches_sent += 1;
        self.heartbeat_sent[shard] = self.high_water;
        Batch {
            instances: std::mem::take(&mut self.pending[shard]),
            high_water: self.high_water,
            seq: self.next_seq.saturating_sub(1),
        }
    }

    /// Whether `shard` would learn anything from a heartbeat-only batch:
    /// `true` when the global high-water mark advanced past the last one
    /// handed to it. Cutting heartbeats only on stream-clock advance is
    /// what amortizes the all-shard flush round to once per simulation
    /// tick instead of once per delivery — a repeated heartbeat is a
    /// semantic no-op for the shard's reorder buffer.
    #[must_use]
    pub fn needs_heartbeat(&self, shard: ShardId) -> bool {
        self.high_water.is_some() && self.heartbeat_sent[shard] != self.high_water
    }

    /// Number of instances pending for `shard`.
    #[must_use]
    pub fn pending_len(&self, shard: ShardId) -> usize {
        self.pending[shard].len()
    }

    /// Shards that still hold pending instances.
    #[must_use]
    pub fn pending_shards(&self) -> Vec<ShardId> {
        (0..self.pending.len())
            .filter(|&s| !self.pending[s].is_empty())
            .collect()
    }

    /// Records a batch lost to backpressure.
    pub(crate) fn note_dropped_batch(&mut self) {
        self.metrics.dropped_backpressure += 1;
    }

    /// Surrenders the counters.
    pub(crate) fn take_metrics(&mut self) -> RouterMetrics {
        std::mem::take(&mut self.metrics)
    }
}
