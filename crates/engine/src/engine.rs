//! The engine facade: lifecycle, ingestion, subscription management,
//! crash recovery.

use crate::config::{
    BackpressurePolicy, CheckpointPolicy, Durability, EngineConfig, ExecutionMode, ShardId,
    TelemetryPolicy, TracePolicy, WatchPolicy,
};
use crate::metrics::EngineReport;
use crate::plan::{plan_key, PlanId};
use crate::router::ShardRouter;
use crate::shard_map::ShardMap;
use crate::slot::ShardSlot;
use crate::subscription::{Subscription, SubscriptionId};
use crate::trace::{FlightRing, TraceHandle, TraceReport, WorkerTrace};
use crate::worker::{ShardMessage, ShardWorker, SnapContext, SubscriptionState, WorkerObs};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;
use stem_core::timing::{Clock, SpanToken};
use stem_core::TraceClock;
use stem_core::{ColumnarBatch, EventInstance, InstanceSource};
use stem_obs::{ObsRegistry, Recorder, Stage};
use stem_snap::ShardSnapshot;
use stem_temporal::TimePoint;
use stem_wal::{read_shard_tail, wal_shards, RecoveredShard, ShardWal, WalRecord};
use stem_watch::{HealthHandle, Watcher};

/// The engine thread's telemetry state: its own recorder (routing and
/// barrier spans) plus the sampling cadence. (Queue-depth gauges come
/// from the engine's per-shard sent counters, which live on the engine
/// itself — the barrier needs them with telemetry off too.)
struct EngineObs {
    registry: Arc<ObsRegistry>,
    clock: Clock,
    recorder: Recorder,
    every_batches: u64,
    batches_since_sample: u64,
}

/// How shard workers are driven.
enum Backend {
    /// Workers run inline on the caller's thread, in shard order.
    Inline(Vec<ShardWorker>),
    /// One thread per shard behind a steal-queue slot (see
    /// [`ShardSlot`]): barriers skip clean shards entirely and drain
    /// dirty ones inline instead of waiting for a wakeup.
    Threaded {
        slots: Vec<Arc<ShardSlot>>,
        handles: Vec<JoinHandle<crate::metrics::ShardMetrics>>,
    },
}

/// One live shared detector plan in the engine's registry: the
/// canonical template every structurally-identical subscription on the
/// same home shard collapses into. The entry tracks how many
/// subscribers ride the plan (last-out retires it) and which routing
/// scopes the plan's router interest already unions.
struct PlanEntry {
    /// The canonical template key ([`plan_key`]) — removed from the
    /// dedupe map when the last subscriber leaves.
    key: String,
    /// The plan's home shard (every subscriber of the plan lives here).
    home: ShardId,
    /// Live subscriber count.
    subscribers: u64,
    /// Debug-rendered scopes already added to the router interest, so
    /// identical scopes don't rebuild the BVH or re-union the bbox.
    scopes: BTreeSet<String>,
}

/// The streaming runtime. See the crate docs for the architecture.
///
/// Lifecycle: [`Engine::start`] → [`Engine::subscribe`] /
/// [`Engine::ingest`] (interleaved freely) → [`Engine::finish`].
pub struct Engine {
    config: EngineConfig,
    router: ShardRouter,
    backend: Backend,
    next_subscription: u64,
    /// Canonical template key → shared plan (the dedupe map).
    plan_keys: HashMap<String, PlanId>,
    /// Live plans by raw id.
    plan_entries: BTreeMap<u64, PlanEntry>,
    /// Subscription → its plan (unsubscribe / silence-probe lookup).
    sub_plans: HashMap<u64, PlanId>,
    /// Next plan id — dense, allocated in registration order so a
    /// recovery replaying the same subscriptions re-derives the same
    /// ids.
    next_plan: u64,
    /// Messages sent per shard over the engine's lifetime. Compared
    /// against each slot's processed counter: equality proves the shard
    /// clean, and [`Engine::sync`] skips it without any cross-thread
    /// traffic — the amortization that makes a barrier per delivery
    /// affordable on the station ingest path. (Also the queue-depth
    /// numerator for telemetry sampling.)
    sent_msgs: Vec<u64>,
    /// First ingest sequence *not* guaranteed durable across every
    /// shard log (0 without recovery): where an upstream re-feed must
    /// resume after [`Engine::recover`].
    resume_seq: u64,
    /// The next checkpoint epoch (continues past a recovered
    /// directory's largest epoch, torn files included, so a snapshot
    /// file name is never reused).
    epoch: u64,
    /// Batches handed to shard workers since the last checkpoint
    /// ([`CheckpointPolicy::EveryNBatches`]).
    batches_since_checkpoint: u64,
    /// The stream-clock high-water mark at the last checkpoint
    /// ([`CheckpointPolicy::EveryTicks`]).
    checkpoint_high_water: Option<TimePoint>,
    started: Instant,
    /// Telemetry state (None with [`TelemetryPolicy::Off`]).
    obs: Option<EngineObs>,
    /// The provenance trace clock every stage stamps against — wall
    /// nanos in threaded mode, a shared virtual counter in
    /// deterministic mode (`None` with [`TracePolicy::Off`]).
    trace_clock: Option<Arc<TraceClock>>,
    /// Per-shard flight-recorder rings (empty with [`TracePolicy::Off`]);
    /// the workers write, [`Engine::trace`] and shutdown read.
    trace_rings: Vec<Arc<Mutex<FlightRing>>>,
    /// The self-monitoring watchdog (`None` with [`WatchPolicy::Off`]):
    /// fed every telemetry snapshot [`Engine::sample`] cuts, shared
    /// with [`Engine::health`] handles.
    watch: Option<Arc<Mutex<Watcher>>>,
    /// Which run over this durable state this is: 0 for a fresh start,
    /// bumped by every [`Engine::recover`] (persisted in the WAL
    /// directory's `run-epoch` file). Stamped into exported telemetry,
    /// trace, and alert records so consumers can key on `(epoch, seq)`
    /// across restarts instead of trusting raw seq continuity.
    run_epoch: u64,
}

impl Engine {
    /// Builds the shard map, spawns the workers (or arranges them
    /// inline in deterministic mode), and starts the clock.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid ([`EngineConfig::validate`]).
    #[must_use]
    pub fn start(config: EngineConfig) -> Self {
        let problems = config.validate();
        assert!(problems.is_empty(), "invalid EngineConfig: {problems:?}");
        let map = ShardMap::build(config.world_bounds, config.shard_count);
        // Each shard's owned region — the union of its Z-order cells —
        // is where the watcher locates that shard's meta events. Read
        // off the map before the router takes ownership of it.
        let shard_regions: Vec<stem_spatial::Rect> = match config.watch {
            WatchPolicy::Off => Vec::new(),
            WatchPolicy::Enabled { .. } => (0..config.shard_count)
                .map(|shard| {
                    map.cells_of_shard(shard)
                        .into_iter()
                        .reduce(|a, b| a.union(&b))
                        .unwrap_or(config.world_bounds)
                })
                .collect(),
        };
        // Under durable logging every operation must reach its owner
        // shard's write-ahead log; without it the router may drop
        // deliveries nothing subscribes to at enqueue time.
        let retain_owner = matches!(config.durability, Durability::Wal { .. });
        let mut router = ShardRouter::new(
            map,
            config.batch_size,
            config.interest_bvh_threshold,
            retain_owner,
        );
        // The trace clock mirrors the telemetry clock split: wall nanos
        // in threaded mode, one shared virtual counter in deterministic
        // mode so stage stamps are bit-reproducible.
        let trace_clock = match (config.trace, config.mode) {
            (TracePolicy::Off, _) => None,
            (_, ExecutionMode::Deterministic) => Some(Arc::new(TraceClock::deterministic())),
            (_, ExecutionMode::Threaded) => Some(Arc::new(TraceClock::wall())),
        };
        let trace_rings: Vec<Arc<Mutex<FlightRing>>> = if trace_clock.is_some() {
            (0..config.shard_count)
                .map(|_| Arc::new(Mutex::new(FlightRing::new(config.trace_ring))))
                .collect()
        } else {
            Vec::new()
        };
        if let Some(clock) = &trace_clock {
            router.set_trace_clock(Arc::clone(clock));
        }
        // Deterministic runs time spans on per-producer virtual clocks
        // (each span counts the clock events it encloses), so the
        // telemetry output itself is bit-reproducible; threaded runs
        // use wall nanos.
        let make_clock = || match config.mode {
            ExecutionMode::Deterministic => Clock::virtual_ticks(),
            ExecutionMode::Threaded => Clock::wall(),
        };
        let registry = match &config.telemetry {
            TelemetryPolicy::Off => None,
            TelemetryPolicy::Sampled { ring, export, .. } => Some(Arc::new(
                ObsRegistry::new(config.shard_count, *ring, export.as_deref())
                    .unwrap_or_else(|e| panic!("open telemetry exporter: {e}")),
            )),
        };
        let make_worker = |shard: ShardId| {
            let (wal, snap) = match &config.durability {
                Durability::None => (None, None),
                Durability::Wal { dir, fsync } => (
                    Some(
                        ShardWal::open(dir, shard, config.wal_segment_bytes, *fsync)
                            .unwrap_or_else(|e| panic!("open wal for shard {shard}: {e}")),
                    ),
                    Some(SnapContext {
                        dir: dir.clone(),
                        retain: config.snapshot_retain.max(2),
                    }),
                ),
            };
            let worker_obs = registry
                .as_ref()
                .map(|r| WorkerObs::new(Arc::clone(r), make_clock()));
            let worker_trace = trace_clock.as_ref().map(|clock| {
                WorkerTrace::new(
                    Arc::clone(clock),
                    config.trace,
                    Arc::clone(&trace_rings[shard]),
                )
            });
            ShardWorker::new(
                shard,
                config.watermark_slack,
                wal,
                snap,
                config.wal_checkpoint_every,
                worker_obs,
                worker_trace,
            )
        };
        let backend = match config.mode {
            ExecutionMode::Deterministic => {
                Backend::Inline((0..config.shard_count).map(make_worker).collect())
            }
            ExecutionMode::Threaded => {
                let mut slots = Vec::with_capacity(config.shard_count);
                let mut handles = Vec::with_capacity(config.shard_count);
                for shard in 0..config.shard_count {
                    let slot = Arc::new(ShardSlot::new(make_worker(shard), config.queue_capacity));
                    let runner = Arc::clone(&slot);
                    let handle = std::thread::Builder::new()
                        .name(format!("stem-engine-shard-{shard}"))
                        .spawn(move || runner.run())
                        .expect("spawn shard worker");
                    slots.push(slot);
                    handles.push(handle);
                }
                Backend::Threaded { slots, handles }
            }
        };
        let watch = match &config.watch {
            WatchPolicy::Off => None,
            WatchPolicy::Enabled { ring, export } => {
                let mut specs =
                    stem_watch::builtin_watchers(config.checkpoint != CheckpointPolicy::Never);
                specs.extend(config.watch_specs.iter().cloned());
                Some(Arc::new(Mutex::new(
                    Watcher::new(
                        specs,
                        *ring,
                        export.as_deref(),
                        shard_regions,
                        config.world_bounds,
                    )
                    .unwrap_or_else(|e| panic!("open alert exporter: {e}")),
                )))
            }
        };
        let sent_msgs = vec![0; config.shard_count];
        let obs = registry.map(|registry| {
            let every_batches = match &config.telemetry {
                TelemetryPolicy::Sampled { every_batches, .. } => (*every_batches).max(1),
                TelemetryPolicy::Off => unreachable!("registry implies Sampled"),
            };
            EngineObs {
                registry,
                clock: make_clock(),
                recorder: Recorder::new(),
                every_batches,
                batches_since_sample: 0,
            }
        });
        Engine {
            config,
            router,
            backend,
            next_subscription: 0,
            plan_keys: HashMap::new(),
            plan_entries: BTreeMap::new(),
            sub_plans: HashMap::new(),
            next_plan: 0,
            sent_msgs,
            resume_seq: 0,
            epoch: 0,
            batches_since_checkpoint: 0,
            checkpoint_high_water: None,
            started: Instant::now(),
            obs,
            trace_clock,
            trace_rings,
            watch,
            run_epoch: 0,
        }
    }

    /// The live health view — the watchdog's alert ring and eviction
    /// count — for out-of-band consumers (a `stemtop`-style alert pane)
    /// and end-of-run inspection. `None` with [`WatchPolicy::Off`].
    #[must_use]
    pub fn health(&self) -> Option<HealthHandle> {
        self.watch
            .as_ref()
            .map(|w| HealthHandle::new(Arc::clone(w)))
    }

    /// Which run over this durable state this is (0 for a fresh start;
    /// [`Engine::recover`] bumps it). Exported telemetry, trace, and
    /// alert records carry it so downstream consumers key on
    /// `(epoch, seq)`.
    #[must_use]
    pub fn run_epoch(&self) -> u64 {
        self.run_epoch
    }

    /// Propagates a recovered run epoch into every exporter that stamps
    /// records with it.
    fn set_run_epoch(&mut self, epoch: u64) {
        self.run_epoch = epoch;
        if let Some(o) = &self.obs {
            o.registry.set_epoch(epoch);
        }
        if let Some(watch) = &self.watch {
            watch.lock().expect("watcher poisoned").set_epoch(epoch);
        }
    }

    /// The live flight-recorder view, for out-of-band consumers (a
    /// `stemtop`-style lineage pane polling the rings). `None` with
    /// [`TracePolicy::Off`].
    #[must_use]
    pub fn trace(&self) -> Option<TraceHandle> {
        (!self.trace_rings.is_empty()).then(|| TraceHandle::new(self.trace_rings.clone()))
    }

    /// The live telemetry registry, for out-of-band consumers (a
    /// `stemtop`-style monitor polling [`ObsRegistry::latest`], or the
    /// scenario driver recording its fold-back spans). `None` with
    /// [`TelemetryPolicy::Off`].
    #[must_use]
    pub fn obs(&self) -> Option<Arc<ObsRegistry>> {
        self.obs.as_ref().map(|o| Arc::clone(&o.registry))
    }

    /// Opens an engine-thread telemetry span.
    fn obs_span(&self) -> Option<SpanToken> {
        self.obs.as_ref().map(|o| o.clock.start())
    }

    /// Closes an engine-thread telemetry span: one histogram sample.
    fn obs_record(&mut self, stage: Stage, token: Option<SpanToken>) {
        self.obs_record_minus(stage, token, 0);
    }

    /// Closes a span but discounts `minus` nanoseconds — the barrier
    /// path uses it to subtract stolen shard work (already recorded
    /// under its real stages on the worker recorders) so `barrier_wait`
    /// measures coordination, not relocated evaluation.
    fn obs_record_minus(&mut self, stage: Stage, token: Option<SpanToken>, minus: u64) {
        if let (Some(o), Some(t)) = (self.obs.as_mut(), token) {
            let elapsed = o.clock.elapsed(&t).saturating_sub(minus);
            o.recorder.record_stage(stage, elapsed);
        }
    }

    /// Cuts a telemetry snapshot if enough batches went out since the
    /// last one: refreshes the engine gauges from the router's live
    /// counters, publishes the engine recorder, and has the registry
    /// merge every slot into the ring (and the exporter, if attached).
    fn maybe_sample(&mut self) {
        let due = self
            .obs
            .as_ref()
            .is_some_and(|o| o.batches_since_sample >= o.every_batches);
        if due {
            self.sample();
        }
    }

    /// The live plan-registry stats: `(plans_active, plan_subscribers,
    /// plan_subscribers_max)`. `subscribers / active` is the engine's
    /// dedupe ratio.
    fn plan_stats(&self) -> (u64, u64, u64) {
        let active = self.plan_entries.len() as u64;
        let mut subscribers = 0u64;
        let mut max = 0u64;
        for entry in self.plan_entries.values() {
            subscribers += entry.subscribers;
            max = max.max(entry.subscribers);
        }
        (active, subscribers, max)
    }

    /// Unconditionally cuts a telemetry snapshot (no-op with telemetry
    /// off).
    fn sample(&mut self) {
        let high_water = self.router.high_water();
        let router_metrics = self.router.metrics();
        let routed = router_metrics.routed;
        let fanout = router_metrics.fanout;
        let bvh_nodes = router_metrics.bvh_nodes_visited;
        let precision_skipped = router_metrics.precision_skipped;
        let (plans_active, plan_subscribers, plan_subscribers_max) = self.plan_stats();
        let sent = self.sent_msgs.clone();
        // How far the stream clock has run past the last completed
        // checkpoint — what the snapshot-age watcher reads.
        let checkpoint_age = match self.config.checkpoint {
            CheckpointPolicy::Never => None,
            _ => Some(high_water.map_or(0, |hw| {
                let last = self.checkpoint_high_water.map_or(0, TimePoint::ticks);
                hw.ticks().saturating_sub(last)
            })),
        };
        let Some(o) = self.obs.as_mut() else {
            return;
        };
        o.batches_since_sample = 0;
        o.recorder.set_gauge("routed", routed);
        o.recorder.set_gauge("fanout", fanout);
        o.recorder.set_gauge("bvh_nodes", bvh_nodes);
        o.recorder.set_gauge("precision_skipped", precision_skipped);
        o.recorder.set_gauge("plans_active", plans_active);
        o.recorder.set_gauge("plan_subscribers", plan_subscribers);
        o.recorder
            .set_gauge("plan_subscribers_max", plan_subscribers_max);
        if let Some(age) = checkpoint_age {
            o.recorder.set_gauge("checkpoint_age_ticks", age);
        }
        o.registry.publish_engine(&o.recorder);
        let snapshot = o.registry.sample(high_water.map(TimePoint::ticks), &sent);
        // The watchdog runs here, at sampling cadence, on the snapshot
        // just cut: zero cost on the per-event hot path, and the seq
        // time axis keeps deterministic runs bit-identical.
        if let Some(watch) = &self.watch {
            let _ = watch.lock().expect("watcher poisoned").observe(&snapshot);
        }
    }

    /// The configuration the engine runs with.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Registers a subscription on its home shard (the owner of its
    /// routing scope's center, or of the home hint clamped into the
    /// scope) and returns its id.
    ///
    /// Ordering: the subscription observes every instance its home
    /// shard's reorder buffer releases after this call — all later
    /// ingests, plus any earlier ones that actually reached the shard
    /// and are still held behind the watermark at registration time.
    /// (Without durable logging the router drops deliveries no
    /// then-registered subscription covers, so a late subscriber only
    /// sees held instances that some earlier interest — or the owner
    /// copy kept by [`Durability::Wal`] — brought to its home shard.)
    pub fn subscribe(&mut self, subscription: Subscription) -> SubscriptionId {
        let id = SubscriptionId(self.next_subscription);
        self.next_subscription += 1;
        let scope = subscription.routing_scope().clone();
        let home = self.router.home_for(&scope, subscription.home_hint);
        let key = plan_key(&subscription, home, self.config.plan_sharing, id);
        let plan = match self.plan_keys.get(&key) {
            Some(&plan) => {
                // Join an existing plan: one more subscriber on the
                // same detector instance. Widen the router interest
                // only if this scope is genuinely new to the plan.
                let entry = self
                    .plan_entries
                    .get_mut(&plan.raw())
                    .expect("keyed plan has an entry");
                entry.subscribers += 1;
                if entry.scopes.insert(format!("{scope:?}")) {
                    self.router
                        .add_scope(plan, scope, subscription.layers.as_deref());
                }
                plan
            }
            None => {
                let plan = PlanId(self.next_plan);
                self.next_plan += 1;
                let scope_tag = format!("{scope:?}");
                let routed_home = self.router.subscribe(
                    plan,
                    scope,
                    subscription.layers.as_deref(),
                    subscription.home_hint,
                );
                debug_assert_eq!(routed_home, home, "home_for disagrees with subscribe");
                self.plan_keys.insert(key.clone(), plan);
                self.plan_entries.insert(
                    plan.raw(),
                    PlanEntry {
                        key,
                        home,
                        subscribers: 1,
                        scopes: BTreeSet::from([scope_tag]),
                    },
                );
                plan
            }
        };
        self.sub_plans.insert(id.raw(), plan);
        let state = SubscriptionState::compile(id, plan, subscription);
        // Flush anything already routed so registration order is
        // preserved relative to the instance stream.
        self.flush_shard(home);
        self.send(home, ShardMessage::Subscribe(Box::new(state)));
        id
    }

    /// Retires a subscription. Returns `false` if the id is unknown.
    ///
    /// Instances still held behind the watermark at this point are
    /// forfeited: they release after the retirement takes effect and
    /// the subscription no longer observes them.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> bool {
        let Some(plan) = self.sub_plans.remove(&id.raw()) else {
            return false;
        };
        let entry = self
            .plan_entries
            .get_mut(&plan.raw())
            .expect("subscribed plan has an entry");
        entry.subscribers -= 1;
        let home = entry.home;
        if entry.subscribers == 0 {
            // Last subscriber out retires the shared plan: drop the
            // dedupe key and the router interest with it.
            let entry = self
                .plan_entries
                .remove(&plan.raw())
                .expect("entry checked above");
            self.plan_keys.remove(&entry.key);
            let removed = self.router.unsubscribe(plan);
            debug_assert_eq!(removed, Some(home), "router lost a live plan interest");
        }
        self.flush_shard(home);
        self.send(home, ShardMessage::Unsubscribe(id));
        true
    }

    /// Ingests one instance: routes it (owner shard + broadcast to
    /// interested shards) and hands off any batch that filled up.
    pub fn ingest(&mut self, instance: EventInstance) {
        // The provenance ingest stamp is taken at engine entry, before
        // any routing work, so per-stage deltas measure the stages.
        let ingest_stamp = self.router.trace_stamp();
        let ingest_token = self.obs_span();
        let route_token = self.obs_span();
        let full = self.router.route_at_traced(instance, None, ingest_stamp);
        self.obs_record(Stage::Route, route_token);
        for shard in full {
            self.flush_shard(shard);
        }
        self.obs_record(Stage::Ingest, ingest_token);
        self.maybe_checkpoint();
        self.maybe_sample();
    }

    /// Ingests one instance with an explicit observer-local evaluation
    /// time: `at` becomes the stream-clock sample, the reorder key, and
    /// the clock pattern/sustained evaluation runs on — the station
    /// ingest path, where instances arrive (and are evaluated) later
    /// than they were generated upstream.
    pub fn ingest_at(&mut self, instance: EventInstance, at: TimePoint) {
        let ingest_stamp = self.router.trace_stamp();
        let ingest_token = self.obs_span();
        let route_token = self.obs_span();
        let full = self
            .router
            .route_at_traced(instance, Some(at), ingest_stamp);
        self.obs_record(Stage::Route, route_token);
        for shard in full {
            self.flush_shard(shard);
        }
        self.obs_record(Stage::Ingest, ingest_token);
        self.maybe_checkpoint();
        self.maybe_sample();
    }

    /// Ingests an entire stream through the columnar batch path:
    /// instances are gathered into arena-backed [`ColumnarBatch`]
    /// chunks (one `batch_size` chunk at a time) and the router, the
    /// interest masks, and the precision pass iterate the chunk's flat
    /// columns instead of touching each instance's heap allocations.
    /// Shard workers receive shared references into the chunk and only
    /// re-materialize the rows that actually reach evaluation or the
    /// write-ahead log. Chunks are recycled through a small pool once
    /// every shard has dropped its reference, so steady-state ingest
    /// reuses the same arenas instead of reallocating per chunk.
    ///
    /// Semantically identical to calling [`Engine::ingest`] per
    /// instance — same routing, same sequence stamps, same
    /// notifications (the columnar-equivalence tests pin this down).
    ///
    /// Accepts owned instances or references: the columnar build only
    /// *reads* each instance (columns and arena rows are copies), so a
    /// caller that keeps its stream can pass `stream.iter()` and skip
    /// a full deep-clone pass.
    pub fn ingest_all<I>(&mut self, instances: I)
    where
        I: IntoIterator,
        I::Item: std::borrow::Borrow<EventInstance>,
    {
        use std::borrow::Borrow;
        // Chunks the pool keeps alive waiting for shard references to
        // drop; beyond this the oldest is released to the allocator.
        const POOL_DEPTH: usize = 8;
        let chunk = self.config.batch_size.max(1);
        let mut iter = instances.into_iter();
        let mut pool: Vec<Arc<ColumnarBatch>> = Vec::new();
        let mut batch = ColumnarBatch::with_capacity(chunk);
        loop {
            let build_token = self.obs_span();
            // Columnar rows carry their ingest stamp in a parallel
            // column, so batch routing keeps per-instance provenance
            // without touching the instances again. One stamp per
            // chunk fill: all rows of a chunk entered the engine in
            // the same call, and a clock read per row is the dominant
            // tracing cost on this path.
            let ingest_stamp = self.trace_clock.as_ref().map(|clock| clock.now());
            while batch.len() < chunk {
                let Some(instance) = iter.next() else { break };
                match ingest_stamp {
                    Some(stamp) => batch.push_stamped(instance.borrow(), stamp),
                    None => batch.push(instance.borrow()),
                };
            }
            self.obs_record(Stage::BatchBuild, build_token);
            if batch.is_empty() {
                break;
            }
            let shared = Arc::new(std::mem::replace(&mut batch, ColumnarBatch::new()));
            let ingest_token = self.obs_span();
            let route_token = self.obs_span();
            let full = self.router.route_batch(&shared);
            self.obs_record(Stage::Route, route_token);
            for shard in full {
                self.flush_shard(shard);
            }
            self.obs_record(Stage::Ingest, ingest_token);
            pool.push(shared);
            self.maybe_checkpoint();
            self.maybe_sample();
            // Recycle the first chunk every shard has let go of:
            // try_unwrap cannot race because this thread holds the only
            // other clone. Reset keeps the arena's capacity and key
            // interner.
            let reset_token = self.obs_span();
            if let Some(idx) = pool.iter().position(|b| Arc::strong_count(b) == 1) {
                if let Ok(mut reclaimed) = Arc::try_unwrap(pool.swap_remove(idx)) {
                    reclaimed.reset();
                    batch = reclaimed;
                }
            } else {
                if pool.len() > POOL_DEPTH {
                    // Nothing reclaimable: stop pinning the oldest
                    // chunk ourselves (it frees once its shards drop
                    // it).
                    pool.remove(0);
                }
                // The replacement starts at full row capacity: one
                // reserve per column instead of geometric growth
                // re-paid on every chunk (with lazily-woken workers,
                // whole ingest runs can pass before anything is
                // reclaimable).
                batch = ColumnarBatch::with_capacity(chunk);
            }
            self.obs_record(Stage::BatchReset, reset_token);
        }
    }

    /// Drains an [`InstanceSource`] through [`Engine::ingest_at`]: the
    /// replay path for recorded station streams.
    pub fn pump<S: InstanceSource>(&mut self, source: &mut S) {
        while let Some(timed) = source.next_timed() {
            self.ingest_at(timed.instance, timed.at);
        }
    }

    /// Re-feeds a recorded operation stream ([`stem_wal::Replay::records`])
    /// through the live ingest path: instances via
    /// [`Engine::ingest_at`] / [`Engine::ingest`], silence probes via
    /// [`Engine::probe_silence`]. Against subscriptions registered in
    /// the original order, a full-stream replay reproduces the original
    /// detection multiset bit-for-bit in deterministic mode; after
    /// [`Engine::recover`], the tail from [`Engine::resume_from`]
    /// resumes the run (overlap with shard logs deduplicates per
    /// shard).
    ///
    /// # Panics
    ///
    /// Panics if the stream has a sequence gap (an operation lost to a
    /// torn shard log — resume from a complete upstream copy instead)
    /// or if a probe references a subscription that was not
    /// re-registered.
    pub fn replay_records<'a>(&mut self, records: impl IntoIterator<Item = &'a WalRecord>) {
        for record in records {
            assert_eq!(
                record.seq(),
                self.router.seq(),
                "replay stream has a gap at sequence {} — the log is missing \
                 operations (torn shard?); resume from a complete upstream copy",
                self.router.seq(),
            );
            match record {
                WalRecord::Instance {
                    eval_at, instance, ..
                } => match eval_at {
                    Some(at) => self.ingest_at(instance.clone(), *at),
                    None => self.ingest(instance.clone()),
                },
                WalRecord::Probe {
                    subscription, at, ..
                } => {
                    assert!(
                        self.probe_silence(SubscriptionId(*subscription), *at),
                        "replayed probe for unknown subscription {subscription} — \
                         re-register the original subscriptions in order before replaying",
                    );
                }
                // Heartbeats and checkpoints are derived by the live
                // path; Replay::records never yields them.
                WalRecord::Heartbeat { .. } | WalRecord::Watermark { .. } => {}
            }
        }
    }

    /// The first ingest sequence *not* guaranteed durable across every
    /// shard log: where an upstream re-feed should resume after
    /// [`Engine::recover`] (0 for an engine that did not recover).
    #[must_use]
    pub fn resume_from(&self) -> u64 {
        self.resume_seq
    }

    /// Begins crash recovery from the write-ahead logs (and checkpoint
    /// snapshots) named by `config.durability` (which must be
    /// [`Durability::Wal`]; the directory holds a previous run's logs
    /// and snapshots — possibly torn by the crash).
    ///
    /// Recovery is a three-step handshake, because replay can only
    /// deliver into registered subscriptions:
    ///
    /// 1. `Engine::recover(config)` picks the **checkpoint floor** —
    ///    the newest snapshot epoch valid on *every* shard (a file torn
    ///    by a crash mid-checkpoint fails its checksum and degrades the
    ///    floor to the previous epoch; no snapshots at all degrades to
    ///    full-log replay) — then reads only each shard's WAL *tail*
    ///    from the floor snapshot's segment on, repairs torn tails
    ///    (truncating them on disk), and computes the resume point;
    /// 2. the caller re-registers its subscriptions on the returned
    ///    [`Recovery`] **in the original registration order** (ids are
    ///    reassigned deterministically, so logged probe records and
    ///    snapshot detector state resolve);
    /// 3. [`Recovery::resume`] restores each shard's snapshot state and
    ///    replays its tail records through the normal evaluation path —
    ///    rebuilding reorder and detector state and re-delivering the
    ///    *tail's* notifications into the fresh sinks (notifications
    ///    the snapshot covers are compressed into state, not
    ///    re-delivered; see [`Recovery::snapshot_delivered`]) — and
    ///    returns the live engine. In deterministic mode the resumed
    ///    engine continues bit-identically to an uninterrupted run fed
    ///    the same stream, with or without a usable snapshot.
    ///
    /// The upstream should then re-feed everything from
    /// [`Engine::resume_from`] on; operations the snapshots or shard
    /// logs already hold are deduplicated per shard by sequence number.
    ///
    /// Every shard restores from the *same* epoch so the snapshot set
    /// is a consistent cut of the global operation stream: mixing
    /// epochs would seed the recovered stream clock with keys from
    /// operations past the resume point and skew late-drop decisions.
    ///
    /// # Errors
    ///
    /// Returns a [`RecoverError`] when scanning or reading the WAL
    /// directory or the snapshot epochs fails — a transient I/O
    /// failure or format corruption, distinguishable from "no durable
    /// state" (an absent or empty directory recovers cleanly with
    /// `resume_from() == 0`). Torn tails and torn snapshots are
    /// *fallbacks*, not errors.
    ///
    /// # Panics
    ///
    /// Panics only on invariant violations: a configuration without a
    /// WAL or failing [`EngineConfig::validate`], a directory written
    /// with more shards than configured, or a compacted segment chain
    /// no retained snapshot covers (damage beyond the single-crash
    /// fault model).
    pub fn recover(config: EngineConfig) -> Result<Recovery, RecoverError> {
        let Durability::Wal { dir, .. } = &config.durability else {
            panic!("Engine::recover requires Durability::Wal");
        };
        let dir = dir.clone();
        let found = wal_shards(&dir).map_err(RecoverError::Wal)?;
        assert!(
            found.iter().all(|&s| s < config.shard_count),
            "wal at {} was written with more shards than the config's {}",
            dir.display(),
            config.shard_count,
        );
        // Validate every retained snapshot per shard (a handful of
        // small files), rejecting torn/corrupt/mismatched ones. Only
        // the *scan* can fail hard; an unreadable snapshot file is a
        // torn-write fallback.
        let mut snapshots_rejected = 0;
        let mut per_shard: Vec<Vec<ShardSnapshot>> = Vec::with_capacity(config.shard_count);
        for shard in 0..config.shard_count {
            let chain = stem_snap::list_snapshots(&dir, shard).map_err(RecoverError::Snap)?;
            let mut valid = Vec::new();
            for (epoch, path) in chain {
                match stem_snap::read_snapshot(&path) {
                    Ok(s) if s.shard == shard && s.epoch == epoch => valid.push(s),
                    _ => snapshots_rejected += 1,
                }
            }
            per_shard.push(valid);
        }
        // The checkpoint floor: the newest epoch every shard holds a
        // valid snapshot for. A crash tears at most the epoch being
        // written, and retention keeps >= 2 epochs, so within the
        // single-crash fault model the floor is the newest or the
        // previous epoch; with no common epoch every shard replays its
        // full log (which compaction has provably not touched yet).
        let floor: Option<u64> = per_shard
            .first()
            .into_iter()
            .flat_map(|v| v.iter().rev())
            .map(|s| s.epoch)
            .find(|epoch| {
                per_shard[1..]
                    .iter()
                    .all(|v| v.iter().any(|s| s.epoch == *epoch))
            });
        // Read and repair *before* Engine::start opens fresh segments,
        // so repair never mistakes them for post-torn history. With a
        // floor snapshot, only the tail from its active segment on is
        // read at all — the bounded-time part of bounded-time recovery.
        let mut plan: Vec<ShardPlan> = Vec::with_capacity(per_shard.len());
        for (shard, mut valid) in per_shard.into_iter().enumerate() {
            let snapshot = floor.and_then(|epoch| {
                valid
                    .iter()
                    .position(|s| s.epoch == epoch)
                    .map(|i| valid.swap_remove(i))
            });
            let from_segment = snapshot.as_ref().map_or(0, |s| s.active_segment);
            let recovered =
                read_shard_tail(&dir, shard, true, from_segment).map_err(RecoverError::Wal)?;
            // A segment chain starting above the requested bound
            // means compaction retired segments this recovery needs
            // (damage beyond a single crash — e.g. an older
            // snapshot corrupted independently of the crash that
            // tore the newest). Refuse loudly: resuming would
            // silently drop part of the durable history.
            if let Some(first) = recovered.first_segment {
                assert!(
                    first <= from_segment,
                    "shard {shard}: recovery needs wal segments from {from_segment} \
                     but the chain starts at {first} — compaction already retired \
                     them and no valid snapshot covers them; the snapshot fallback \
                     chain at {} is broken beyond single-crash repair",
                    dir.display(),
                );
            }
            let durable_seq = snapshot
                .as_ref()
                .and_then(|s| s.next_seq.checked_sub(1))
                .into_iter()
                .chain(recovered.durable_seq)
                .max();
            plan.push(ShardPlan {
                snapshot,
                recovered,
                durable_seq,
            });
        }
        // Resume where the *least* durable shard ends: everything below
        // is provably covered — by the shard's snapshot (a compressed
        // prefix of its log) or by the log itself (appends are ordered,
        // so a shard's log holds every operation routed to it up to its
        // own durable maximum).
        let resume_seq = plan
            .iter()
            .map(|p| p.durable_seq.map_or(0, |d| d + 1))
            .min()
            .unwrap_or(0);
        // Seed the router's stream clock with what it had seen by the
        // resume point, so re-fed operations get their original prefix
        // high-water stamps (bit-identical late-drop decisions). The
        // floor snapshot's high-water mark summarizes everything below
        // its cut (`next_seq <= resume_seq` because every shard is
        // durable at least through the shared floor); tail records
        // strictly below the resume point supply the rest.
        let mut high_water: Option<TimePoint> = None;
        let mut note = |t: TimePoint| {
            high_water = Some(high_water.map_or(t, |h| h.max(t)));
        };
        for p in &plan {
            if let Some(hw) = p.snapshot.as_ref().and_then(|s| s.high_water) {
                note(hw);
            }
        }
        for record in plan.iter().flat_map(|p| &p.recovered.records) {
            match record {
                WalRecord::Instance {
                    seq,
                    eval_at,
                    instance,
                    ..
                } if *seq < resume_seq => {
                    note(eval_at.unwrap_or_else(|| instance.generation_time()));
                }
                // A heartbeat's seq is the exclusive bound of the
                // prefix it summarizes (ops with seq strictly below
                // it), so it may seed the clock exactly when that whole
                // prefix is below the resume point.
                WalRecord::Heartbeat {
                    seq,
                    high_water: hw,
                } if *seq <= resume_seq => note(*hw),
                _ => {}
            }
        }
        let stats = RecoveryStats {
            resume_seq,
            records: plan.iter().map(|p| p.recovered.records.len() as u64).sum(),
            torn_truncations: plan.iter().map(|p| p.recovered.torn_truncations).sum(),
            snapshot_epoch: floor,
            snapshots_loaded: plan.iter().filter(|p| p.snapshot.is_some()).count() as u64,
            snapshots_rejected,
        };
        let mut engine = Engine::start(config);
        engine.router.seed_recovery(resume_seq, high_water);
        engine.resume_seq = resume_seq;
        engine.checkpoint_high_water = high_water;
        // Telemetry/trace/alert seqs restart at 0 in the recovered run,
        // so bare seq continuity across a recovery is a lie. Stamp which
        // run this is — read the previous run's epoch from the WAL
        // directory (fresh runs are epoch 0 and write no file), bump
        // it, and thread it into every exporter so consumers key on
        // `(epoch, seq)`.
        let run_epoch = std::fs::read_to_string(dir.join("run-epoch"))
            .ok()
            .and_then(|text| text.trim().parse::<u64>().ok())
            .map_or(1, |prev| prev + 1);
        std::fs::write(dir.join("run-epoch"), format!("{run_epoch}\n"))
            .unwrap_or_else(|e| panic!("write run-epoch in {}: {e}", dir.display()));
        engine.set_run_epoch(run_epoch);
        // Continue epoch numbering past everything on disk (torn files
        // included) so a snapshot file name is never reused.
        engine.epoch = stem_snap::max_epoch(&dir)
            .map_err(RecoverError::Snap)?
            .map_or(0, |e| e + 1);
        Ok(Recovery {
            engine,
            plan,
            stats,
        })
    }

    /// Sends a silence heartbeat to one sustained subscription (see
    /// [`crate::SilenceSpec`]): if its input has been quiet for the
    /// configured timeout, the inactive sample is fed at `at` so open
    /// episodes can close. Returns `false` for unknown ids.
    ///
    /// The probe rides the home shard's reorder buffer like any other
    /// stream entry: it reaches the detector in stream order (earlier
    /// samples still held behind the watermark slack evaluate first),
    /// advances that shard's stream clock to `at`, and is discarded as
    /// stale if the watermark has already passed `at`.
    pub fn probe_silence(&mut self, id: SubscriptionId, at: TimePoint) -> bool {
        let Some(home) = self
            .sub_plans
            .get(&id.raw())
            .and_then(|plan| self.plan_entries.get(&plan.raw()))
            .map(|entry| entry.home)
        else {
            return false;
        };
        // Flush first so the probe lands after everything routed so far.
        self.flush_shard(home);
        // Probes consume ingest sequence numbers from the same counter
        // as instances, so the write-ahead logs carry a total order over
        // all operations. The prefix stamp rides along so the worker's
        // staleness check does not depend on heartbeat delivery (which
        // clean-shard suppression may elide).
        let seq = self.router.take_seq();
        let prefix_high_water = self.router.high_water();
        self.send(
            home,
            ShardMessage::SilenceProbe {
                id,
                at,
                seq,
                prefix_high_water,
            },
        );
        self.maybe_checkpoint();
        self.maybe_sample();
        true
    }

    /// Fires a checkpoint if the configured policy says one is due.
    fn maybe_checkpoint(&mut self) {
        let due = match self.config.checkpoint {
            CheckpointPolicy::Never => false,
            CheckpointPolicy::EveryNBatches(n) => self.batches_since_checkpoint >= n.max(1),
            CheckpointPolicy::EveryTicks(t) => match self.router.high_water() {
                None => false,
                Some(hw) => {
                    let last = self.checkpoint_high_water.map_or(0, TimePoint::ticks);
                    hw.ticks().saturating_sub(last) >= t.max(1)
                }
            },
        };
        if due {
            self.checkpoint();
        }
    }

    /// Cuts a consistent checkpoint across every shard, synchronously:
    /// flushes pending batches, then has each shard worker — behind the
    /// same barrier semantics as [`Engine::sync`] — make its log
    /// durable, serialize its full evaluation state (reorder buffer,
    /// watermark clock, per-subscription detector/sustained state) into
    /// an atomically-written, checksummed snapshot file, prune old
    /// epochs, and retire WAL segments wholly behind the oldest
    /// retained snapshot. All shards snapshot the same stream-clock
    /// epoch: the barrier guarantees each shard's state is exactly the
    /// evaluation of the global operation prefix routed to it.
    ///
    /// Checkpoints fire automatically per [`CheckpointPolicy`]; calling
    /// this directly cuts one on demand (e.g. before a planned
    /// shutdown, so the next start recovers in bounded time).
    ///
    /// # Panics
    ///
    /// Panics without [`Durability::Wal`] (a snapshot is a compressed
    /// log prefix; there is nothing to compress), and on filesystem
    /// failures while writing.
    pub fn checkpoint(&mut self) {
        assert!(
            matches!(self.config.durability, Durability::Wal { .. }),
            "Engine::checkpoint requires Durability::Wal"
        );
        self.flush();
        let epoch = self.epoch;
        self.epoch += 1;
        let next_seq = self.router.seq();
        let high_water = self.router.high_water();
        let (ack, done) = std::sync::mpsc::channel();
        for shard in 0..self.config.shard_count {
            self.send(
                shard,
                ShardMessage::Checkpoint {
                    epoch,
                    next_seq,
                    high_water,
                    ack: ack.clone(),
                },
            );
        }
        drop(ack);
        // Steal-drain every shard inline (snapshot writes included), so
        // the ack loop below returns without parking; inline workers
        // already ran synchronously and their acks are queued. Either
        // way the barrier is total, so every shard is clean afterwards.
        // `barrier_wait` records the coordination remainder: the stolen
        // work times itself on the worker clocks (snapshot writes as
        // `snapshot_cut`, evaluation as its usual stages).
        let token = self.obs_span();
        let mut stolen_ns = 0u64;
        if let Backend::Threaded { slots, .. } = &self.backend {
            for slot in slots {
                stolen_ns = stolen_ns.saturating_add(slot.steal());
            }
        }
        while done.recv().is_ok() {}
        self.obs_record_minus(Stage::BarrierWait, token, stolen_ns);
        self.batches_since_checkpoint = 0;
        self.checkpoint_high_water = high_water;
    }

    /// Flushes every pending batch and, in threaded mode, blocks until
    /// every shard worker has processed everything sent so far. After
    /// `sync` returns, every prior ingest has been evaluated and its
    /// notifications delivered — except instances a nonzero watermark
    /// slack still holds for reordering, which notify once the
    /// watermark passes them. The station ingest path (zero slack)
    /// relies on this for synchronous fold-back of derived instances.
    ///
    /// The barrier is wait-free: a *clean* shard — one whose processed
    /// counter already matches everything the engine sent it — costs
    /// two atomic loads and no cross-thread traffic at all, and a dirty
    /// shard's remaining queue is *stolen* and drained inline on the
    /// calling thread (see [`ShardSlot`]) instead of parking on an ack
    /// round trip. No sync messages, no wakeups, no context switches —
    /// the cost ROADMAP item 5's anti-scaling used to hide in. The
    /// flush underneath still cuts heartbeat-only batches only when the
    /// stream clock advanced and the shard might act on it (see
    /// [`Engine::flush_shard`]), so a driver syncing once per delivery
    /// pays for exactly the shards that delivery touched.
    pub fn sync(&mut self) {
        self.flush();
        let dirty: Vec<usize> = match &self.backend {
            Backend::Inline(_) => return,
            Backend::Threaded { slots, .. } => slots
                .iter()
                .enumerate()
                .filter(|(shard, slot)| slot.processed() < self.sent_msgs[*shard])
                .map(|(shard, _)| shard)
                .collect(),
        };
        if dirty.is_empty() {
            return;
        }
        // One `barrier_wait` sample per sync that had anything to steal.
        // The stolen work's own stages land on the worker recorders as
        // usual, and its time is subtracted here: what remains is the
        // true synchronization cost (locks, queue ops, waiting) — a
        // sync that merely relocates evaluation onto this thread is not
        // a barrier tax.
        let token = self.obs_span();
        let mut stolen_ns = 0u64;
        if let Backend::Threaded { slots, .. } = &self.backend {
            for shard in dirty {
                stolen_ns = stolen_ns.saturating_add(slots[shard].steal());
            }
        }
        self.obs_record_minus(Stage::BarrierWait, token, stolen_ns);
    }

    /// Flushes every partially-filled batch without shutting down,
    /// and sends the current watermark heartbeat to *every* shard — a
    /// shard whose territory has gone quiet otherwise holds reordered
    /// instances until [`Engine::finish`]. Live-stream drivers should
    /// call this periodically.
    pub fn flush(&mut self) {
        for shard in 0..self.config.shard_count {
            self.flush_shard(shard);
        }
    }

    /// Flushes remaining batches, drains every shard's reorder buffer,
    /// joins the workers, and returns the run's report.
    ///
    /// # Panics
    ///
    /// Panics if a shard worker panicked.
    #[must_use]
    pub fn finish(mut self) -> EngineReport {
        self.flush();
        self.shutdown()
    }

    /// Like [`Engine::finish`], but first finalizes the stream at the
    /// given horizon: every shard drains its reorder buffer and closes
    /// open sustained episodes at `horizon` (scenario end — the paper's
    /// simulation horizon), delivering their `Ended` notifications
    /// before shutdown.
    ///
    /// # Panics
    ///
    /// Panics if a shard worker panicked.
    #[must_use]
    pub fn finish_at(mut self, horizon: TimePoint) -> EngineReport {
        self.flush();
        for shard in 0..self.config.shard_count {
            self.send(shard, ShardMessage::Finalize(horizon));
        }
        self.shutdown()
    }

    /// Joins the workers and assembles the report.
    fn shutdown(mut self) -> EngineReport {
        let shards: Vec<crate::metrics::ShardMetrics> = match std::mem::replace(
            &mut self.backend,
            Backend::Threaded {
                slots: Vec::new(),
                handles: Vec::new(),
            },
        ) {
            Backend::Inline(workers) => workers.into_iter().map(ShardWorker::finish).collect(),
            Backend::Threaded { slots, handles } => {
                // Closing the slots ends the worker loops; each worker
                // drains its remaining queue, flushes, and returns its
                // counters.
                for slot in &slots {
                    slot.close();
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard worker panicked"))
                    .collect()
            }
        };
        // Workers are joined (every slot holds its final publish):
        // cut the closing snapshot, then fold the registry down.
        self.sample();
        let obs = self.obs.take().map(|o| o.registry.report());
        // Workers are quiesced, so the rings hold their final contents:
        // fold them into the report (shard order) and drain them to the
        // export file if one is configured.
        let trace = (!self.trace_rings.is_empty()).then(|| {
            let mut report = TraceReport::default();
            for ring in &self.trace_rings {
                let ring = ring.lock().expect("trace ring poisoned");
                report.records.extend(ring.snapshot());
                report.evicted += ring.evicted();
            }
            report
        });
        if let (Some(report), Some(path)) = (&trace, &self.config.trace_export) {
            let mut out = String::new();
            for record in &report.records {
                out.push_str(&record.to_json_line_at(self.run_epoch));
                out.push('\n');
            }
            std::fs::write(path, out)
                .unwrap_or_else(|e| panic!("write trace export {}: {e}", path.display()));
        }
        // The closing sample above already ran through the watcher, so
        // its report carries any alert the final snapshot confirmed.
        let health = self
            .watch
            .take()
            .map(|w| w.lock().expect("watcher poisoned").report());
        let (plans_active, plan_subscribers, plan_subscribers_max) = self.plan_stats();
        EngineReport {
            shards,
            router: self.router.take_metrics(),
            elapsed: self.started.elapsed(),
            obs,
            trace,
            health,
            plans_active,
            plan_subscribers,
            plan_subscribers_max,
        }
    }

    /// Whether `shard` has processed everything sent to it *and* holds
    /// nothing in its reorder buffer — a shard a watermark heartbeat
    /// could not cause to release anything.
    fn shard_idle_and_empty(&self, shard: ShardId) -> bool {
        match &self.backend {
            Backend::Inline(workers) => workers[shard].reorder_pending() == 0,
            Backend::Threaded { slots, .. } => {
                let slot = &slots[shard];
                slot.processed() == self.sent_msgs[shard] && slot.held() == 0
            }
        }
    }

    /// Hands the pending batch for `shard` to its worker, honouring the
    /// backpressure policy. A batch that would carry neither instances
    /// nor a heartbeat the shard hasn't already seen is not cut at all
    /// — and a heartbeat-*only* batch is suppressed entirely when the
    /// shard is idle and holds nothing reordering: advancing an empty
    /// shard's clock releases nothing, late-drop decisions ride each
    /// item's own prefix stamp, and silence probes carry their own
    /// stamp too, so the heartbeat's only effect would be the
    /// cross-thread traffic itself. This is what keeps a quiet shard's
    /// cost at zero across fold-back syncs.
    fn flush_shard(&mut self, shard: ShardId) {
        if self.router.pending_len(shard) == 0 {
            if !self.router.needs_heartbeat(shard) {
                return;
            }
            if self.shard_idle_and_empty(shard) {
                self.router.note_suppressed_heartbeat();
                return;
            }
        }
        let batch = self.router.take_batch(shard);
        self.batches_since_checkpoint += 1;
        if let Some(o) = self.obs.as_mut() {
            o.batches_since_sample += 1;
        }
        // `enqueue` is the handoff cost: the channel send (plus
        // backpressure blocking) in threaded mode, the whole inline
        // evaluation in deterministic mode (where spans count virtual
        // clock events, not time).
        let token = self.obs_span();
        self.send(shard, ShardMessage::Batch(batch));
        self.obs_record(Stage::Enqueue, token);
    }

    fn send(&mut self, shard: ShardId, message: ShardMessage) {
        self.sent_msgs[shard] += 1;
        match &mut self.backend {
            Backend::Inline(workers) => workers[shard].handle(message),
            Backend::Threaded { slots, .. } => match self.config.backpressure {
                BackpressurePolicy::Block => slots[shard].send(message),
                BackpressurePolicy::DropNewest => {
                    if let Err(dropped) = slots[shard].try_send(message) {
                        // Control messages are never dropped: losing a
                        // Subscribe/Unsubscribe would silently change
                        // semantics, so block for those.
                        if matches!(dropped, ShardMessage::Batch(_)) {
                            self.router.note_dropped_batch();
                            // Never delivered: keep the barrier and
                            // queue-depth arithmetic honest.
                            self.sent_msgs[shard] -= 1;
                        } else {
                            slots[shard].send(dropped);
                        }
                    }
                }
            },
        }
    }
}

/// One shard's recovery inputs: the floor snapshot (if any) plus the
/// WAL tail past it.
struct ShardPlan {
    snapshot: Option<ShardSnapshot>,
    recovered: RecoveredShard,
    /// The largest ingest sequence the shard is durable through,
    /// snapshot coverage included.
    durable_seq: Option<u64>,
}

/// Why [`Engine::recover`] could not scan the durable state on disk.
///
/// These are *environmental* failures — a transient I/O error or
/// on-disk corruption while scanning the WAL directory or snapshot
/// epochs — and are returned so callers can retry, alert, or fall back,
/// instead of conflating them with "no durable state" (which recovers
/// cleanly) or with invariant violations (which still panic).
#[derive(Debug)]
pub enum RecoverError {
    /// Scanning the WAL directory or reading a shard's segment chain
    /// failed (torn tails are repaired, not errors; this is an
    /// unreadable directory, an I/O failure mid-read, or mid-file
    /// format corruption).
    Wal(stem_wal::WalError),
    /// Scanning the snapshot epochs failed (an individual torn or
    /// corrupt snapshot file is a fallback, not an error; this is an
    /// unreadable directory listing).
    Snap(stem_snap::SnapError),
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::Wal(e) => write!(f, "recovery could not scan the wal: {e}"),
            RecoverError::Snap(e) => write!(f, "recovery could not scan the snapshots: {e}"),
        }
    }
}

impl std::error::Error for RecoverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoverError::Wal(e) => Some(e),
            RecoverError::Snap(e) => Some(e),
        }
    }
}

/// What [`Engine::recover`] found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// First ingest sequence not guaranteed durable on every shard —
    /// where the upstream re-feed resumes.
    pub resume_seq: u64,
    /// Intact records read across all shard log *tails* (with a
    /// checkpoint floor, segments behind it are never opened; without
    /// one this is the whole log).
    pub records: u64,
    /// Torn-tail truncations repaired across all shard logs.
    pub torn_truncations: u64,
    /// The checkpoint floor: the snapshot epoch every shard restores
    /// from (`None` = full-log replay).
    pub snapshot_epoch: Option<u64>,
    /// Shards restoring from a snapshot.
    pub snapshots_loaded: u64,
    /// Snapshot files rejected as torn, corrupt, or mismatched.
    pub snapshots_rejected: u64,
}

/// The subscription-registration window of a crash recovery: the engine
/// exists but has not replayed its logs yet (see [`Engine::recover`]).
pub struct Recovery {
    engine: Engine,
    plan: Vec<ShardPlan>,
    stats: RecoveryStats,
}

impl Recovery {
    /// Re-registers a subscription. Call in the original registration
    /// order so ids — which logged probe records and snapshot detector
    /// state reference — line up.
    pub fn subscribe(&mut self, subscription: Subscription) -> SubscriptionId {
        self.engine.subscribe(subscription)
    }

    /// What recovery found on disk.
    #[must_use]
    pub fn stats(&self) -> RecoveryStats {
        self.stats
    }

    /// Per-subscription notification counts the floor snapshots cover
    /// (`raw subscription id → delivered`): what the resumed engine
    /// will *not* re-deliver, because those notifications are
    /// compressed into restored detector state rather than replayed.
    /// A driver lining the resumed delivery stream up against an
    /// uninterrupted run drops exactly this many leading notifications
    /// per subscription. Empty without a checkpoint floor (full replay
    /// re-delivers everything).
    #[must_use]
    pub fn snapshot_delivered(&self) -> std::collections::BTreeMap<u64, u64> {
        let mut out = std::collections::BTreeMap::new();
        for plan in &self.plan {
            if let Some(snapshot) = &plan.snapshot {
                // A subscription lives on exactly one home shard, so
                // the union across shards has no collisions.
                out.extend(snapshot.subs_delivered.iter().copied());
            }
        }
        out
    }

    /// Restores every shard's snapshot state, replays its durable tail
    /// records, and returns the live engine, ready for the upstream
    /// re-feed from [`Engine::resume_from`].
    #[must_use]
    pub fn resume(mut self) -> Engine {
        for plan in self.plan {
            let shard = plan.recovered.shard;
            self.engine.send(
                shard,
                ShardMessage::Recover {
                    snapshot: plan.snapshot.map(Box::new),
                    records: plan.recovered.records,
                    durable_seq: plan.durable_seq,
                    torn: plan.recovered.torn_truncations,
                },
            );
            self.engine.send(shard, ShardMessage::EndRecovery);
        }
        self.engine
    }
}

impl std::fmt::Debug for Recovery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recovery")
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("config", &self.config)
            .field("subscriptions", &self.next_subscription)
            .finish_non_exhaustive()
    }
}
