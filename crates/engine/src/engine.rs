//! The engine facade: lifecycle, ingestion, subscription management.

use crate::config::{BackpressurePolicy, EngineConfig, ExecutionMode, ShardId};
use crate::metrics::EngineReport;
use crate::router::ShardRouter;
use crate::shard_map::ShardMap;
use crate::subscription::{Subscription, SubscriptionId};
use crate::worker::{ShardMessage, ShardWorker, SubscriptionState};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::thread::JoinHandle;
use std::time::Instant;
use stem_core::{EventInstance, InstanceSource};
use stem_temporal::TimePoint;

/// How shard workers are driven.
enum Backend {
    /// Workers run inline on the caller's thread, in shard order.
    Inline(Vec<ShardWorker>),
    /// One thread per shard behind a bounded channel.
    Threaded {
        senders: Vec<SyncSender<ShardMessage>>,
        handles: Vec<JoinHandle<crate::metrics::ShardMetrics>>,
    },
}

/// The streaming runtime. See the crate docs for the architecture.
///
/// Lifecycle: [`Engine::start`] → [`Engine::subscribe`] /
/// [`Engine::ingest`] (interleaved freely) → [`Engine::finish`].
pub struct Engine {
    config: EngineConfig,
    router: ShardRouter,
    backend: Backend,
    next_subscription: u64,
    started: Instant,
}

impl Engine {
    /// Builds the shard map, spawns the workers (or arranges them
    /// inline in deterministic mode), and starts the clock.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid ([`EngineConfig::validate`]).
    #[must_use]
    pub fn start(config: EngineConfig) -> Self {
        let problems = config.validate();
        assert!(problems.is_empty(), "invalid EngineConfig: {problems:?}");
        let map = ShardMap::build(config.world_bounds, config.shard_count);
        let router = ShardRouter::new(map, config.batch_size);
        let backend = match config.mode {
            ExecutionMode::Deterministic => Backend::Inline(
                (0..config.shard_count)
                    .map(|s| ShardWorker::new(s, config.watermark_slack))
                    .collect(),
            ),
            ExecutionMode::Threaded => {
                let mut senders = Vec::with_capacity(config.shard_count);
                let mut handles = Vec::with_capacity(config.shard_count);
                for shard in 0..config.shard_count {
                    let (tx, rx) = sync_channel::<ShardMessage>(config.queue_capacity);
                    let worker = ShardWorker::new(shard, config.watermark_slack);
                    let handle = std::thread::Builder::new()
                        .name(format!("stem-engine-shard-{shard}"))
                        .spawn(move || worker.run(rx))
                        .expect("spawn shard worker");
                    senders.push(tx);
                    handles.push(handle);
                }
                Backend::Threaded { senders, handles }
            }
        };
        Engine {
            config,
            router,
            backend,
            next_subscription: 0,
            started: Instant::now(),
        }
    }

    /// The configuration the engine runs with.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Registers a subscription on its home shard (the owner of its
    /// region's center) and returns its id.
    ///
    /// Ordering: the subscription observes every instance its home
    /// shard's reorder buffer releases after this call — all later
    /// ingests, plus any earlier ones still held behind the watermark
    /// at registration time.
    pub fn subscribe(&mut self, subscription: Subscription) -> SubscriptionId {
        let id = SubscriptionId(self.next_subscription);
        self.next_subscription += 1;
        let home = self
            .router
            .subscribe(id, subscription.region.clone(), subscription.home_hint);
        let state = SubscriptionState::compile(id, subscription);
        // Flush anything already routed so registration order is
        // preserved relative to the instance stream.
        self.flush_shard(home);
        self.send(home, ShardMessage::Subscribe(Box::new(state)));
        id
    }

    /// Retires a subscription. Returns `false` if the id is unknown.
    ///
    /// Instances still held behind the watermark at this point are
    /// forfeited: they release after the retirement takes effect and
    /// the subscription no longer observes them.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> bool {
        let Some(home) = self.router.unsubscribe(id) else {
            return false;
        };
        self.flush_shard(home);
        self.send(home, ShardMessage::Unsubscribe(id));
        true
    }

    /// Ingests one instance: routes it (owner shard + broadcast to
    /// interested shards) and hands off any batch that filled up.
    pub fn ingest(&mut self, instance: EventInstance) {
        let full = self.router.route(instance);
        for shard in full {
            self.flush_shard(shard);
        }
    }

    /// Ingests one instance with an explicit observer-local evaluation
    /// time: `at` becomes the stream-clock sample, the reorder key, and
    /// the clock pattern/sustained evaluation runs on — the station
    /// ingest path, where instances arrive (and are evaluated) later
    /// than they were generated upstream.
    pub fn ingest_at(&mut self, instance: EventInstance, at: TimePoint) {
        let full = self.router.route_at(instance, Some(at));
        for shard in full {
            self.flush_shard(shard);
        }
    }

    /// Ingests an entire stream.
    pub fn ingest_all(&mut self, instances: impl IntoIterator<Item = EventInstance>) {
        for instance in instances {
            self.ingest(instance);
        }
    }

    /// Drains an [`InstanceSource`] through [`Engine::ingest_at`]: the
    /// replay path for recorded station streams.
    pub fn pump<S: InstanceSource>(&mut self, source: &mut S) {
        while let Some(timed) = source.next_timed() {
            self.ingest_at(timed.instance, timed.at);
        }
    }

    /// Sends a silence heartbeat to one sustained subscription (see
    /// [`crate::SilenceSpec`]): if its input has been quiet for the
    /// configured timeout, the inactive sample is fed at `at` so open
    /// episodes can close. Returns `false` for unknown ids.
    ///
    /// The probe rides the home shard's reorder buffer like any other
    /// stream entry: it reaches the detector in stream order (earlier
    /// samples still held behind the watermark slack evaluate first),
    /// advances that shard's stream clock to `at`, and is discarded as
    /// stale if the watermark has already passed `at`.
    pub fn probe_silence(&mut self, id: SubscriptionId, at: TimePoint) -> bool {
        let Some(home) = self.router.home_of(id) else {
            return false;
        };
        // Flush first so the probe lands after everything routed so far.
        self.flush_shard(home);
        self.send(home, ShardMessage::SilenceProbe { id, at });
        true
    }

    /// Flushes every pending batch and, in threaded mode, blocks until
    /// every shard worker has processed everything sent so far. After
    /// `sync` returns, every prior ingest has been evaluated and its
    /// notifications delivered — except instances a nonzero watermark
    /// slack still holds for reordering, which notify once the
    /// watermark passes them. The station ingest path (zero slack)
    /// relies on this for synchronous fold-back of derived instances.
    pub fn sync(&mut self) {
        self.flush();
        if let Backend::Threaded { senders, .. } = &self.backend {
            let (ack, done) = std::sync::mpsc::channel();
            for (shard, sender) in senders.iter().enumerate() {
                sender
                    .send(ShardMessage::Sync(ack.clone()))
                    .unwrap_or_else(|_| panic!("shard {shard} worker terminated"));
            }
            drop(ack);
            while done.recv().is_ok() {}
        }
    }

    /// Flushes every partially-filled batch without shutting down,
    /// and sends the current watermark heartbeat to *every* shard — a
    /// shard whose territory has gone quiet otherwise holds reordered
    /// instances until [`Engine::finish`]. Live-stream drivers should
    /// call this periodically.
    pub fn flush(&mut self) {
        for shard in 0..self.config.shard_count {
            self.flush_shard(shard);
        }
    }

    /// Flushes remaining batches, drains every shard's reorder buffer,
    /// joins the workers, and returns the run's report.
    ///
    /// # Panics
    ///
    /// Panics if a shard worker panicked.
    #[must_use]
    pub fn finish(mut self) -> EngineReport {
        self.flush();
        self.shutdown()
    }

    /// Like [`Engine::finish`], but first finalizes the stream at the
    /// given horizon: every shard drains its reorder buffer and closes
    /// open sustained episodes at `horizon` (scenario end — the paper's
    /// simulation horizon), delivering their `Ended` notifications
    /// before shutdown.
    ///
    /// # Panics
    ///
    /// Panics if a shard worker panicked.
    #[must_use]
    pub fn finish_at(mut self, horizon: TimePoint) -> EngineReport {
        self.flush();
        for shard in 0..self.config.shard_count {
            self.send(shard, ShardMessage::Finalize(horizon));
        }
        self.shutdown()
    }

    /// Joins the workers and assembles the report.
    fn shutdown(mut self) -> EngineReport {
        let shards = match self.backend {
            Backend::Inline(workers) => workers.into_iter().map(ShardWorker::finish).collect(),
            Backend::Threaded { senders, handles } => {
                // Closing the channels ends the worker loops; each
                // worker flushes and returns its counters.
                drop(senders);
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard worker panicked"))
                    .collect()
            }
        };
        EngineReport {
            shards,
            router: self.router.take_metrics(),
            elapsed: self.started.elapsed(),
        }
    }

    /// Hands the pending batch for `shard` to its worker, honouring the
    /// backpressure policy.
    fn flush_shard(&mut self, shard: ShardId) {
        let batch = self.router.take_batch(shard);
        if batch.is_empty() && batch.high_water.is_none() {
            return;
        }
        self.send(shard, ShardMessage::Batch(batch));
    }

    fn send(&mut self, shard: ShardId, message: ShardMessage) {
        match &mut self.backend {
            Backend::Inline(workers) => workers[shard].handle(message),
            Backend::Threaded { senders, .. } => match self.config.backpressure {
                BackpressurePolicy::Block => senders[shard]
                    .send(message)
                    .unwrap_or_else(|_| panic!("shard {shard} worker terminated")),
                BackpressurePolicy::DropNewest => match senders[shard].try_send(message) {
                    Ok(()) => {}
                    Err(TrySendError::Full(dropped)) => {
                        // Control messages are never dropped: losing a
                        // Subscribe/Unsubscribe would silently change
                        // semantics, so block for those.
                        if matches!(dropped, ShardMessage::Batch(_)) {
                            self.router.note_dropped_batch();
                        } else {
                            senders[shard]
                                .send(dropped)
                                .unwrap_or_else(|_| panic!("shard {shard} worker terminated"));
                        }
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        panic!("shard {shard} worker terminated")
                    }
                },
            },
        }
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("config", &self.config)
            .field("subscriptions", &self.next_subscription)
            .finish_non_exhaustive()
    }
}
