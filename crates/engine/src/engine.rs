//! The engine facade: lifecycle, ingestion, subscription management,
//! crash recovery.

use crate::config::{BackpressurePolicy, Durability, EngineConfig, ExecutionMode, ShardId};
use crate::metrics::EngineReport;
use crate::router::ShardRouter;
use crate::shard_map::ShardMap;
use crate::subscription::{Subscription, SubscriptionId};
use crate::worker::{ShardMessage, ShardWorker, SubscriptionState};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::thread::JoinHandle;
use std::time::Instant;
use stem_core::{EventInstance, InstanceSource};
use stem_temporal::TimePoint;
use stem_wal::{read_shard, wal_shards, RecoveredShard, ShardWal, WalRecord};

/// How shard workers are driven.
enum Backend {
    /// Workers run inline on the caller's thread, in shard order.
    Inline(Vec<ShardWorker>),
    /// One thread per shard behind a bounded channel.
    Threaded {
        senders: Vec<SyncSender<ShardMessage>>,
        handles: Vec<JoinHandle<crate::metrics::ShardMetrics>>,
    },
}

/// The streaming runtime. See the crate docs for the architecture.
///
/// Lifecycle: [`Engine::start`] → [`Engine::subscribe`] /
/// [`Engine::ingest`] (interleaved freely) → [`Engine::finish`].
pub struct Engine {
    config: EngineConfig,
    router: ShardRouter,
    backend: Backend,
    next_subscription: u64,
    /// Per shard: messages sent since its last sync barrier. A clean
    /// shard has nothing in flight, so [`Engine::sync`] skips its
    /// round trip — the amortization that makes a barrier per delivery
    /// affordable on the station ingest path.
    dirty: Vec<bool>,
    /// First ingest sequence *not* guaranteed durable across every
    /// shard log (0 without recovery): where an upstream re-feed must
    /// resume after [`Engine::recover`].
    resume_seq: u64,
    started: Instant,
}

impl Engine {
    /// Builds the shard map, spawns the workers (or arranges them
    /// inline in deterministic mode), and starts the clock.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid ([`EngineConfig::validate`]).
    #[must_use]
    pub fn start(config: EngineConfig) -> Self {
        let problems = config.validate();
        assert!(problems.is_empty(), "invalid EngineConfig: {problems:?}");
        let map = ShardMap::build(config.world_bounds, config.shard_count);
        let router = ShardRouter::new(map, config.batch_size);
        let make_worker = |shard: ShardId| {
            let wal = match &config.durability {
                Durability::None => None,
                Durability::Wal { dir, fsync } => Some(
                    ShardWal::open(dir, shard, config.wal_segment_bytes, *fsync)
                        .unwrap_or_else(|e| panic!("open wal for shard {shard}: {e}")),
                ),
            };
            ShardWorker::new(
                shard,
                config.watermark_slack,
                wal,
                config.wal_checkpoint_every,
            )
        };
        let backend = match config.mode {
            ExecutionMode::Deterministic => {
                Backend::Inline((0..config.shard_count).map(make_worker).collect())
            }
            ExecutionMode::Threaded => {
                let mut senders = Vec::with_capacity(config.shard_count);
                let mut handles = Vec::with_capacity(config.shard_count);
                for shard in 0..config.shard_count {
                    let (tx, rx) = sync_channel::<ShardMessage>(config.queue_capacity);
                    let worker = make_worker(shard);
                    let handle = std::thread::Builder::new()
                        .name(format!("stem-engine-shard-{shard}"))
                        .spawn(move || worker.run(rx))
                        .expect("spawn shard worker");
                    senders.push(tx);
                    handles.push(handle);
                }
                Backend::Threaded { senders, handles }
            }
        };
        let dirty = vec![false; config.shard_count];
        Engine {
            config,
            router,
            backend,
            next_subscription: 0,
            dirty,
            resume_seq: 0,
            started: Instant::now(),
        }
    }

    /// The configuration the engine runs with.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Registers a subscription on its home shard (the owner of its
    /// region's center) and returns its id.
    ///
    /// Ordering: the subscription observes every instance its home
    /// shard's reorder buffer releases after this call — all later
    /// ingests, plus any earlier ones still held behind the watermark
    /// at registration time.
    pub fn subscribe(&mut self, subscription: Subscription) -> SubscriptionId {
        let id = SubscriptionId(self.next_subscription);
        self.next_subscription += 1;
        let home = self
            .router
            .subscribe(id, subscription.region.clone(), subscription.home_hint);
        let state = SubscriptionState::compile(id, subscription);
        // Flush anything already routed so registration order is
        // preserved relative to the instance stream.
        self.flush_shard(home);
        self.send(home, ShardMessage::Subscribe(Box::new(state)));
        id
    }

    /// Retires a subscription. Returns `false` if the id is unknown.
    ///
    /// Instances still held behind the watermark at this point are
    /// forfeited: they release after the retirement takes effect and
    /// the subscription no longer observes them.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> bool {
        let Some(home) = self.router.unsubscribe(id) else {
            return false;
        };
        self.flush_shard(home);
        self.send(home, ShardMessage::Unsubscribe(id));
        true
    }

    /// Ingests one instance: routes it (owner shard + broadcast to
    /// interested shards) and hands off any batch that filled up.
    pub fn ingest(&mut self, instance: EventInstance) {
        let full = self.router.route(instance);
        for shard in full {
            self.flush_shard(shard);
        }
    }

    /// Ingests one instance with an explicit observer-local evaluation
    /// time: `at` becomes the stream-clock sample, the reorder key, and
    /// the clock pattern/sustained evaluation runs on — the station
    /// ingest path, where instances arrive (and are evaluated) later
    /// than they were generated upstream.
    pub fn ingest_at(&mut self, instance: EventInstance, at: TimePoint) {
        let full = self.router.route_at(instance, Some(at));
        for shard in full {
            self.flush_shard(shard);
        }
    }

    /// Ingests an entire stream.
    pub fn ingest_all(&mut self, instances: impl IntoIterator<Item = EventInstance>) {
        for instance in instances {
            self.ingest(instance);
        }
    }

    /// Drains an [`InstanceSource`] through [`Engine::ingest_at`]: the
    /// replay path for recorded station streams.
    pub fn pump<S: InstanceSource>(&mut self, source: &mut S) {
        while let Some(timed) = source.next_timed() {
            self.ingest_at(timed.instance, timed.at);
        }
    }

    /// Re-feeds a recorded operation stream ([`stem_wal::Replay::records`])
    /// through the live ingest path: instances via
    /// [`Engine::ingest_at`] / [`Engine::ingest`], silence probes via
    /// [`Engine::probe_silence`]. Against subscriptions registered in
    /// the original order, a full-stream replay reproduces the original
    /// detection multiset bit-for-bit in deterministic mode; after
    /// [`Engine::recover`], the tail from [`Engine::resume_from`]
    /// resumes the run (overlap with shard logs deduplicates per
    /// shard).
    ///
    /// # Panics
    ///
    /// Panics if the stream has a sequence gap (an operation lost to a
    /// torn shard log — resume from a complete upstream copy instead)
    /// or if a probe references a subscription that was not
    /// re-registered.
    pub fn replay_records<'a>(&mut self, records: impl IntoIterator<Item = &'a WalRecord>) {
        for record in records {
            assert_eq!(
                record.seq(),
                self.router.seq(),
                "replay stream has a gap at sequence {} — the log is missing \
                 operations (torn shard?); resume from a complete upstream copy",
                self.router.seq(),
            );
            match record {
                WalRecord::Instance {
                    eval_at, instance, ..
                } => match eval_at {
                    Some(at) => self.ingest_at(instance.clone(), *at),
                    None => self.ingest(instance.clone()),
                },
                WalRecord::Probe {
                    subscription, at, ..
                } => {
                    assert!(
                        self.probe_silence(SubscriptionId(*subscription), *at),
                        "replayed probe for unknown subscription {subscription} — \
                         re-register the original subscriptions in order before replaying",
                    );
                }
                // Heartbeats and checkpoints are derived by the live
                // path; Replay::records never yields them.
                WalRecord::Heartbeat { .. } | WalRecord::Watermark { .. } => {}
            }
        }
    }

    /// The first ingest sequence *not* guaranteed durable across every
    /// shard log: where an upstream re-feed should resume after
    /// [`Engine::recover`] (0 for an engine that did not recover).
    #[must_use]
    pub fn resume_from(&self) -> u64 {
        self.resume_seq
    }

    /// Begins crash recovery from the write-ahead logs named by
    /// `config.durability` (which must be [`Durability::Wal`]; the
    /// directory holds a previous run's logs — possibly torn by the
    /// crash).
    ///
    /// Recovery is a three-step handshake, because replay can only
    /// deliver into registered subscriptions:
    ///
    /// 1. `Engine::recover(config)` reads every shard chain, repairs
    ///    torn tails (truncating them on disk), and computes the resume
    ///    point;
    /// 2. the caller re-registers its subscriptions on the returned
    ///    [`Recovery`] **in the original registration order** (ids are
    ///    reassigned deterministically, so logged probe records resolve);
    /// 3. [`Recovery::resume`] replays each shard's durable records
    ///    through the normal evaluation path — rebuilding reorder and
    ///    detector state and re-delivering the durable prefix's
    ///    notifications into the fresh sinks — and returns the live
    ///    engine. In deterministic mode the resumed engine is
    ///    bit-identical to an uninterrupted run fed the same stream.
    ///
    /// The upstream should then re-feed everything from
    /// [`Engine::resume_from`] on; operations some shard logs already
    /// hold are deduplicated per shard by sequence number.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no WAL, is invalid, or names a
    /// directory written with a larger shard count, and on unreadable
    /// logs (I/O errors — torn tails are repaired, not errors).
    #[must_use]
    pub fn recover(config: EngineConfig) -> Recovery {
        let Durability::Wal { dir, .. } = &config.durability else {
            panic!("Engine::recover requires Durability::Wal");
        };
        let dir = dir.clone();
        let found = wal_shards(&dir).unwrap_or_else(|e| panic!("scan wal dir: {e}"));
        assert!(
            found.iter().all(|&s| s < config.shard_count),
            "wal at {} was written with more shards than the config's {}",
            dir.display(),
            config.shard_count,
        );
        // Read and repair *before* Engine::start opens fresh segments,
        // so repair never mistakes them for post-torn history.
        let plan: Vec<RecoveredShard> = (0..config.shard_count)
            .map(|shard| {
                read_shard(&dir, shard, true)
                    .unwrap_or_else(|e| panic!("recover shard {shard} wal: {e}"))
            })
            .collect();
        // Resume where the *least* durable shard ends: everything below
        // is provably in every log that needs it (appends are ordered,
        // so a shard's log holds every operation routed to it up to its
        // own durable maximum).
        let resume_seq = plan
            .iter()
            .map(|r| r.durable_seq.map_or(0, |d| d + 1))
            .min()
            .unwrap_or(0);
        // Seed the router's stream clock with what it had seen by the
        // resume point, so re-fed operations get their original prefix
        // high-water stamps (bit-identical late-drop decisions).
        let mut high_water: Option<TimePoint> = None;
        let mut note = |t: TimePoint| {
            high_water = Some(high_water.map_or(t, |h| h.max(t)));
        };
        for record in plan.iter().flat_map(|r| &r.records) {
            match record {
                WalRecord::Instance {
                    seq,
                    eval_at,
                    instance,
                    ..
                } if *seq < resume_seq => {
                    note(eval_at.unwrap_or_else(|| instance.generation_time()));
                }
                // A heartbeat cut after operation `seq` summarizes keys
                // up to and including it, so only strictly-pre-resume
                // heartbeats may seed the clock.
                WalRecord::Heartbeat {
                    seq,
                    high_water: hw,
                } if *seq < resume_seq => note(*hw),
                _ => {}
            }
        }
        let stats = RecoveryStats {
            resume_seq,
            records: plan.iter().map(|r| r.records.len() as u64).sum(),
            torn_truncations: plan.iter().map(|r| r.torn_truncations).sum(),
        };
        let mut engine = Engine::start(config);
        engine.router.seed_recovery(resume_seq, high_water);
        engine.resume_seq = resume_seq;
        Recovery {
            engine,
            plan,
            stats,
        }
    }

    /// Sends a silence heartbeat to one sustained subscription (see
    /// [`crate::SilenceSpec`]): if its input has been quiet for the
    /// configured timeout, the inactive sample is fed at `at` so open
    /// episodes can close. Returns `false` for unknown ids.
    ///
    /// The probe rides the home shard's reorder buffer like any other
    /// stream entry: it reaches the detector in stream order (earlier
    /// samples still held behind the watermark slack evaluate first),
    /// advances that shard's stream clock to `at`, and is discarded as
    /// stale if the watermark has already passed `at`.
    pub fn probe_silence(&mut self, id: SubscriptionId, at: TimePoint) -> bool {
        let Some(home) = self.router.home_of(id) else {
            return false;
        };
        // Flush first so the probe lands after everything routed so far.
        self.flush_shard(home);
        // Probes consume ingest sequence numbers from the same counter
        // as instances, so the write-ahead logs carry a total order over
        // all operations.
        let seq = self.router.take_seq();
        self.send(home, ShardMessage::SilenceProbe { id, at, seq });
        true
    }

    /// Flushes every pending batch and, in threaded mode, blocks until
    /// every shard worker has processed everything sent so far. After
    /// `sync` returns, every prior ingest has been evaluated and its
    /// notifications delivered — except instances a nonzero watermark
    /// slack still holds for reordering, which notify once the
    /// watermark passes them. The station ingest path (zero slack)
    /// relies on this for synchronous fold-back of derived instances.
    ///
    /// The barrier is amortized: only *dirty* shards — those sent a
    /// message since their last barrier — are waited on, and the flush
    /// underneath cuts heartbeat-only batches only when the stream
    /// clock advanced (see [`ShardRouter::needs_heartbeat`]). A driver
    /// syncing once per delivery therefore pays one all-shard round per
    /// simulation tick, not per delivery: within a tick the clock is
    /// unchanged and only the shards the delivery actually touched are
    /// flushed and barriered.
    pub fn sync(&mut self) {
        self.flush();
        if let Backend::Threaded { senders, .. } = &self.backend {
            let (ack, done) = std::sync::mpsc::channel();
            for (shard, sender) in senders.iter().enumerate() {
                if !self.dirty[shard] {
                    continue;
                }
                sender
                    .send(ShardMessage::Sync(ack.clone()))
                    .unwrap_or_else(|_| panic!("shard {shard} worker terminated"));
            }
            drop(ack);
            while done.recv().is_ok() {}
        }
        self.dirty.fill(false);
    }

    /// Flushes every partially-filled batch without shutting down,
    /// and sends the current watermark heartbeat to *every* shard — a
    /// shard whose territory has gone quiet otherwise holds reordered
    /// instances until [`Engine::finish`]. Live-stream drivers should
    /// call this periodically.
    pub fn flush(&mut self) {
        for shard in 0..self.config.shard_count {
            self.flush_shard(shard);
        }
    }

    /// Flushes remaining batches, drains every shard's reorder buffer,
    /// joins the workers, and returns the run's report.
    ///
    /// # Panics
    ///
    /// Panics if a shard worker panicked.
    #[must_use]
    pub fn finish(mut self) -> EngineReport {
        self.flush();
        self.shutdown()
    }

    /// Like [`Engine::finish`], but first finalizes the stream at the
    /// given horizon: every shard drains its reorder buffer and closes
    /// open sustained episodes at `horizon` (scenario end — the paper's
    /// simulation horizon), delivering their `Ended` notifications
    /// before shutdown.
    ///
    /// # Panics
    ///
    /// Panics if a shard worker panicked.
    #[must_use]
    pub fn finish_at(mut self, horizon: TimePoint) -> EngineReport {
        self.flush();
        for shard in 0..self.config.shard_count {
            self.send(shard, ShardMessage::Finalize(horizon));
        }
        self.shutdown()
    }

    /// Joins the workers and assembles the report.
    fn shutdown(mut self) -> EngineReport {
        let shards = match self.backend {
            Backend::Inline(workers) => workers.into_iter().map(ShardWorker::finish).collect(),
            Backend::Threaded { senders, handles } => {
                // Closing the channels ends the worker loops; each
                // worker flushes and returns its counters.
                drop(senders);
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard worker panicked"))
                    .collect()
            }
        };
        EngineReport {
            shards,
            router: self.router.take_metrics(),
            elapsed: self.started.elapsed(),
        }
    }

    /// Hands the pending batch for `shard` to its worker, honouring the
    /// backpressure policy. A batch that would carry neither instances
    /// nor a heartbeat the shard hasn't already seen is not cut at all.
    fn flush_shard(&mut self, shard: ShardId) {
        if self.router.pending_len(shard) == 0 && !self.router.needs_heartbeat(shard) {
            return;
        }
        let batch = self.router.take_batch(shard);
        self.send(shard, ShardMessage::Batch(batch));
    }

    fn send(&mut self, shard: ShardId, message: ShardMessage) {
        self.dirty[shard] = true;
        match &mut self.backend {
            Backend::Inline(workers) => workers[shard].handle(message),
            Backend::Threaded { senders, .. } => match self.config.backpressure {
                BackpressurePolicy::Block => senders[shard]
                    .send(message)
                    .unwrap_or_else(|_| panic!("shard {shard} worker terminated")),
                BackpressurePolicy::DropNewest => match senders[shard].try_send(message) {
                    Ok(()) => {}
                    Err(TrySendError::Full(dropped)) => {
                        // Control messages are never dropped: losing a
                        // Subscribe/Unsubscribe would silently change
                        // semantics, so block for those.
                        if matches!(dropped, ShardMessage::Batch(_)) {
                            self.router.note_dropped_batch();
                        } else {
                            senders[shard]
                                .send(dropped)
                                .unwrap_or_else(|_| panic!("shard {shard} worker terminated"));
                        }
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        panic!("shard {shard} worker terminated")
                    }
                },
            },
        }
    }
}

/// What [`Engine::recover`] found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// First ingest sequence not guaranteed durable on every shard —
    /// where the upstream re-feed resumes.
    pub resume_seq: u64,
    /// Intact records recovered across all shard logs.
    pub records: u64,
    /// Torn-tail truncations repaired across all shard logs.
    pub torn_truncations: u64,
}

/// The subscription-registration window of a crash recovery: the engine
/// exists but has not replayed its logs yet (see [`Engine::recover`]).
pub struct Recovery {
    engine: Engine,
    plan: Vec<RecoveredShard>,
    stats: RecoveryStats,
}

impl Recovery {
    /// Re-registers a subscription. Call in the original registration
    /// order so ids — which logged probe records reference — line up.
    pub fn subscribe(&mut self, subscription: Subscription) -> SubscriptionId {
        self.engine.subscribe(subscription)
    }

    /// What recovery found on disk.
    #[must_use]
    pub fn stats(&self) -> RecoveryStats {
        self.stats
    }

    /// Replays every shard's durable records and returns the live
    /// engine, ready for the upstream re-feed from
    /// [`Engine::resume_from`].
    #[must_use]
    pub fn resume(mut self) -> Engine {
        for recovered in self.plan {
            let shard = recovered.shard;
            self.engine.send(
                shard,
                ShardMessage::Recover {
                    records: recovered.records,
                    durable_seq: recovered.durable_seq,
                    torn: recovered.torn_truncations,
                },
            );
            self.engine.send(shard, ShardMessage::EndRecovery);
        }
        self.engine
    }
}

impl std::fmt::Debug for Recovery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recovery")
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("config", &self.config)
            .field("subscriptions", &self.next_subscription)
            .finish_non_exhaustive()
    }
}
