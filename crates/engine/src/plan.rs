//! Plan canonicalization: collapsing structurally identical
//! subscriptions onto shared detector plans.
//!
//! The paper's workload is many observers posing the *same*
//! spatio-temporal question over different sinks: 10⁵–10⁶ stations
//! whose conditions differ only in who gets told. Evaluating one
//! detector per subscriber makes dispatch cost scale with the
//! population; evaluating one detector per *template* makes it scale
//! with the number of distinct questions. At registration the engine
//! canonicalizes each [`crate::Subscription`] into a **plan key** — a
//! string encoding of every field that influences what the detector
//! computes (region, event/layer filters, condition, pattern or
//! sustained shape, home shard) with subscriber identity (name, sink,
//! delivered count) abstracted out — and subscriptions with equal keys
//! share ONE detector instance in the shard worker, fanning its output
//! out to a subscriber list.
//!
//! What does *not* dedupe, and why:
//!
//! * **Pattern subscriptions without an explicit observer** — the
//!   default [`stem_core::ConditionObserver`] is synthesized from the
//!   subscription id, so two anonymous pattern subscriptions emit
//!   *different* derived instances and cannot share.
//! * **Sustained subscriptions with a silence policy** — a silence
//!   probe closes the episode the moment one subscriber's timeout
//!   fires; a shared detector would end the episode for every
//!   subscriber on the *first* probe and starve the rest.
//! * **Stateful plans (pattern / sustained) with different scopes** —
//!   the scope gates which instances *feed the detector*, so detector
//!   state diverges across scopes; the scope is part of their key.
//!   Plain conditions are pure, so their scope stays out of the key
//!   and is re-checked per subscriber at fan-out instead.
//!
//! Sharing is correctness-preserving: a plan's home shard is computed
//! exactly as the unshared home would be, evaluation outputs are
//! memoized per instance and fanned out in subscriber registration
//! order, and per-subscriber scope gates reproduce the unshared prune
//! decisions — so deliveries (content, order, and `Notification::shard`)
//! are bit-identical with sharing on or off.

use crate::config::ShardId;
use crate::subscription::{Subscription, SubscriptionId};
use std::fmt::{self, Write as _};

/// Identifies one shared detector plan (dense, allocated in
/// registration order so recovery re-derives the same ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) struct PlanId(pub(crate) u64);

impl PlanId {
    /// The raw id.
    pub(crate) fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PlanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan{}", self.0)
    }
}

/// Canonicalizes a subscription into its plan key. Subscriptions with
/// equal keys are evaluation-equivalent and share one detector; a
/// non-shareable subscription (or any subscription with `sharing`
/// off) gets a key unique to its id, i.e. a plan with one subscriber.
pub(crate) fn plan_key(
    sub: &Subscription,
    home: ShardId,
    sharing: bool,
    id: SubscriptionId,
) -> String {
    if !sharing {
        return format!("unshared:{}", id.raw());
    }
    if sub.pattern.is_some() && sub.observer.is_none() {
        // The default observer identity is keyed by subscription id, so
        // derived instances differ per subscriber.
        return format!("pattern-anon:{}", id.raw());
    }
    if sub.sustained.as_ref().is_some_and(|s| s.silence.is_some()) {
        // Silence probes are addressed to one subscriber's episode
        // clock; sharing would close everyone's episode on the first
        // probe.
        return format!("sustained-silence:{}", id.raw());
    }
    // Dispatch-level filters are plan-level for every kind: home shard,
    // region, event filter, layer filter.
    let mut key = String::new();
    let _ = write!(
        key,
        "h{home}|r{:?}|e{:?}|l{:?}",
        sub.region, sub.event_filter, sub.layers
    );
    if let Some(spec) = &sub.pattern {
        // Stateful: the scope gates the detector's input stream, so it
        // is part of the template. The condition only matters through
        // the default definition (an explicit definition supersedes it).
        let _ = write!(
            key,
            "|P{:?}|m{:?}|z{:?}",
            spec.pattern, spec.mode, spec.horizon
        );
        match &sub.definition {
            Some(def) => {
                let _ = write!(key, "|d{def:?}");
            }
            None => {
                let _ = write!(key, "|n{:?}|c{:?}", sub.name, sub.condition);
            }
        }
        let _ = write!(key, "|o{:?}|s{:?}", sub.observer, sub.scope);
    } else if let Some(spec) = &sub.sustained {
        // Stateful, same scope rule; silence is None here by the guard
        // above.
        let _ = write!(
            key,
            "|S{:?}|v{:?}|g{}|c{:?}|s{:?}",
            spec.config, spec.value, spec.negate, sub.condition, sub.scope
        );
    } else {
        // Plain conditions are pure: scope, name, and sink stay out of
        // the key and are re-applied per subscriber at fan-out.
        let _ = write!(key, "|c{:?}", sub.condition);
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subscription::{SilenceSpec, Subscription, SustainedSpec, SustainedValue};
    use stem_cep::{ConsumptionMode, Pattern, SustainedConfig};
    use stem_core::{dsl, CcuId, ConditionObserver, ObserverId};
    use stem_spatial::{Circle, Field, Point, SpatialExtent};
    use stem_temporal::Duration;

    fn region() -> SpatialExtent {
        SpatialExtent::field(Field::circle(Circle::new(Point::new(30.0, 30.0), 20.0)))
    }

    fn plain(name: &str) -> Subscription {
        Subscription::new(name, region(), crate::subscription::Collector::new().sink())
            .for_event("reading")
            .when(dsl::parse("x.temp > 45").unwrap())
    }

    #[test]
    fn identical_plain_templates_share_regardless_of_name_and_sink() {
        let a = plan_key(&plain("station-1"), 0, true, SubscriptionId(0));
        let b = plan_key(&plain("station-2"), 0, true, SubscriptionId(1));
        assert_eq!(a, b, "name and sink are subscriber identity, not template");
    }

    #[test]
    fn condition_region_home_and_sharing_flag_all_split_plans() {
        let base = plan_key(&plain("s"), 0, true, SubscriptionId(0));
        let cold = plain("s").when(dsl::parse("x.temp > 90").unwrap());
        assert_ne!(base, plan_key(&cold, 0, true, SubscriptionId(1)));
        let elsewhere = Subscription::new(
            "s",
            SpatialExtent::field(Field::circle(Circle::new(Point::new(70.0, 70.0), 20.0))),
            crate::subscription::Collector::new().sink(),
        )
        .for_event("reading")
        .when(dsl::parse("x.temp > 45").unwrap());
        assert_ne!(base, plan_key(&elsewhere, 0, true, SubscriptionId(2)));
        assert_ne!(base, plan_key(&plain("s"), 1, true, SubscriptionId(3)));
        let off_a = plan_key(&plain("s"), 0, false, SubscriptionId(0));
        let off_b = plan_key(&plain("s"), 0, false, SubscriptionId(1));
        assert_ne!(off_a, off_b, "sharing off makes every key unique");
    }

    #[test]
    fn anonymous_patterns_and_silence_sustained_never_share() {
        let pat = |i: u64| {
            let sub = plain("p").matching(
                Pattern::atom("a", "door").then(Pattern::atom("b", "motion")),
                ConsumptionMode::Chronicle,
                None,
            );
            plan_key(&sub, 0, true, SubscriptionId(i))
        };
        assert_ne!(pat(0), pat(1), "default observer is keyed by id");

        let observed = |i: u64| {
            let sub = plain("p")
                .matching(
                    Pattern::atom("a", "door").then(Pattern::atom("b", "motion")),
                    ConsumptionMode::Chronicle,
                    None,
                )
                .observed_by(ConditionObserver::new(
                    ObserverId::Ccu(CcuId::new(7)),
                    Point::new(30.0, 30.0),
                    1.0,
                ));
            plan_key(&sub, 0, true, SubscriptionId(i))
        };
        assert_eq!(observed(0), observed(1), "explicit observer shares");

        let sustained = |silence: Option<SilenceSpec>, i: u64| {
            let sub = plain("w").sustained_spec(SustainedSpec {
                config: SustainedConfig::boolean(Duration::new(10)),
                value: SustainedValue::Condition,
                negate: false,
                silence,
            });
            plan_key(&sub, 0, true, SubscriptionId(i))
        };
        let quiet = Some(SilenceSpec {
            timeout: Duration::new(30),
            inactive_value: 0.0,
        });
        assert_ne!(
            sustained(quiet.clone(), 0),
            sustained(quiet, 1),
            "silence-policied sustained plans stay per-subscriber"
        );
        assert_eq!(sustained(None, 0), sustained(None, 1));
    }
}
