//! Engine-side flight recording: the bounded per-shard trace rings and
//! the worker-held sampling state behind [`crate::TracePolicy`].
//!
//! Provenance itself ([`stem_core::Provenance`]) is attached to every
//! notification whenever tracing is on at all; the *ring* is what the
//! policy samples. The ring holds already-serialized-shape
//! [`stem_obs::TraceRecord`]s so export and the in-process view
//! ([`TraceHandle`]) are the same data.

use crate::config::TracePolicy;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use stem_core::{DropVerdict, TraceClock, TraceId};
use stem_obs::TraceRecord;

/// A bounded ring of trace records: pushing past capacity evicts the
/// oldest. One per shard, shared between the worker (writer) and the
/// engine's [`TraceHandle`] (reader) behind a mutex the worker touches
/// only when the policy actually samples a record.
#[derive(Debug)]
pub struct FlightRing {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    /// Records evicted to stay within capacity (so consumers can tell a
    /// short history from a truncated one).
    evicted: u64,
}

impl FlightRing {
    /// An empty ring holding at most `capacity` records (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        FlightRing {
            records: VecDeque::new(),
            capacity: capacity.max(1),
            evicted: 0,
        }
    }

    /// Appends a record, evicting the oldest if the ring is full.
    pub fn push(&mut self, record: TraceRecord) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.evicted += 1;
        }
        self.records.push_back(record);
    }

    /// The retained records, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.records.iter().cloned().collect()
    }

    /// Records evicted so far.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Number of retained records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the ring holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Bound on remembered drop verdicts between notifications: a burst of
/// late arrivals should not grow a worker allocation without limit, and
/// a handful of near-miss constituents is what a lineage reader can
/// actually use.
const RECENT_DROPS: usize = 16;

/// Per-worker tracing state: the shared clock, the sampling policy, the
/// shard's flight ring, and the drop verdicts accumulated since the
/// last notification (drained into the next notification's provenance).
#[derive(Debug)]
pub struct WorkerTrace {
    /// The engine-wide trace clock (wall in threaded mode, virtual in
    /// deterministic mode).
    pub clock: Arc<TraceClock>,
    /// What the ring samples.
    pub policy: TracePolicy,
    /// This shard's flight ring.
    pub ring: Arc<Mutex<FlightRing>>,
    /// Monotone per-shard notification id for ring `Notify` records
    /// (`(shard, id)` is globally unique).
    pub next_notify_id: u64,
    /// Drop verdicts since the last notification, oldest first, bounded
    /// at [`RECENT_DROPS`].
    recent_drops: VecDeque<(TraceId, DropVerdict)>,
}

impl WorkerTrace {
    /// Fresh worker state over a shared clock and ring.
    #[must_use]
    pub fn new(clock: Arc<TraceClock>, policy: TracePolicy, ring: Arc<Mutex<FlightRing>>) -> Self {
        WorkerTrace {
            clock,
            policy,
            ring,
            next_notify_id: 0,
            recent_drops: VecDeque::new(),
        }
    }

    /// Whether an *instance* with this trace id should be ring-recorded
    /// on release (drops and notifications have their own rules).
    #[must_use]
    pub fn samples_instance(&self, trace: TraceId) -> bool {
        match self.policy {
            TracePolicy::Off | TracePolicy::NotificationsOnly => false,
            TracePolicy::Always => true,
            TracePolicy::OneInN(n) => trace.0.is_multiple_of(u64::from(n.max(1))),
        }
    }

    /// Whether drop records enter the ring (under `NotificationsOnly`
    /// they surface only as verdicts inside provenance).
    #[must_use]
    pub fn samples_drops(&self) -> bool {
        !matches!(
            self.policy,
            TracePolicy::Off | TracePolicy::NotificationsOnly
        )
    }

    /// Remembers a drop verdict for the next notification's provenance
    /// (bounded: the oldest verdict gives way under a burst).
    pub fn note_drop(&mut self, trace: TraceId, verdict: DropVerdict) {
        if self.recent_drops.len() == RECENT_DROPS {
            self.recent_drops.pop_front();
        }
        self.recent_drops.push_back((trace, verdict));
    }

    /// Drains the verdicts accumulated since the last call.
    #[must_use]
    pub fn take_drops(&mut self) -> Vec<(TraceId, DropVerdict)> {
        self.recent_drops.drain(..).collect()
    }

    /// Pushes a record into the shard's ring.
    pub fn record(&self, record: TraceRecord) {
        self.ring.lock().expect("trace ring poisoned").push(record);
    }

    /// Consumes the next per-shard notification id.
    pub fn take_notify_id(&mut self) -> u64 {
        let id = self.next_notify_id;
        self.next_notify_id += 1;
        id
    }
}

/// A live view over every shard's flight ring, handed out by
/// `Engine::trace` (mirroring `Engine::obs` for metrics).
#[derive(Debug, Clone)]
pub struct TraceHandle {
    rings: Vec<Arc<Mutex<FlightRing>>>,
}

impl TraceHandle {
    pub(crate) fn new(rings: Vec<Arc<Mutex<FlightRing>>>) -> Self {
        TraceHandle { rings }
    }

    /// Number of shard rings.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.rings.len()
    }

    /// A point-in-time copy of one shard's ring, oldest record first.
    #[must_use]
    pub fn shard_records(&self, shard: usize) -> Vec<TraceRecord> {
        self.rings[shard]
            .lock()
            .expect("trace ring poisoned")
            .snapshot()
    }

    /// A point-in-time copy of every ring, concatenated in shard order.
    #[must_use]
    pub fn records(&self) -> Vec<TraceRecord> {
        let mut all = Vec::new();
        for ring in &self.rings {
            all.extend(ring.lock().expect("trace ring poisoned").snapshot());
        }
        all
    }

    /// Total records evicted across all rings.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.rings
            .iter()
            .map(|r| r.lock().expect("trace ring poisoned").evicted())
            .sum()
    }
}

/// The trace section of an [`crate::EngineReport`]: the final ring
/// contents at shutdown, concatenated in shard order.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// Every ring record retained at shutdown.
    pub records: Vec<TraceRecord>,
    /// Records the rings evicted over the run.
    pub evicted: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(trace: u64) -> TraceRecord {
        TraceRecord::Drop {
            shard: 0,
            trace,
            verdict: stem_obs::TraceDropKind::Late,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts() {
        let mut ring = FlightRing::new(2);
        ring.push(rec(0));
        ring.push(rec(1));
        ring.push(rec(2));
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.evicted(), 1);
        let kept: Vec<u64> = ring
            .snapshot()
            .iter()
            .map(|r| match r {
                TraceRecord::Drop { trace, .. } => *trace,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![1, 2], "oldest gave way");
    }

    #[test]
    fn sampling_rules_follow_policy() {
        let clock = Arc::new(TraceClock::deterministic());
        let ring = Arc::new(Mutex::new(FlightRing::new(8)));
        let mk = |policy| WorkerTrace::new(Arc::clone(&clock), policy, Arc::clone(&ring));

        let always = mk(TracePolicy::Always);
        assert!(always.samples_instance(TraceId(7)));
        assert!(always.samples_drops());

        let notif = mk(TracePolicy::NotificationsOnly);
        assert!(!notif.samples_instance(TraceId(0)));
        assert!(!notif.samples_drops());

        let nth = mk(TracePolicy::OneInN(4));
        let sampled: Vec<u64> = (0..9)
            .filter(|&i| nth.samples_instance(TraceId(i)))
            .collect();
        assert_eq!(sampled, vec![0, 4, 8]);
        assert!(nth.samples_drops());
    }

    #[test]
    fn drop_verdicts_are_bounded_and_drained() {
        let clock = Arc::new(TraceClock::deterministic());
        let ring = Arc::new(Mutex::new(FlightRing::new(8)));
        let mut wt = WorkerTrace::new(clock, TracePolicy::NotificationsOnly, ring);
        for i in 0..20u64 {
            wt.note_drop(TraceId(i), stem_core::DropVerdict::Late);
        }
        let drained = wt.take_drops();
        assert_eq!(drained.len(), RECENT_DROPS);
        assert_eq!(drained[0].0, TraceId(4), "burst evicted the oldest");
        assert!(wt.take_drops().is_empty(), "drained means drained");
    }
}
