//! Shard workers: reorder, evaluate, notify.

use crate::batch::{Batch, ItemPayload};
use crate::config::ShardId;
use crate::metrics::ShardMetrics;
use crate::plan::PlanId;
use crate::subscription::{
    EventSink, Notification, NotificationKind, SilenceSpec, Subscription, SubscriptionId,
    SustainedValue,
};
use crate::trace::WorkerTrace;
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::Arc;
use stem_cep::{CompositeDetector, ReorderBuffer, SustainedDetector, SustainedEvent};
use stem_core::codec::{self, CodecError, CodecResult, StateCodec};
use stem_core::timing::{Clock, SpanToken};
use stem_core::{
    Bindings, CcuId, ConditionExpr, ConditionObserver, Constituent, DropVerdict, EntityName,
    EventDefinition, EventId, EventInstance, Layer, ObserverId, Provenance, StageStamps, TraceId,
};
use stem_obs::{ObsRegistry, Recorder, Stage, TraceConstituent, TraceRecord};
use stem_snap::ShardSnapshot;
use stem_spatial::{Bvh, Rect, SpatialExtent};
use stem_temporal::{Duration, TimePoint};
use stem_wal::{ShardWal, WalRecord};

/// A shard worker's telemetry state: a plain cumulative [`Recorder`]
/// mutated lock-free on the hot path, a span clock (wall nanos in
/// threaded runs, deterministic virtual ticks in deterministic runs),
/// and per-batch stage accumulators flushed into the recorder once per
/// batch — one histogram sample per stage per batch, not per instance.
pub(crate) struct WorkerObs {
    registry: Arc<ObsRegistry>,
    clock: Clock,
    recorder: Recorder,
    /// Nanos (or virtual ticks) accumulated per stage within the
    /// current batch.
    acc: [u64; Stage::COUNT],
    /// Batches since the last publish into the registry slot.
    batches_since_publish: u64,
}

impl WorkerObs {
    /// How many batches may elapse between slot publishes (syncs,
    /// checkpoints, and shutdown always publish immediately).
    const PUBLISH_EVERY: u64 = 8;

    pub(crate) fn new(registry: Arc<ObsRegistry>, clock: Clock) -> Self {
        WorkerObs {
            registry,
            clock,
            recorder: Recorder::new(),
            acc: [0; Stage::COUNT],
            batches_since_publish: 0,
        }
    }
}

/// Where a shard writes its checkpoint snapshots and how many epochs it
/// retains (present whenever the engine has a WAL — manual checkpoints
/// work even under [`crate::CheckpointPolicy::Never`]).
#[derive(Debug, Clone)]
pub(crate) struct SnapContext {
    /// The snapshot directory (shared with the WAL).
    pub dir: PathBuf,
    /// Snapshot epochs retained per shard (>= 2).
    pub retain: usize,
}

/// What travels over a shard's input channel.
pub(crate) enum ShardMessage {
    /// Instances plus the router's watermark heartbeat.
    Batch(Batch),
    /// A subscription homed on this shard (boxed: it is much larger
    /// than the other variants).
    Subscribe(Box<SubscriptionState>),
    /// Retire a subscription.
    Unsubscribe(SubscriptionId),
    /// Silence heartbeat for one sustained subscription: feed its
    /// inactive sample if no input arrived for its configured timeout.
    SilenceProbe {
        /// The sustained subscription to probe.
        id: SubscriptionId,
        /// The probe's observer-local time.
        at: TimePoint,
        /// The probe's global ingest sequence number.
        seq: u64,
        /// The router's high-water mark over the stream's strict prefix
        /// at probe time, observed before the staleness check so the
        /// accept/drop decision never depends on heartbeat delivery
        /// (heartbeats to clean shards are suppressed entirely).
        prefix_high_water: Option<TimePoint>,
    },
    /// Crash recovery: restore the newest valid checkpoint snapshot (if
    /// any), then replay this shard's durable log *tail* to rebuild
    /// reorder/detector state (re-delivering the tail's notifications to
    /// the freshly registered sinks; notifications the snapshot already
    /// covers are not re-delivered — they are compressed into state).
    Recover {
        /// The shard's newest valid snapshot (`None` = full-log replay).
        snapshot: Option<Box<ShardSnapshot>>,
        /// The shard's recovered tail records, in append order (the full
        /// log without a snapshot).
        records: Vec<WalRecord>,
        /// The largest ingest sequence the shard is durable through
        /// (snapshot coverage included): later re-fed operations at or
        /// below it are duplicates and are skipped.
        durable_seq: Option<u64>,
        /// Torn-tail truncations the recovery reader repaired.
        torn: u64,
    },
    /// Cut a checkpoint snapshot: the barrier guarantees everything
    /// routed before this message has been evaluated and journaled, so
    /// the serialized state is a consistent compression of the log
    /// prefix below `next_seq`.
    Checkpoint {
        /// The checkpoint epoch (names the snapshot file).
        epoch: u64,
        /// The engine's global ingest sequence at the barrier.
        next_seq: u64,
        /// The router's stream-clock high-water mark at the barrier.
        high_water: Option<TimePoint>,
        /// Acknowledged once the snapshot is durably on disk (and
        /// retention + compaction have run).
        ack: std::sync::mpsc::Sender<()>,
    },
    /// Recovery replay is complete: resume live input (silence probes
    /// are accepted again).
    EndRecovery,
    /// Stream horizon: drain the reorder buffer and close any open
    /// sustained episodes at the given time.
    Finalize(TimePoint),
}

/// Bound on a sustained detector's remembered constituents: the most
/// recent accepted samples are what a lineage reader wants for an
/// episode notification; the full episode can span millions.
const SUSTAINED_CONSTITUENTS: usize = 8;

/// A sustained detector resident on a shard, with its sampling rules.
struct SustainedState {
    detector: SustainedDetector,
    value: SustainedValue,
    negate: bool,
    silence: Option<SilenceSpec>,
    /// When the last input sample arrived (silence-staleness clock).
    last_input: Option<TimePoint>,
    /// The most recent accepted samples' trace identities (bounded at
    /// [`SUSTAINED_CONSTITUENTS`]; empty with tracing off).
    constituents: VecDeque<Constituent>,
}

impl SustainedState {
    /// Remembers an accepted sample's identity for episode provenance.
    fn push_constituent(&mut self, c: Constituent) {
        if self.constituents.len() == SUSTAINED_CONSTITUENTS {
            self.constituents.pop_front();
        }
        self.constituents.push_back(c);
    }
}

/// How a subscription's stream is evaluated on its home shard.
enum EvalKind {
    /// Deliver condition-passing instances directly.
    Plain,
    /// Feed a pattern detector; deliver derived instances (boxed:
    /// far larger than the other variants).
    Pattern(Box<CompositeDetector>),
    /// Feed a sustained detector; deliver episode notifications.
    Sustained(SustainedState),
}

/// A [`Subscription`] compiled for residence on one shard, tagged with
/// the plan it instantiates. The worker splits it on arrival: the first
/// subscriber of a plan donates the template (filters + detector), and
/// every subscriber contributes its identity row (id, scope, sink,
/// delivered count).
pub(crate) struct SubscriptionState {
    id: SubscriptionId,
    /// The shared plan this subscription instantiates (assigned by the
    /// engine's canonicalizer; unique per subscription with sharing
    /// off).
    plan: PlanId,
    region: SpatialExtent,
    bbox: Rect,
    /// The explicit routing scope with its bounding box, when one was
    /// set: instances outside it are pruned before any other filter
    /// (out-of-scope work the router's leaf granularity let through).
    scope: Option<(Rect, SpatialExtent)>,
    event_filter: Option<EventId>,
    layers: Option<Vec<Layer>>,
    /// The per-instance condition (for `Plain` / `Sustained`; a pattern
    /// subscription's condition lives inside its detector where it is
    /// evaluated over the match's bindings).
    condition: Option<ConditionExpr>,
    /// Entity names the condition binds (all bound to the candidate
    /// instance).
    entities: Vec<EntityName>,
    kind: EvalKind,
    sink: Box<dyn EventSink>,
    /// Notifications delivered to this subscription's sink so far.
    /// Persisted in checkpoint snapshots as the "already delivered"
    /// count a resumed run will not re-deliver.
    delivered: u64,
}

impl SubscriptionState {
    /// Compiles `sub` for residence on its home shard.
    pub(crate) fn compile(id: SubscriptionId, plan: PlanId, sub: Subscription) -> Self {
        let bbox = sub.region.bounding_box();
        let scope = sub.scope.clone().map(|scope| (scope.bounding_box(), scope));
        let (kind, condition) = if let Some(spec) = sub.pattern {
            // The definition override carries the registrant's estimation
            // policies and projections; without one, the composite
            // condition (empty conjunction = always true) is evaluated
            // over pattern-match bindings by a default cyber definition.
            let definition = sub.definition.unwrap_or_else(|| {
                let condition = sub
                    .condition
                    .unwrap_or_else(|| ConditionExpr::And(Vec::new()));
                EventDefinition::new(sub.name.clone(), Layer::Cyber, condition)
            });
            // Without an observer override, the identity is keyed by
            // subscription (not by shard) so derived instances are
            // identical whatever the shard count — the
            // sharding-equivalence tests rely on it.
            let observer = sub.observer.unwrap_or_else(|| {
                ConditionObserver::new(
                    ObserverId::Ccu(CcuId::new(u32::try_from(id.raw()).unwrap_or(u32::MAX))),
                    bbox.center(),
                    1.0,
                )
            });
            let detector =
                CompositeDetector::new(definition, spec.pattern, spec.mode, spec.horizon, observer);
            (EvalKind::Pattern(Box::new(detector)), None)
        } else if let Some(spec) = sub.sustained {
            (
                EvalKind::Sustained(SustainedState {
                    detector: SustainedDetector::new(spec.config),
                    value: spec.value,
                    negate: spec.negate,
                    silence: spec.silence,
                    last_input: None,
                    constituents: VecDeque::new(),
                }),
                sub.condition,
            )
        } else {
            (EvalKind::Plain, sub.condition)
        };
        let entities = condition
            .as_ref()
            .map(ConditionExpr::entity_names)
            .unwrap_or_default();
        SubscriptionState {
            id,
            plan,
            region: sub.region,
            bbox,
            scope,
            event_filter: sub.event_filter,
            layers: sub.layers,
            condition,
            entities,
            kind,
            sink: sub.sink,
            delivered: 0,
        }
    }
}

/// One subscriber of a shared plan: everything that stays per-identity
/// after the template is deduplicated — who to tell, where their scope
/// gate sits, and how much they have already been told.
struct Subscriber {
    id: SubscriptionId,
    /// The subscriber's routing scope (re-checked at fan-out so shared
    /// evaluation prunes exactly what per-subscription evaluation did;
    /// stateful plans carry the scope in their key, so their
    /// subscribers' scopes agree and the detector's input is gated
    /// identically).
    scope: Option<(Rect, SpatialExtent)>,
    sink: Box<dyn EventSink>,
    /// Notifications delivered to this subscriber's sink so far
    /// (persisted per subscriber in checkpoint snapshots).
    delivered: u64,
}

/// One shared detector plan resident on a shard: the template filters
/// and detector state, evaluated once per instance, plus the subscriber
/// list its output fans out to.
struct PlanState {
    id: PlanId,
    region: SpatialExtent,
    bbox: Rect,
    event_filter: Option<EventId>,
    layers: Option<Vec<Layer>>,
    condition: Option<ConditionExpr>,
    entities: Vec<EntityName>,
    kind: EvalKind,
    subscribers: Vec<Subscriber>,
}

impl PlanState {
    /// Creates a plan from its first subscriber's compiled state.
    fn new(state: SubscriptionState) -> Self {
        PlanState {
            id: state.plan,
            region: state.region,
            bbox: state.bbox,
            event_filter: state.event_filter,
            layers: state.layers,
            condition: state.condition,
            entities: state.entities,
            kind: state.kind,
            subscribers: vec![Subscriber {
                id: state.id,
                scope: state.scope,
                sink: state.sink,
                delivered: state.delivered,
            }],
        }
    }
}

/// The memoized result of evaluating one plan against one instance:
/// computed at the first matched subscriber, fanned out to the rest.
/// Owned data only — fan-out re-borrows the plan for its subscriber
/// rows after evaluation releases the detector.
enum PlanOutcome {
    /// Evaluation errored (counted per subscriber, like the unshared
    /// pipeline did).
    Error,
    /// A plain condition that held: deliver the instance.
    PlainPass,
    /// A plain condition that did not hold.
    PlainFail,
    /// Derived instances a pattern detector completed, each with its
    /// resolved constituents.
    Derived(Vec<(EventInstance, Vec<Constituent>)>),
    /// A sustained detector's episode event (if the sample closed one),
    /// with the episode's remembered constituents.
    Sustained(Option<(SustainedEvent, Vec<Constituent>)>),
}

/// Evaluates a per-instance condition with every entity bound to the
/// instance. `None` when evaluation errored.
fn eval_condition(
    condition: &Option<ConditionExpr>,
    entities: &[EntityName],
    instance: &EventInstance,
) -> Option<bool> {
    let Some(cond) = condition else {
        return Some(true);
    };
    let mut bindings = Bindings::new();
    for name in entities {
        bindings.bind(name.clone(), instance.entity_data());
    }
    cond.eval(&bindings).ok()
}

/// Trace bookkeeping riding one reorder-buffer item: the operation's
/// global ingest sequence plus the stage stamps accumulated before the
/// worker. All stamps are 0 with tracing off, for recovery-replayed
/// records, and for items restored from a snapshot — a recovered run's
/// fresh trace clock restarts near zero, so zeroed early stamps are
/// what keep the notify-stage stamps monotone.
#[derive(Debug, Clone, Copy, Default)]
struct ItemMeta {
    /// Global ingest sequence (the trace identity).
    seq: u64,
    /// Engine-entry stamp.
    ingest: u64,
    /// Router stamp.
    route: u64,
    /// Batch-handoff stamp.
    enqueue: u64,
    /// Stamped by the worker when the reorder buffer releases the item.
    release: u64,
}

/// One entry in a shard's reorder buffer, keyed by its observer-local
/// time so the evaluation stream replays in station-clock order.
enum StreamItem {
    /// An instance to evaluate at its time (ingest-provided, defaulting
    /// to the generation time). The payload stays columnar end to end
    /// when it arrived columnar: the filter pass reads the batch's
    /// columns and a standalone instance is only materialized for rows
    /// that actually match a subscription.
    Instance(TimePoint, ItemPayload, ItemMeta),
    /// A queued silence probe: probes travel through the same reorder
    /// buffer as instances — feeding the sustained detector directly on
    /// message arrival would run it out of time order whenever earlier
    /// samples are still held behind the watermark slack.
    Probe {
        id: SubscriptionId,
        at: TimePoint,
        /// The probe's global ingest sequence (its trace identity).
        seq: u64,
    },
}

const SUB_TAG_PLAIN: u8 = 0;
const SUB_TAG_PATTERN: u8 = 1;
const SUB_TAG_SUSTAINED: u8 = 2;

const ITEM_TAG_INSTANCE: u8 = 0;
const ITEM_TAG_PROBE: u8 = 1;

/// Encodes one reorder-buffer payload for a checkpoint snapshot.
///
/// Only the trace *identity* (the ingest seq) persists: stage stamps
/// are clock-relative and a restored run's fresh clock restarts near
/// zero, so they decode as zeros — minimal, and monotone under the new
/// clock.
fn encode_stream_item(item: &StreamItem, buf: &mut Vec<u8>) {
    match item {
        StreamItem::Instance(at, payload, meta) => {
            codec::put_u8(buf, ITEM_TAG_INSTANCE);
            codec::encode_time_point(*at, buf);
            codec::put_u64(buf, meta.seq);
            // Snapshots always hold standalone instances (columnar rows
            // materialize bit-identically), keeping the format stable.
            match payload {
                ItemPayload::Owned(instance) => codec::encode_instance(instance, buf),
                columnar => codec::encode_instance(&columnar.to_instance(), buf),
            }
        }
        StreamItem::Probe { id, at, seq } => {
            codec::put_u8(buf, ITEM_TAG_PROBE);
            codec::put_u64(buf, id.raw());
            codec::encode_time_point(*at, buf);
            codec::put_u64(buf, *seq);
        }
    }
}

/// Decodes one reorder-buffer payload from a checkpoint snapshot.
fn decode_stream_item(bytes: &mut &[u8]) -> CodecResult<StreamItem> {
    match codec::get_u8(bytes)? {
        ITEM_TAG_INSTANCE => {
            let at = codec::decode_time_point(bytes)?;
            let seq = codec::get_u64(bytes)?;
            let instance = codec::decode_instance(bytes)?;
            Ok(StreamItem::Instance(
                at,
                ItemPayload::Owned(instance),
                ItemMeta {
                    seq,
                    ..ItemMeta::default()
                },
            ))
        }
        ITEM_TAG_PROBE => {
            let id = SubscriptionId(codec::get_u64(bytes)?);
            let at = codec::decode_time_point(bytes)?;
            let seq = codec::get_u64(bytes)?;
            Ok(StreamItem::Probe { id, at, seq })
        }
        tag => Err(CodecError::BadTag {
            what: "StreamItem",
            tag,
        }),
    }
}

/// Builds one notification's provenance and pushes its `Notify` ring
/// record (notifications enter the ring under every policy except
/// `Off`, which never constructs a [`WorkerTrace`] at all).
fn notify_provenance(
    wt: &mut WorkerTrace,
    shard: ShardId,
    sub: SubscriptionId,
    mut constituents: Vec<Constituent>,
    meta: ItemMeta,
    evaluate: u64,
) -> Box<Provenance> {
    constituents.sort_unstable();
    constituents.dedup_by_key(|c| c.trace);
    let stamps = StageStamps {
        ingest: meta.ingest,
        route: meta.route,
        enqueue: meta.enqueue,
        release: meta.release,
        evaluate,
        notify: wt.clock.now(),
    };
    let record = TraceRecord::Notify {
        shard: shard as u64,
        id: wt.take_notify_id(),
        sub: sub.raw(),
        stamps: stamps.as_array(),
        constituents: constituents
            .iter()
            .map(|c| TraceConstituent {
                trace: c.trace.raw(),
                shard: u64::from(c.shard),
                seq: c.seq,
            })
            .collect(),
    };
    wt.record(record);
    Box::new(Provenance {
        constituents,
        stamps,
        shard: u32::try_from(shard).unwrap_or(u32::MAX),
        verdicts: wt.take_drops(),
    })
}

/// Records a near-miss drop verdict: remembered for the next
/// notification's provenance, and ring-recorded when the policy samples
/// drops.
fn note_drop(wt: &mut WorkerTrace, shard: ShardId, trace: TraceId, verdict: DropVerdict) {
    wt.note_drop(trace, verdict);
    if wt.samples_drops() {
        wt.record(TraceRecord::Drop {
            shard: shard as u64,
            trace: trace.raw(),
            verdict: match verdict {
                DropVerdict::Late => stem_obs::TraceDropKind::Late,
                DropVerdict::ScopePruned => stem_obs::TraceDropKind::Scope,
            },
        });
    }
}

/// One shard: a reorder buffer, the resident subscriptions, an optional
/// write-ahead log, and counters.
pub(crate) struct ShardWorker {
    shard: ShardId,
    slack: Duration,
    reorder: ReorderBuffer<StreamItem>,
    /// Probes pushed through the reorder buffer (excluded from the
    /// instance-release counter).
    probes: u64,
    /// The resident shared plans, in creation order. Every subscription
    /// lives inside exactly one plan's subscriber list.
    plans: Vec<PlanState>,
    /// Plan id → index into `plans` (registration-path lookup; dispatch
    /// never touches it).
    plan_index: BTreeMap<u64, usize>,
    /// The shard's write-ahead log (None without durability).
    wal: Option<ShardWal>,
    /// Snapshot directory and retention (None without durability).
    snap: Option<SnapContext>,
    /// Records between durability checkpoints.
    checkpoint_every: u64,
    /// Records appended since the last checkpoint.
    since_checkpoint: u64,
    /// The largest ingest sequence known durable in this shard's log:
    /// re-fed operations at or below it (the post-recovery resume
    /// overlap) were already replayed from the log and are skipped.
    durable_seq: Option<u64>,
    /// The last high-water mark appended as a heartbeat record (repeats
    /// carry no information, so they are not logged).
    logged_high_water: Option<TimePoint>,
    metrics: ShardMetrics,
    /// Telemetry state (None with [`crate::TelemetryPolicy::Off`]: the
    /// hot path pays one branch per site and nothing else).
    obs: Option<WorkerObs>,
    /// Causal tracing state (None with [`crate::TracePolicy::Off`]:
    /// same single-branch discipline as `obs`).
    trace: Option<WorkerTrace>,
    /// Matched `(subscriber registration order, plan index, subscriber
    /// index)` tuples for the instance being dispatched, sorted by the
    /// first field before fan-out so the global delivery order is
    /// exactly what per-subscription evaluation produced (reused across
    /// dispatches).
    match_scratch: Vec<(u64, u32, u32)>,
    /// Dense bounding-box column parallel to `plans`: the filter pass
    /// probes this flat array instead of chasing each plan record for
    /// its bbox.
    plan_bboxes: Vec<Rect>,
    /// Filter-pass candidate index: plan indices bucketed by event
    /// filter, so dispatch walks only plans whose filter can match the
    /// instance's event.
    by_event: BTreeMap<EventId, Vec<usize>>,
    /// Plans with no event filter (always candidates).
    wildcard: Vec<usize>,
    /// The BVH over `plan_bboxes` (item index = plan index), built once
    /// the resident count crosses
    /// [`ShardWorker::DISPATCH_BVH_THRESHOLD`]: dispatch then probes
    /// the tree with the instance's point instead of walking every
    /// event-matching candidate — on dense shards almost all residents
    /// are spatially disjoint from any one instance, and the linear
    /// scan was the dominant per-delivery cost. `None` = linear merge
    /// of the event buckets (small resident sets; also what a BVH
    /// degenerates to).
    sub_bvh: Option<Bvh>,
    /// Candidate buffer reused across BVH dispatch queries.
    cand_scratch: Vec<u32>,
}

impl ShardWorker {
    pub(crate) fn new(
        shard: ShardId,
        slack: Duration,
        wal: Option<ShardWal>,
        snap: Option<SnapContext>,
        checkpoint_every: u64,
        obs: Option<WorkerObs>,
        trace: Option<WorkerTrace>,
    ) -> Self {
        ShardWorker {
            shard,
            slack,
            reorder: ReorderBuffer::new(slack),
            probes: 0,
            plans: Vec::new(),
            plan_index: BTreeMap::new(),
            wal,
            snap,
            checkpoint_every: checkpoint_every.max(1),
            since_checkpoint: 0,
            durable_seq: None,
            logged_high_water: None,
            metrics: ShardMetrics {
                shard,
                ..ShardMetrics::default()
            },
            obs,
            trace,
            match_scratch: Vec::new(),
            plan_bboxes: Vec::new(),
            by_event: BTreeMap::new(),
            wildcard: Vec::new(),
            sub_bvh: None,
            cand_scratch: Vec::new(),
        }
    }

    /// Resident-plan count at which dispatch switches from the linear
    /// candidate merge to the point-query BVH over region bounding
    /// boxes. Below it a cache-resident linear scan wins.
    const DISPATCH_BVH_THRESHOLD: usize = 16;

    /// Rebuilds the filter-pass candidate index (bbox column + event
    /// buckets + the dispatch BVH on dense shards) and the plan-id
    /// lookup. Runs when a plan is created or retired — registration is
    /// cold, dispatch is hot, and adding a subscriber to an existing
    /// plan changes none of it.
    fn rebuild_filter_index(&mut self) {
        self.plan_bboxes.clear();
        self.plan_bboxes.extend(self.plans.iter().map(|p| p.bbox));
        self.by_event.clear();
        self.wildcard.clear();
        self.plan_index.clear();
        for (idx, plan) in self.plans.iter().enumerate() {
            self.plan_index.insert(plan.id.raw(), idx);
            match &plan.event_filter {
                Some(event) => self.by_event.entry(event.clone()).or_default().push(idx),
                None => self.wildcard.push(idx),
            }
        }
        self.sub_bvh = if self.plans.len() >= Self::DISPATCH_BVH_THRESHOLD {
            Some(Bvh::build(&self.plan_bboxes))
        } else {
            None
        };
    }

    /// Total resident subscribers across every plan.
    fn subscriber_count(&self) -> usize {
        self.plans.iter().map(|p| p.subscribers.len()).sum()
    }

    /// Opens a telemetry span (None with telemetry off).
    fn obs_start(&self) -> Option<SpanToken> {
        self.obs.as_ref().map(|o| o.clock.start())
    }

    /// Opens a span on the worker's clock for a caller that wants to
    /// measure time spent *inside* this worker — the slot's steal path
    /// uses it to report how much of a barrier was relocated work
    /// rather than coordination.
    pub(crate) fn busy_span(&self) -> Option<SpanToken> {
        self.obs_start()
    }

    /// Closes a [`ShardWorker::busy_span`] token, in nanoseconds (0
    /// with telemetry off).
    pub(crate) fn busy_elapsed(&self, token: &Option<SpanToken>) -> u64 {
        match (self.obs.as_ref(), token) {
            (Some(o), Some(t)) => o.clock.elapsed(t),
            _ => 0,
        }
    }

    /// Closes a telemetry span into the current batch's accumulator.
    fn obs_acc(&mut self, stage: Stage, token: Option<SpanToken>) {
        if let (Some(o), Some(t)) = (self.obs.as_mut(), token) {
            o.acc[stage.index()] = o.acc[stage.index()].saturating_add(o.clock.elapsed(&t));
        }
    }

    /// Flushes the batch's stage accumulators (one histogram sample per
    /// stage that ran), refreshes the gauges, and publishes the
    /// recorder into the registry slot when due (or on `force` —
    /// barriers and shutdown want fresh data).
    fn obs_flush(&mut self, force: bool) {
        let pending = self.reorder.pending() as u64;
        let released = self.reorder.released().saturating_sub(self.probes);
        let late = self.reorder.late_dropped();
        let wal_metrics = self.wal.as_ref().map(ShardWal::metrics);
        let notifications = self.metrics.notifications;
        let subs = self.subscriber_count() as u64;
        let plans = self.plans.len() as u64;
        let Some(o) = self.obs.as_mut() else {
            return;
        };
        for stage in Stage::ALL {
            let ns = std::mem::take(&mut o.acc[stage.index()]);
            if ns > 0 {
                o.recorder.record_stage(stage, ns);
            }
        }
        o.recorder.set_gauge("reorder_depth", pending);
        o.recorder.set_gauge("released", released);
        o.recorder.set_gauge("late_dropped", late);
        o.recorder.set_gauge("notifications", notifications);
        o.recorder.set_gauge("subscriptions", subs);
        o.recorder.set_gauge("plans", plans);
        if let Some(m) = wal_metrics {
            o.recorder.set_gauge("wal_bytes", m.bytes);
            o.recorder.set_gauge("wal_records", m.records);
            o.recorder.set_gauge("wal_fsyncs", m.syncs);
        }
        o.batches_since_publish += 1;
        if force || o.batches_since_publish >= WorkerObs::PUBLISH_EVERY {
            o.batches_since_publish = 0;
            o.registry.publish_shard(self.shard, &o.recorder);
        }
    }

    pub(crate) fn handle(&mut self, message: ShardMessage) {
        if let Some(o) = self.obs.as_mut() {
            o.recorder.inc("msgs_processed", 1);
        }
        match message {
            ShardMessage::Batch(batch) => self.process_batch(batch),
            ShardMessage::Subscribe(state) => {
                // The first subscriber of a plan donates the template;
                // later subscribers join its fan-out list (and change
                // nothing the dispatch index reads).
                match self.plan_index.get(&state.plan.raw()).copied() {
                    Some(idx) => self.plans[idx].subscribers.push(Subscriber {
                        id: state.id,
                        scope: state.scope,
                        sink: state.sink,
                        delivered: state.delivered,
                    }),
                    None => {
                        self.plans.push(PlanState::new(*state));
                        self.rebuild_filter_index();
                    }
                }
            }
            ShardMessage::Unsubscribe(id) => {
                let mut retired_plan = false;
                for i in 0..self.plans.len() {
                    let plan = &mut self.plans[i];
                    if let Some(pos) = plan.subscribers.iter().position(|s| s.id == id) {
                        plan.subscribers.remove(pos);
                        if plan.subscribers.is_empty() {
                            self.plans.remove(i);
                            retired_plan = true;
                        }
                        break;
                    }
                }
                if retired_plan {
                    self.rebuild_filter_index();
                }
            }
            ShardMessage::SilenceProbe {
                id,
                at,
                seq,
                prefix_high_water,
            } => self.queue_silence_probe(id, at, seq, prefix_high_water),
            ShardMessage::Recover {
                snapshot,
                records,
                durable_seq,
                torn,
            } => self.recover(snapshot, records, durable_seq, torn),
            ShardMessage::Checkpoint {
                epoch,
                next_seq,
                high_water,
                ack,
            } => {
                let token = self.obs_start();
                self.checkpoint(epoch, next_seq, high_water);
                self.obs_acc(Stage::SnapshotCut, token);
                self.obs_flush(true);
                let _ = ack.send(());
            }
            ShardMessage::EndRecovery => self.reorder.end_recovery(),
            ShardMessage::Finalize(at) => self.finalize(at),
        }
    }

    /// Appends one record to the shard's log without applying the
    /// fsync policy (no-op without a WAL), cutting a durability
    /// checkpoint every `checkpoint_every` records. The caller follows
    /// a run of appends with one [`ShardWorker::wal_commit`] — group
    /// commit: under [`stem_wal::FsyncPolicy::Always`] the whole run
    /// costs one `fdatasync` instead of one per record.
    ///
    /// Appends happen *before* the evaluation they cover — that is what
    /// makes the log write-ahead: a crash between append and evaluation
    /// re-evaluates on recovery, never loses the record.
    fn wal_append(&mut self, record: &WalRecord) {
        let Some(wal) = self.wal.as_mut() else {
            return;
        };
        wal.append_deferred(record)
            .unwrap_or_else(|e| panic!("shard {} wal append failed: {e}", self.shard));
        self.since_checkpoint += 1;
        // A checkpoint's seq is an *inclusive* durable claim, so it is
        // derived via `durable_seq` (a heartbeat's stamp is the
        // exclusive prefix bound); a record proving nothing durable
        // defers the checkpoint to the next append.
        if self.since_checkpoint >= self.checkpoint_every {
            if let Some(durable) = record.durable_seq() {
                self.since_checkpoint = 0;
                let checkpoint = WalRecord::Watermark {
                    seq: durable,
                    watermark: self.reorder.watermark(),
                    emitted: self.metrics.notifications,
                };
                let wal = self.wal.as_mut().expect("checked above");
                wal.append_deferred(&checkpoint)
                    .unwrap_or_else(|e| panic!("shard {} wal checkpoint failed: {e}", self.shard));
            }
        }
    }

    /// Applies the fsync policy to every append since the last commit.
    fn wal_commit(&mut self) {
        if let Some(wal) = self.wal.as_mut() {
            wal.commit_appends()
                .unwrap_or_else(|e| panic!("shard {} wal commit failed: {e}", self.shard));
        }
    }

    /// Logs the batch heartbeat if the global high-water mark advanced
    /// past the last logged one (repeats are semantic no-ops).
    fn wal_note_heartbeat(&mut self, seq: u64, high_water: TimePoint) {
        if self.wal.is_some() && self.logged_high_water.is_none_or(|h| high_water > h) {
            self.logged_high_water = Some(high_water);
            self.wal_append(&WalRecord::Heartbeat { seq, high_water });
        }
    }

    pub(crate) fn process_batch(&mut self, batch: Batch) {
        self.metrics.batches += 1;
        self.metrics.ingested += batch.instances.len() as u64;
        if let Some(hw) = batch.high_water {
            // How far this shard's view of finalized time trailed the
            // router's when the batch arrived.
            let local_max = self
                .reorder
                .watermark()
                .map_or(0, |w| w.ticks().saturating_add(self.slack.ticks()));
            let lag = hw.ticks().saturating_sub(local_max);
            self.metrics.watermark_lag_max = self.metrics.watermark_lag_max.max(lag);
            if let Some(o) = self.obs.as_mut() {
                // The full distribution, not just the max: one sample
                // per batch into the named histogram surfaced as
                // `watermark_lag_p99` in the run summary.
                o.recorder.record("watermark_lag", lag);
            }
        }
        // Write-ahead, group-committed: every fresh operation the batch
        // carries (and the heartbeat) is journaled and the whole run is
        // committed in one fsync *before* any evaluation — under
        // `FsyncPolicy::Always` the batch, not the record, is the
        // durability unit, which is what removes the ~2× per-record
        // fsync overhead while keeping the log strictly write-ahead.
        let append_token = if self.wal.is_some() {
            self.obs_start()
        } else {
            None
        };
        let mut fresh: Vec<(Option<TimePoint>, Option<TimePoint>, ItemPayload, ItemMeta)> =
            Vec::with_capacity(batch.instances.len());
        for item in batch.instances {
            if self.durable_seq.is_some_and(|d| item.seq <= d) {
                // Post-recovery resume overlap: the log already held
                // (and recovery already replayed) this operation.
                self.metrics.wal.deduped += 1;
                continue;
            }
            let stamps = item.trace.unwrap_or_default();
            let meta = ItemMeta {
                seq: item.seq,
                ingest: stamps.ingest,
                route: stamps.route,
                enqueue: batch.enqueue,
                release: 0,
            };
            if self.wal.is_none() {
                fresh.push((item.eval_at, item.prefix_high_water, item.payload, meta));
                continue;
            }
            match item.payload {
                ItemPayload::Owned(instance) => {
                    // Move the instance into the record and back out: the
                    // durable path never clones it.
                    let record = WalRecord::Instance {
                        seq: item.seq,
                        eval_at: item.eval_at,
                        prefix_high_water: item.prefix_high_water,
                        instance,
                    };
                    self.wal_append(&record);
                    let WalRecord::Instance { instance, .. } = record else {
                        unreachable!("constructed above")
                    };
                    fresh.push((
                        item.eval_at,
                        item.prefix_high_water,
                        ItemPayload::Owned(instance),
                        meta,
                    ));
                }
                payload => {
                    // A shared copy or columnar row materializes a
                    // standalone instance for the log; the payload
                    // itself continues to evaluation.
                    self.wal_append(&WalRecord::Instance {
                        seq: item.seq,
                        eval_at: item.eval_at,
                        prefix_high_water: item.prefix_high_water,
                        instance: payload.to_instance(),
                    });
                    fresh.push((item.eval_at, item.prefix_high_water, payload, meta));
                }
            }
        }
        if let Some(hw) = batch.high_water {
            self.wal_note_heartbeat(batch.seq, hw);
        }
        self.obs_acc(Stage::WalAppend, append_token);
        let fsync_token = if self.wal.is_some() {
            self.obs_start()
        } else {
            None
        };
        self.wal_commit();
        self.obs_acc(Stage::WalFsync, fsync_token);
        for (eval_at, prefix_high_water, payload, meta) in fresh {
            // Replaying the global watermark before each push keeps
            // accept/late-drop decisions identical to a 1-shard run
            // even when disorder exceeds the slack.
            if let Some(hw) = prefix_high_water {
                let token = self.obs_start();
                let released = self.reorder.observe(hw);
                self.obs_acc(Stage::ReorderRelease, token);
                self.dispatch_all(released);
            }
            let key = eval_at.unwrap_or_else(|| payload.generation_time());
            let token = self.obs_start();
            let released = self.push_instance(key, payload, meta);
            self.obs_acc(Stage::ReorderRelease, token);
            self.dispatch_all(released);
        }
        if let Some(hw) = batch.high_water {
            let token = self.obs_start();
            let released = self.reorder.observe(hw);
            self.obs_acc(Stage::ReorderRelease, token);
            self.dispatch_all(released);
        }
        self.obs_flush(false);
    }

    /// Crash recovery: restores the newest valid snapshot (when one was
    /// found) and replays the shard's durable log *tail* through the
    /// normal evaluation path, rebuilding reorder-buffer and detector
    /// state and re-delivering the tail's notifications to the (freshly
    /// registered) sinks. Without a snapshot the tail is the whole log
    /// — the PR 3 full-replay fallback, bit-identical. Nothing is
    /// re-appended — the records are already on disk.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's state does not match the re-registered
    /// subscription set — a configuration error (the recovery contract
    /// requires re-registering the original subscriptions in order),
    /// not a torn file (those were already rejected by the reader).
    fn recover(
        &mut self,
        snapshot: Option<Box<ShardSnapshot>>,
        records: Vec<WalRecord>,
        durable_seq: Option<u64>,
        torn: u64,
    ) {
        self.reorder.begin_recovery();
        self.durable_seq = durable_seq;
        self.metrics.wal.torn_truncations += torn;
        let mut snap_next = 0;
        if let Some(snap) = snapshot {
            self.restore_state(&snap.state).unwrap_or_else(|e| {
                panic!(
                    "shard {}: snapshot epoch {} does not match the re-registered \
                     subscription set ({e}) — re-register the original subscriptions \
                     in the original order before resuming",
                    self.shard, snap.epoch,
                )
            });
            snap_next = snap.next_seq;
            self.metrics.snap.snapshots_loaded += 1;
        }
        for record in records {
            // The boundary segment holds records on both sides of the
            // cut: everything below the snapshot's sequence watermark is
            // already folded into the restored state. A heartbeat's
            // stamp is the *exclusive* bound of the prefix it
            // summarizes, so one stamped exactly at the cut is covered
            // too.
            let covered = match &record {
                WalRecord::Heartbeat { seq, .. } => *seq <= snap_next,
                other => other.seq() < snap_next,
            };
            if covered {
                self.metrics.snap.tail_skipped += 1;
                continue;
            }
            self.metrics.wal.records_recovered += 1;
            match record {
                WalRecord::Instance {
                    seq,
                    eval_at,
                    prefix_high_water,
                    instance,
                } => {
                    if let Some(hw) = prefix_high_water {
                        let released = self.reorder.observe(hw);
                        self.dispatch_all(released);
                    }
                    let key = eval_at.unwrap_or_else(|| instance.generation_time());
                    // Replayed records keep their trace identity but
                    // zero pre-release stamps: the recovered run's fresh
                    // clock restarts near zero.
                    let released = self.push_instance(
                        key,
                        ItemPayload::Owned(instance),
                        ItemMeta {
                            seq,
                            ..ItemMeta::default()
                        },
                    );
                    self.dispatch_all(released);
                }
                WalRecord::Probe {
                    seq,
                    subscription,
                    at,
                    prefix_high_water,
                } => {
                    // Replay the probe's prefix stamp exactly the way the
                    // live path observes it: the staleness decision must
                    // not depend on heartbeat records (which are only
                    // appended when the mark advances).
                    if let Some(hw) = prefix_high_water {
                        let released = self.reorder.observe(hw);
                        self.dispatch_all(released);
                    }
                    self.enqueue_probe(SubscriptionId(subscription), at, seq);
                }
                WalRecord::Heartbeat { high_water, .. } => {
                    self.logged_high_water = Some(
                        self.logged_high_water
                            .map_or(high_water, |h| h.max(high_water)),
                    );
                    let released = self.reorder.observe(high_water);
                    self.dispatch_all(released);
                }
                // Checkpoints are markers for the recovery *reader*;
                // they carry no stream state to rebuild.
                WalRecord::Watermark { .. } => {}
            }
        }
    }

    /// Cuts a checkpoint snapshot: syncs the log (the snapshot may not
    /// claim coverage of records that could still be lost), serializes
    /// the shard's full evaluation state, writes it atomically, prunes
    /// old epochs, and retires WAL segments behind the oldest retained
    /// snapshot.
    ///
    /// # Panics
    ///
    /// Panics on filesystem failures — a checkpoint was requested and
    /// cannot be provided, the same contract as WAL appends.
    fn checkpoint(&mut self, epoch: u64, next_seq: u64, high_water: Option<TimePoint>) {
        let Some(ctx) = self.snap.clone() else {
            return; // no durability: nothing to snapshot
        };
        let wal = self.wal.as_mut().expect("snap context implies a wal");
        wal.sync()
            .unwrap_or_else(|e| panic!("shard {} wal sync at checkpoint failed: {e}", self.shard));
        let active_segment = wal.active_segment();
        // A recovered shard can be durable *past* the barrier: its own
        // tail replay already folded records the post-recovery re-feed
        // has not reached yet (those re-fed duplicates are deduped, so
        // they will never be re-appended past this snapshot). Claim the
        // larger coverage — recording only the barrier sequence would
        // understate the state, and a second recovery from this epoch
        // would re-evaluate the difference on top of state that already
        // contains it.
        let next_seq = next_seq.max(self.durable_seq.map_or(0, |d| d + 1));
        let snapshot = ShardSnapshot {
            shard: self.shard,
            epoch,
            next_seq,
            high_water,
            active_segment,
            subs_delivered: self
                .plans
                .iter()
                .flat_map(|p| p.subscribers.iter().map(|s| (s.id.raw(), s.delivered)))
                .collect(),
            state: self.snapshot_state(),
        };
        let bytes = stem_snap::write_snapshot(&ctx.dir, &snapshot)
            .unwrap_or_else(|e| panic!("shard {} snapshot write failed: {e}", self.shard));
        self.metrics.snap.snapshots_written += 1;
        self.metrics.snap.snapshot_bytes += bytes;
        // Retention, then compaction behind the *oldest retained*
        // snapshot — never the one just written, so a torn next epoch
        // can still fall back.
        let bound = stem_snap::prune_snapshots(&ctx.dir, self.shard, ctx.retain)
            .unwrap_or_else(|e| panic!("shard {} snapshot prune failed: {e}", self.shard));
        if let Some(bound) = bound {
            let retired = stem_wal::retire_segments_below(&ctx.dir, self.shard, bound)
                .unwrap_or_else(|e| panic!("shard {} wal compaction failed: {e}", self.shard));
            self.metrics.snap.segments_retired += retired;
        }
    }

    /// Serializes the shard's full evaluation state over the
    /// [`StateCodec`] seam: the reorder buffer (with every in-flight
    /// instance and queued silence probe), the stream bookkeeping, and
    /// the plan store — each plan's detector state written ONCE however
    /// many subscribers share it, followed by the subscriber list's
    /// identity rows (id + delivered count). This is the
    /// [`stem_snap::SNAPSHOT_VERSION`] 2 layout; version-1 snapshots
    /// (one detector copy per subscription) are rejected by the reader
    /// and recovery falls back to full-log replay.
    fn snapshot_state(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.reorder.save_state(&mut buf, encode_stream_item);
        codec::put_u64(&mut buf, self.probes);
        codec::encode_opt_time_point(self.logged_high_water, &mut buf);
        codec::put_u64(&mut buf, self.since_checkpoint);
        codec::put_u32(
            &mut buf,
            u32::try_from(self.plans.len()).unwrap_or(u32::MAX),
        );
        for plan in &self.plans {
            codec::put_u64(&mut buf, plan.id.raw());
            match &plan.kind {
                EvalKind::Plain => codec::put_u8(&mut buf, SUB_TAG_PLAIN),
                EvalKind::Pattern(detector) => {
                    codec::put_u8(&mut buf, SUB_TAG_PATTERN);
                    detector.save_state(&mut buf);
                }
                EvalKind::Sustained(state) => {
                    codec::put_u8(&mut buf, SUB_TAG_SUSTAINED);
                    state.detector.save_state(&mut buf);
                    codec::encode_opt_time_point(state.last_input, &mut buf);
                    // The episode's bounded constituent memory restores
                    // with the detector, so an episode closed after
                    // recovery still names its pre-crash samples.
                    codec::put_u32(
                        &mut buf,
                        u32::try_from(state.constituents.len()).unwrap_or(u32::MAX),
                    );
                    for c in &state.constituents {
                        codec::put_u64(&mut buf, c.trace.raw());
                        codec::put_u32(&mut buf, c.shard);
                        codec::put_u64(&mut buf, c.seq);
                    }
                }
            }
            codec::put_u32(
                &mut buf,
                u32::try_from(plan.subscribers.len()).unwrap_or(u32::MAX),
            );
            for s in &plan.subscribers {
                codec::put_u64(&mut buf, s.id.raw());
                codec::put_u64(&mut buf, s.delivered);
            }
        }
        buf
    }

    /// Restores state saved by [`ShardWorker::snapshot_state`] into
    /// this worker's freshly re-registered plan store (the recovery
    /// contract — re-registering the original subscriptions in the
    /// original order — re-derives the same plan ids and subscriber
    /// lists, so plans and subscribers resolve by id).
    fn restore_state(&mut self, state: &[u8]) -> CodecResult<()> {
        let bytes = &mut &state[..];
        self.reorder.load_state(bytes, decode_stream_item)?;
        self.probes = codec::get_u64(bytes)?;
        self.logged_high_water = codec::decode_opt_time_point(bytes)?;
        self.since_checkpoint = codec::get_u64(bytes)?;
        let n = codec::get_u32(bytes)? as usize;
        for _ in 0..n {
            let id = codec::get_u64(bytes)?;
            let tag = codec::get_u8(bytes)?;
            let Some(&idx) = self.plan_index.get(&id) else {
                return Err(CodecError::Invalid("snapshot plan missing"));
            };
            let plan = &mut self.plans[idx];
            match (tag, &mut plan.kind) {
                (SUB_TAG_PLAIN, EvalKind::Plain) => {}
                (SUB_TAG_PATTERN, EvalKind::Pattern(detector)) => detector.load_state(bytes)?,
                (SUB_TAG_SUSTAINED, EvalKind::Sustained(state)) => {
                    state.detector.load_state(bytes)?;
                    state.last_input = codec::decode_opt_time_point(bytes)?;
                    state.constituents.clear();
                    let n = codec::get_u32(bytes)? as usize;
                    for _ in 0..n {
                        let trace = TraceId(codec::get_u64(bytes)?);
                        let shard = codec::get_u32(bytes)?;
                        let seq = codec::get_u64(bytes)?;
                        state.push_constituent(Constituent { trace, shard, seq });
                    }
                }
                _ => return Err(CodecError::Invalid("snapshot plan shape")),
            }
            let m = codec::get_u32(bytes)? as usize;
            for _ in 0..m {
                let sub = codec::get_u64(bytes)?;
                let delivered = codec::get_u64(bytes)?;
                let Some(row) = plan.subscribers.iter_mut().find(|s| s.id.raw() == sub) else {
                    return Err(CodecError::Invalid("snapshot subscriber missing"));
                };
                row.delivered = delivered;
            }
        }
        if !bytes.is_empty() {
            return Err(CodecError::Invalid("snapshot state trailing bytes"));
        }
        Ok(())
    }

    /// Pushes one instance into the reorder buffer, mirroring the
    /// buffer's late-drop rule (`key < watermark`) beforehand so a drop
    /// is recorded with a `Late` verdict — the buffer itself only
    /// counts.
    fn push_instance(
        &mut self,
        key: TimePoint,
        payload: ItemPayload,
        meta: ItemMeta,
    ) -> Vec<StreamItem> {
        if let Some(wt) = self.trace.as_mut() {
            if self.reorder.watermark().is_some_and(|w| key < w) {
                note_drop(wt, self.shard, TraceId(meta.seq), DropVerdict::Late);
            }
        }
        self.reorder
            .push_at(key, StreamItem::Instance(key, payload, meta))
    }

    fn dispatch_all(&mut self, released: Vec<StreamItem>) {
        // One release stamp per release wave: every item the watermark
        // freed together left the reorder buffer at the same moment,
        // and a clock read per item is measurable on the hot path.
        let release = self.trace.as_ref().map_or(0, |wt| wt.clock.now());
        for item in released {
            match item {
                StreamItem::Instance(at, payload, mut meta) => {
                    if let Some(wt) = self.trace.as_mut() {
                        meta.release = release;
                        if wt.samples_instance(TraceId(meta.seq)) {
                            // The ring's `seq` field mirrors the trace id
                            // rather than materializing a columnar row
                            // just to read the observer-assigned number.
                            wt.record(TraceRecord::Instance {
                                shard: self.shard as u64,
                                trace: meta.seq,
                                seq: meta.seq,
                                stamps: [meta.ingest, meta.route, meta.enqueue, meta.release],
                            });
                        }
                    }
                    self.dispatch(at, &payload, meta);
                }
                StreamItem::Probe { id, at, seq } => {
                    let mut meta = ItemMeta {
                        seq,
                        ..ItemMeta::default()
                    };
                    if self.trace.is_some() {
                        meta.release = release;
                    }
                    self.silence_probe(id, at, meta);
                }
            }
        }
    }

    /// Offers one in-order instance to every resident plan, evaluating
    /// at the instance's observer-local time `at`.
    ///
    /// Two passes over the resident set: a *filter* pass over the
    /// candidate index (a point query against the dispatch BVH on
    /// dense shards, or the event buckets merged with the filter-less
    /// residue below the threshold — then per-subscriber scope gates,
    /// layer filters, and exact region coverage, all reads of immutable
    /// plan fields and flat payload columns) collecting the matching
    /// `(subscriber order, plan, subscriber)` tuples into the reused
    /// scratch vector, then an *eval* pass running each matched plan's
    /// detector ONCE (memoized per dispatch) and fanning its output out
    /// to the matched subscribers in global registration order — so the
    /// delivery stream is bit-identical to evaluating one detector per
    /// subscription. A columnar payload is only materialized into a
    /// standalone instance when the filter pass matched something, so
    /// non-matching rows never touch the attribute arena. The split is
    /// what lets the filter cost (`scope_prune`) and the evaluation
    /// cost (`evaluate`) be timed as separate stages; it is
    /// behavior-preserving because the filters never read state the
    /// evaluators mutate. (`scope_skipped` counts scoped-out instances
    /// among *event-matching candidates* — and on BVH shards a
    /// candidate must additionally be a spatial hit, so the counter's
    /// absolute value depends on which index served the dispatch; only
    /// its being nonzero is portable.)
    fn dispatch(&mut self, at: TimePoint, payload: &ItemPayload, meta: ItemMeta) {
        let location = payload.representative();
        let layer = payload.layer();
        let shard = self.shard;
        let mut matched = std::mem::take(&mut self.match_scratch);
        matched.clear();
        let prune_token = self.obs_start();
        // Candidate enumeration: on dense shards, a point query against
        // the BVH over region bounding boxes; below the threshold, the
        // event buckets merged with the filter-less residue. The BVH
        // path applies the event filter per candidate instead of up
        // front — with a handful of spatial hits that is cheaper than
        // it reads.
        let via_bvh = self.sub_bvh.is_some();
        let mut cands = std::mem::take(&mut self.cand_scratch);
        cands.clear();
        if let Some(bvh) = &self.sub_bvh {
            bvh.query_point(location, &mut cands);
            cands.sort_unstable();
        } else {
            let bucket = self
                .by_event
                .get(payload.event())
                .map_or(&[][..], Vec::as_slice);
            let (mut i, mut j) = (0, 0);
            loop {
                match (bucket.get(i), self.wildcard.get(j)) {
                    (Some(&a), Some(&b)) => {
                        if a < b {
                            i += 1;
                            cands.push(a as u32);
                        } else {
                            j += 1;
                            cands.push(b as u32);
                        }
                    }
                    (Some(&a), None) => {
                        i += 1;
                        cands.push(a as u32);
                    }
                    (None, Some(&b)) => {
                        j += 1;
                        cands.push(b as u32);
                    }
                    (None, None) => break,
                }
            }
        }
        let mut scope_pruned = false;
        for &cand in &cands {
            let idx = cand as usize;
            let plan = &self.plans[idx];
            if via_bvh {
                // The buckets pre-filtered by event on the linear path;
                // spatial hits check it here instead.
                if let Some(event) = &plan.event_filter {
                    if event != payload.event() {
                        continue;
                    }
                }
            }
            // Per-subscriber scope gates before the plan-level filters:
            // a scoped subscriber never sees (or pays any filter for)
            // an instance outside its routing scope — the worker-side
            // half of what the router's precision pass prunes at
            // enqueue time, reproduced per subscriber so shared
            // evaluation prunes exactly what per-subscription
            // evaluation did.
            let gate_from = matched.len();
            for (member, sub) in plan.subscribers.iter().enumerate() {
                if let Some((scope_bbox, scope)) = &sub.scope {
                    if !scope_bbox.contains(location) || !scope.covers(location) {
                        self.metrics.scope_skipped += 1;
                        scope_pruned = true;
                        continue;
                    }
                }
                matched.push((sub.id.raw(), cand, member as u32));
            }
            let plan_passes = 'plan: {
                if let Some(layers) = &plan.layers {
                    if !layers.contains(&layer) {
                        break 'plan false;
                    }
                }
                // A BVH hit already proved bbox containment.
                if !via_bvh && !self.plan_bboxes[idx].contains(location) {
                    break 'plan false;
                }
                plan.region.covers(location)
            };
            if !plan_passes {
                matched.truncate(gate_from);
            }
        }
        self.cand_scratch = cands;
        // Global registration order: the fan-out below must deliver in
        // exactly the order one-detector-per-subscription dispatch did,
        // however subscribers interleave across plans.
        matched.sort_unstable();
        self.obs_acc(Stage::ScopePrune, prune_token);
        // A scope-prune verdict is only a *near miss* when nothing else
        // matched the instance — an instance one subscription pruned
        // but another evaluated did contribute, and is no drop.
        if scope_pruned && matched.is_empty() {
            if let Some(wt) = self.trace.as_mut() {
                note_drop(wt, self.shard, TraceId(meta.seq), DropVerdict::ScopePruned);
            }
        }
        let eval_token = self.obs_start();
        // One evaluate stamp per *matched* released operation, taken
        // before the detectors run (every notification this dispatch
        // produces shares it; their notify stamps then order them).
        // Unmatched operations produce nothing that could carry the
        // stamp, so they skip the clock read — on dense streams most
        // operations match no subscription, and this read would
        // otherwise be the last per-instance tracing cost.
        let evaluate = if matched.is_empty() {
            0
        } else {
            self.trace.as_ref().map_or(0, |wt| wt.clock.now())
        };
        // One materialization per matched item, shared by every matched
        // plan; owned payloads evaluate in place.
        let materialized;
        let instance: &EventInstance = match payload {
            ItemPayload::Owned(instance) => instance,
            ItemPayload::Shared(instance) => instance,
            columnar if !matched.is_empty() => {
                materialized = columnar.to_instance();
                &materialized
            }
            _ => {
                self.obs_acc(Stage::Evaluate, eval_token);
                matched.clear();
                self.match_scratch = matched;
                return;
            }
        };
        let shard32 = u32::try_from(shard).unwrap_or(u32::MAX);
        // Each plan evaluates once per dispatch, at its first matched
        // subscriber; the memo serves the rest. Matched plans per
        // instance are few, so a linear-scanned pair list beats a map.
        let mut memo: Vec<(u32, PlanOutcome)> = Vec::new();
        for &(_, cand, member) in &matched {
            let plan_idx = cand as usize;
            let outcome = match memo.iter().position(|(c, _)| *c == cand) {
                Some(i) => &memo[i].1,
                None => {
                    let plan = &mut self.plans[plan_idx];
                    let outcome = match &mut plan.kind {
                        EvalKind::Plain => {
                            match eval_condition(&plan.condition, &plan.entities, instance) {
                                Some(true) => PlanOutcome::PlainPass,
                                Some(false) => PlanOutcome::PlainFail,
                                None => PlanOutcome::Error,
                            }
                        }
                        EvalKind::Pattern(detector) => {
                            // The trace tag threads through the pattern
                            // store so each completed match comes back
                            // with the ingest sequences of every
                            // constituent it bound.
                            match detector.process_traced_at(instance, at, meta.seq) {
                                Ok(derived) => PlanOutcome::Derived(
                                    derived
                                        .into_iter()
                                        .map(|(d, tags)| {
                                            let constituents = tags
                                                .iter()
                                                .map(|&(tag, seq)| Constituent {
                                                    trace: TraceId(tag),
                                                    shard: shard32,
                                                    seq,
                                                })
                                                .collect();
                                            (d, constituents)
                                        })
                                        .collect(),
                                ),
                                Err(_) => PlanOutcome::Error,
                            }
                        }
                        EvalKind::Sustained(state) => {
                            let episode = match &state.value {
                                SustainedValue::Attribute(attr) => {
                                    match instance.attributes().get_f64(attr) {
                                        Some(value) => {
                                            state.last_input = Some(at);
                                            let v = if state.negate { -value } else { value };
                                            Some(state.detector.update_value(at, v))
                                        }
                                        None => None,
                                    }
                                }
                                SustainedValue::DistanceTo(reference) => {
                                    state.last_input = Some(at);
                                    let d = location.distance(*reference);
                                    let v = if state.negate { -d } else { d };
                                    Some(state.detector.update_value(at, v))
                                }
                                SustainedValue::Condition => {
                                    match eval_condition(&plan.condition, &plan.entities, instance)
                                    {
                                        Some(holds) => {
                                            state.last_input = Some(at);
                                            Some(state.detector.update(at, holds))
                                        }
                                        None => None,
                                    }
                                }
                            };
                            match episode {
                                None => PlanOutcome::Error,
                                Some(event) => {
                                    if self.trace.is_some() {
                                        // Every accepted sample (the
                                        // arms above all set
                                        // `last_input`) joins the
                                        // episode's bounded constituent
                                        // memory.
                                        state.push_constituent(Constituent {
                                            trace: TraceId(meta.seq),
                                            shard: shard32,
                                            seq: instance.seq().raw(),
                                        });
                                    }
                                    PlanOutcome::Sustained(
                                        event.map(|e| {
                                            (e, state.constituents.iter().copied().collect())
                                        }),
                                    )
                                }
                            }
                        }
                    };
                    memo.push((cand, outcome));
                    &memo.last().expect("just pushed").1
                }
            };
            // Fan-out: re-attach this subscriber's identity (its own
            // subscription id, delivered count, provenance records) to
            // the memoized template output. Per-subscriber counters
            // match the unshared pipeline, which evaluated (and
            // errored) once per subscription.
            self.metrics.evaluated += 1;
            match outcome {
                PlanOutcome::Error => self.metrics.eval_errors += 1,
                PlanOutcome::PlainFail | PlanOutcome::Sustained(None) => {}
                PlanOutcome::PlainPass => {
                    let sub = &mut self.plans[plan_idx].subscribers[member as usize];
                    let provenance = self.trace.as_mut().map(|wt| {
                        let c = Constituent {
                            trace: TraceId(meta.seq),
                            shard: shard32,
                            seq: instance.seq().raw(),
                        };
                        notify_provenance(wt, shard, sub.id, vec![c], meta, evaluate)
                    });
                    sub.sink.deliver(Notification {
                        subscription: sub.id,
                        shard,
                        kind: NotificationKind::Match(instance.clone()),
                        provenance,
                    });
                    self.metrics.notifications += 1;
                    sub.delivered += 1;
                }
                PlanOutcome::Derived(items) => {
                    for (d, constituents) in items {
                        let sub = &mut self.plans[plan_idx].subscribers[member as usize];
                        self.metrics.derived += 1;
                        self.metrics.notifications += 1;
                        sub.delivered += 1;
                        let provenance = self.trace.as_mut().map(|wt| {
                            notify_provenance(
                                wt,
                                shard,
                                sub.id,
                                constituents.clone(),
                                meta,
                                evaluate,
                            )
                        });
                        sub.sink.deliver(Notification {
                            subscription: sub.id,
                            shard,
                            kind: NotificationKind::Derived(d.clone()),
                            provenance,
                        });
                    }
                }
                PlanOutcome::Sustained(Some((event, constituents))) => {
                    let sub = &mut self.plans[plan_idx].subscribers[member as usize];
                    self.metrics.notifications += 1;
                    sub.delivered += 1;
                    let event = *event;
                    let provenance = self.trace.as_mut().map(|wt| {
                        notify_provenance(wt, shard, sub.id, constituents.clone(), meta, evaluate)
                    });
                    sub.sink.deliver(Notification {
                        subscription: sub.id,
                        shard,
                        kind: NotificationKind::Sustained(event),
                        provenance,
                    });
                }
            }
        }
        self.obs_acc(Stage::Evaluate, eval_token);
        matched.clear();
        self.match_scratch = matched;
    }

    /// Accepts a live silence probe: logs it write-ahead, then enqueues
    /// it.
    ///
    /// Two guards protect recovery correctness: a probe arriving while
    /// the log is still being replayed is dropped (the log carries every
    /// probe that fired before the crash — accepting a live one
    /// mid-replay would double-fire its inactive sample, see
    /// [`ReorderBuffer::is_recovering`]), and a re-fed probe the log
    /// already holds is a duplicate like any other resumed operation.
    fn queue_silence_probe(
        &mut self,
        id: SubscriptionId,
        at: TimePoint,
        seq: u64,
        prefix_high_water: Option<TimePoint>,
    ) {
        if self.reorder.is_recovering() || self.durable_seq.is_some_and(|d| seq <= d) {
            self.metrics.wal.deduped += 1;
            return;
        }
        self.wal_append(&WalRecord::Probe {
            seq,
            subscription: id.raw(),
            at,
            prefix_high_water,
        });
        self.wal_commit();
        // Observe the probe's prefix stamp before the staleness check:
        // the accept/drop decision then never depends on whether a
        // separate heartbeat was delivered first — which is what lets
        // the engine suppress heartbeats to clean shards entirely.
        if let Some(hw) = prefix_high_water {
            let released = self.reorder.observe(hw);
            self.dispatch_all(released);
        }
        self.enqueue_probe(id, at, seq);
    }

    /// Enqueues a silence probe into the reorder buffer so it reaches
    /// the sustained detector in stream order. Probes already behind
    /// the watermark are stale — the stream has moved past them — and
    /// are discarded (with a `Late` verdict when tracing).
    fn enqueue_probe(&mut self, id: SubscriptionId, at: TimePoint, seq: u64) {
        if self.reorder.watermark().is_some_and(|w| at < w) {
            if let Some(wt) = self.trace.as_mut() {
                note_drop(wt, self.shard, TraceId(seq), DropVerdict::Late);
            }
            return;
        }
        self.probes += 1;
        let released = self.reorder.push_at(at, StreamItem::Probe { id, at, seq });
        self.dispatch_all(released);
    }

    /// Feeds a sustained subscription its inactive sample if its input
    /// has been silent for the configured timeout.
    ///
    /// Probes are addressed per subscription id; silence-policied
    /// sustained plans never share (the canonicalizer keys them by
    /// subscription), so the addressed subscriber is the plan's only
    /// one — but the fan-out still resolves the row by id rather than
    /// assuming it.
    fn silence_probe(&mut self, id: SubscriptionId, at: TimePoint, meta: ItemMeta) {
        let shard = self.shard;
        let Some(plan) = self
            .plans
            .iter_mut()
            .find(|p| p.subscribers.iter().any(|s| s.id == id))
        else {
            return;
        };
        let PlanState {
            kind, subscribers, ..
        } = plan;
        let EvalKind::Sustained(state) = kind else {
            return;
        };
        let Some(silence) = &state.silence else {
            return;
        };
        let stale = state
            .last_input
            .is_none_or(|t| at.duration_since(t).is_some_and(|d| d >= silence.timeout));
        if !stale {
            return;
        }
        let evaluate = self.trace.as_ref().map_or(0, |wt| wt.clock.now());
        if let Some(event) = state.detector.update_value(at, silence.inactive_value) {
            // The probe itself is a constituent (it is the operation
            // that closed the episode), alongside the episode's
            // remembered samples.
            let mut constituents: Vec<Constituent> = state.constituents.iter().copied().collect();
            constituents.push(Constituent {
                trace: TraceId(meta.seq),
                shard: u32::try_from(shard).unwrap_or(u32::MAX),
                seq: meta.seq,
            });
            let sub = subscribers
                .iter_mut()
                .find(|s| s.id == id)
                .expect("probe matched this plan by subscriber id");
            self.metrics.notifications += 1;
            sub.delivered += 1;
            let provenance = self
                .trace
                .as_mut()
                .map(|wt| notify_provenance(wt, shard, sub.id, constituents, meta, evaluate));
            sub.sink.deliver(Notification {
                subscription: sub.id,
                shard,
                kind: NotificationKind::Sustained(event),
                provenance,
            });
        }
    }

    /// Stream horizon: releases everything still reordering, then closes
    /// open sustained episodes at `at`.
    ///
    /// Each sustained plan's detector closes ONCE; the resulting event
    /// fans out to its subscribers, interleaved across plans in global
    /// registration order — the order one-detector-per-subscription
    /// finalization delivered in.
    fn finalize(&mut self, at: TimePoint) {
        let remaining = self.reorder.flush();
        self.dispatch_all(remaining);
        let shard = self.shard;
        let mut closed: Vec<(usize, SustainedEvent, Vec<Constituent>)> = Vec::new();
        for (idx, plan) in self.plans.iter_mut().enumerate() {
            if let EvalKind::Sustained(state) = &mut plan.kind {
                if let Some(event) = state.detector.finish(at) {
                    closed.push((idx, event, state.constituents.iter().copied().collect()));
                }
            }
        }
        let mut deliveries: Vec<(u64, usize, usize)> = Vec::new();
        for (ci, (plan_idx, _, _)) in closed.iter().enumerate() {
            for (member, sub) in self.plans[*plan_idx].subscribers.iter().enumerate() {
                deliveries.push((sub.id.raw(), ci, member));
            }
        }
        deliveries.sort_unstable();
        for (_, ci, member) in deliveries {
            let (plan_idx, event, constituents) = &closed[ci];
            let evaluate = self.trace.as_ref().map_or(0, |wt| wt.clock.now());
            let sub = &mut self.plans[*plan_idx].subscribers[member];
            self.metrics.notifications += 1;
            sub.delivered += 1;
            let provenance = self.trace.as_mut().map(|wt| {
                // The horizon is an engine-driven close, not an
                // operation: its pre-evaluate stamps are zero.
                notify_provenance(
                    wt,
                    shard,
                    sub.id,
                    constituents.clone(),
                    ItemMeta::default(),
                    evaluate,
                )
            });
            sub.sink.deliver(Notification {
                subscription: sub.id,
                shard,
                kind: NotificationKind::Sustained(*event),
                provenance,
            });
        }
    }

    /// Drains the reorder buffer, closes the log durably, and returns
    /// the final counters.
    pub(crate) fn finish(mut self) -> ShardMetrics {
        let remaining = self.reorder.flush();
        self.dispatch_all(remaining);
        if let Some(wal) = self.wal.as_mut() {
            wal.sync()
                .unwrap_or_else(|e| panic!("shard {} wal close failed: {e}", self.shard));
            let m = wal.metrics();
            self.metrics.wal.records_appended = m.records;
            self.metrics.wal.bytes_appended = m.bytes;
            self.metrics.wal.segments_created = m.segments;
            self.metrics.wal.fsyncs = m.syncs;
        }
        // Probes ride the reorder buffer but are not instances.
        self.metrics.released = self.reorder.released() - self.probes;
        self.metrics.late_dropped = self.reorder.late_dropped();
        self.metrics.watermark = self.reorder.watermark();
        self.metrics.subscriptions = self.subscriber_count();
        self.metrics.plans = self.plans.len();
        self.obs_flush(true);
        self.metrics
    }

    /// Instances and probes still held in the reorder buffer — the
    /// engine's heartbeat-suppression gate for deterministic runs.
    pub(crate) fn reorder_pending(&self) -> usize {
        self.reorder.pending()
    }

    /// Forces a telemetry publish. The engine calls this after draining
    /// a shard inline at a barrier — it samples right after, and a
    /// stale slot would under-report.
    pub(crate) fn publish_obs(&mut self) {
        self.obs_flush(true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchItem;
    use crate::subscription::{
        Collector, SilenceSpec, Subscription, SustainedSpec, SustainedValue,
    };
    use stem_cep::SustainedConfig;
    use stem_spatial::{Field, Point, Rect};

    fn reading(t: u64, v: f64) -> EventInstance {
        EventInstance::builder(
            ObserverId::Mote(stem_core::MoteId::new(1)),
            EventId::new("reading"),
            Layer::Sensor,
        )
        .generated(TimePoint::new(t), Point::new(5.0, 5.0))
        .attributes(stem_core::Attributes::new().with("v", v))
        .build()
    }

    fn sustained_worker(collector: &Collector) -> ShardWorker {
        let region = SpatialExtent::field(Field::rect(Rect::new(
            Point::new(0.0, 0.0),
            Point::new(100.0, 100.0),
        )));
        let sub =
            Subscription::new("episode", region, collector.sink()).sustained_spec(SustainedSpec {
                config: SustainedConfig {
                    min_duration: Duration::new(10),
                    enter_threshold: 1.0,
                    exit_threshold: 0.5,
                },
                value: SustainedValue::Attribute("v".to_owned()),
                negate: false,
                silence: Some(SilenceSpec {
                    timeout: Duration::new(5),
                    inactive_value: 0.0,
                }),
            });
        let mut worker = ShardWorker::new(0, Duration::ZERO, None, None, 1024, None, None);
        worker.handle(ShardMessage::Subscribe(Box::new(
            SubscriptionState::compile(SubscriptionId(0), PlanId(0), sub),
        )));
        worker
    }

    /// The recovery guard (see `ReorderBuffer::is_recovering`): a live
    /// silence probe racing the log replay is dropped — the log already
    /// carries every probe that fired before the crash, so accepting it
    /// would double-fire the inactive sample and close the episode
    /// twice.
    #[test]
    fn live_silence_probes_are_suppressed_while_recovering() {
        let collector = Collector::new();
        let mut worker = sustained_worker(&collector);
        // Active samples at t=10 and t=30 open a qualifying episode
        // (episodes end at their last active sample, so a single sample
        // would make a zero-length, unreported episode).
        worker.handle(ShardMessage::Batch(Batch {
            instances: vec![
                BatchItem {
                    seq: 0,
                    payload: reading(10, 2.0).into(),
                    eval_at: None,
                    prefix_high_water: None,
                    trace: None,
                },
                BatchItem {
                    seq: 1,
                    payload: reading(30, 2.0).into(),
                    eval_at: None,
                    prefix_high_water: Some(TimePoint::new(10)),
                    trace: None,
                },
            ],
            high_water: Some(TimePoint::new(30)),
            seq: 2,
            enqueue: 0,
        }));
        worker.handle(ShardMessage::Recover {
            snapshot: None,
            records: Vec::new(),
            durable_seq: None,
            torn: 0,
        });
        // Dropped: the shard is still replaying its log.
        worker.handle(ShardMessage::SilenceProbe {
            id: SubscriptionId(0),
            at: TimePoint::new(100),
            seq: 2,
            prefix_high_water: None,
        });
        worker.handle(ShardMessage::EndRecovery);
        // Accepted: recovery is over, the stale probe closes the episode.
        worker.handle(ShardMessage::SilenceProbe {
            id: SubscriptionId(0),
            at: TimePoint::new(100),
            seq: 3,
            prefix_high_water: None,
        });
        let metrics = worker.finish();
        assert_eq!(metrics.wal.deduped, 1, "the mid-recovery probe was dropped");
        let ended: Vec<_> = collector
            .take()
            .into_iter()
            .filter(|n| {
                matches!(
                    n.kind,
                    NotificationKind::Sustained(stem_cep::SustainedEvent::Ended { .. })
                )
            })
            .collect();
        assert_eq!(ended.len(), 1, "the episode must close exactly once");
    }

    /// Re-fed operations the log already holds (the resume overlap) are
    /// deduplicated by sequence number, instances and probes alike.
    #[test]
    fn resume_overlap_is_deduplicated_by_sequence() {
        let collector = Collector::new();
        let mut worker = sustained_worker(&collector);
        worker.handle(ShardMessage::Recover {
            snapshot: None,
            records: vec![
                WalRecord::Instance {
                    seq: 0,
                    eval_at: None,
                    prefix_high_water: None,
                    instance: reading(10, 2.0),
                },
                WalRecord::Instance {
                    seq: 1,
                    eval_at: None,
                    prefix_high_water: Some(TimePoint::new(10)),
                    instance: reading(30, 2.0),
                },
            ],
            durable_seq: Some(1),
            torn: 0,
        });
        worker.handle(ShardMessage::EndRecovery);
        // The upstream re-feeds from sequence 0: the shard already has
        // both samples.
        worker.handle(ShardMessage::Batch(Batch {
            instances: vec![
                BatchItem {
                    seq: 0,
                    payload: reading(10, 2.0).into(),
                    eval_at: None,
                    prefix_high_water: None,
                    trace: None,
                },
                BatchItem {
                    seq: 1,
                    payload: reading(30, 2.0).into(),
                    eval_at: None,
                    prefix_high_water: Some(TimePoint::new(10)),
                    trace: None,
                },
            ],
            high_water: Some(TimePoint::new(30)),
            seq: 2,
            enqueue: 0,
        }));
        // Fresh work (seq 2) processes normally and closes the episode.
        worker.handle(ShardMessage::SilenceProbe {
            id: SubscriptionId(0),
            at: TimePoint::new(100),
            seq: 2,
            prefix_high_water: None,
        });
        let metrics = worker.finish();
        assert_eq!(metrics.wal.deduped, 2);
        assert_eq!(metrics.wal.records_recovered, 2);
        let ended = collector
            .take()
            .into_iter()
            .filter(|n| {
                matches!(
                    n.kind,
                    NotificationKind::Sustained(stem_cep::SustainedEvent::Ended { .. })
                )
            })
            .count();
        assert_eq!(ended, 1, "replay + dedup must evaluate the sample once");
    }

    fn ended_count(collector: &Collector) -> usize {
        collector
            .take()
            .into_iter()
            .filter(|n| {
                matches!(
                    n.kind,
                    NotificationKind::Sustained(stem_cep::SustainedEvent::Ended { .. })
                )
            })
            .count()
    }

    /// The full worker state — open episode, a silence probe still held
    /// in the reorder buffer, watermark clock — survives a checkpoint
    /// cut and restore, and the `recovering` guard still suppresses
    /// live probes while the restored shard finishes its recovery: the
    /// buffered probe closes the episode exactly once.
    #[test]
    fn snapshot_round_trip_preserves_the_silence_probe_guard() {
        let dir =
            std::env::temp_dir().join(format!("stem-worker-snap-boundary-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let wal = |shard| {
            Some(ShardWal::open(&dir, shard, 1 << 20, stem_wal::FsyncPolicy::Never).unwrap())
        };
        let ctx = Some(SnapContext {
            dir: dir.clone(),
            retain: 2,
        });

        // A live worker with watermark slack, so pushed items (and the
        // probe) are still *pending* when the checkpoint cuts.
        let collector = Collector::new();
        let region = SpatialExtent::field(Field::rect(Rect::new(
            Point::new(0.0, 0.0),
            Point::new(100.0, 100.0),
        )));
        let spec = SustainedSpec {
            config: SustainedConfig {
                min_duration: Duration::new(10),
                enter_threshold: 1.0,
                exit_threshold: 0.5,
            },
            value: SustainedValue::Attribute("v".to_owned()),
            negate: false,
            silence: Some(SilenceSpec {
                timeout: Duration::new(5),
                inactive_value: 0.0,
            }),
        };
        let mut worker =
            ShardWorker::new(0, Duration::new(50), wal(0), ctx.clone(), 1024, None, None);
        let sub = Subscription::new("episode", region.clone(), collector.sink())
            .sustained_spec(spec.clone());
        worker.handle(ShardMessage::Subscribe(Box::new(
            SubscriptionState::compile(SubscriptionId(0), PlanId(0), sub),
        )));
        worker.handle(ShardMessage::Batch(Batch {
            instances: vec![
                BatchItem {
                    seq: 0,
                    payload: reading(10, 2.0).into(),
                    eval_at: None,
                    prefix_high_water: None,
                    trace: None,
                },
                BatchItem {
                    seq: 1,
                    payload: reading(30, 2.0).into(),
                    eval_at: None,
                    prefix_high_water: Some(TimePoint::new(10)),
                    trace: None,
                },
            ],
            high_water: Some(TimePoint::new(30)),
            seq: 2,
            enqueue: 0,
        }));
        worker.handle(ShardMessage::SilenceProbe {
            id: SubscriptionId(0),
            at: TimePoint::new(100),
            seq: 2,
            prefix_high_water: None,
        });
        // Cut the checkpoint: samples and the probe are all behind the
        // 50-tick slack, so the snapshot carries them as pending items.
        let (ack, done) = std::sync::mpsc::channel();
        worker.handle(ShardMessage::Checkpoint {
            epoch: 0,
            next_seq: 3,
            high_water: Some(TimePoint::new(30)),
            ack,
        });
        done.recv().unwrap();
        drop(worker); // the crash: everything in memory is gone

        // A fresh worker restores the snapshot the way recovery does.
        let survivor = Collector::new();
        let snapshot = stem_snap::load_latest(&dir, 0).unwrap().snapshot.unwrap();
        assert_eq!(snapshot.next_seq, 3);
        let mut worker = ShardWorker::new(0, Duration::new(50), wal(0), ctx, 1024, None, None);
        let sub = Subscription::new("episode", region, survivor.sink()).sustained_spec(spec);
        worker.handle(ShardMessage::Subscribe(Box::new(
            SubscriptionState::compile(SubscriptionId(0), PlanId(0), sub),
        )));
        worker.handle(ShardMessage::Recover {
            snapshot: Some(Box::new(snapshot)),
            records: Vec::new(),
            durable_seq: Some(2),
            torn: 0,
        });
        // A live probe racing the recovery window is still suppressed
        // across the snapshot boundary...
        worker.handle(ShardMessage::SilenceProbe {
            id: SubscriptionId(0),
            at: TimePoint::new(120),
            seq: 3,
            prefix_high_water: None,
        });
        worker.handle(ShardMessage::EndRecovery);
        // ...and the horizon releases the *restored* pending probe,
        // which closes the restored open episode exactly once.
        worker.handle(ShardMessage::Finalize(TimePoint::new(200)));
        let metrics = worker.finish();
        assert_eq!(metrics.snap.snapshots_loaded, 1);
        assert_eq!(metrics.wal.deduped, 1, "the mid-recovery probe was dropped");
        assert_eq!(ended_count(&survivor), 1, "the episode closes exactly once");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
