//! Shard workers: reorder, evaluate, notify.

use crate::batch::Batch;
use crate::config::ShardId;
use crate::metrics::ShardMetrics;
use crate::subscription::{
    EventSink, Notification, NotificationKind, SilenceSpec, Subscription, SubscriptionId,
    SustainedValue,
};
use stem_cep::{CompositeDetector, ReorderBuffer, SustainedDetector};
use stem_core::{
    Bindings, CcuId, ConditionExpr, ConditionObserver, EntityName, EventDefinition, EventId,
    EventInstance, Layer, ObserverId,
};
use stem_spatial::{Rect, SpatialExtent};
use stem_temporal::{Duration, TimePoint};
use stem_wal::{ShardWal, WalRecord};

/// What travels over a shard's input channel.
pub(crate) enum ShardMessage {
    /// Instances plus the router's watermark heartbeat.
    Batch(Batch),
    /// A subscription homed on this shard (boxed: it is much larger
    /// than the other variants).
    Subscribe(Box<SubscriptionState>),
    /// Retire a subscription.
    Unsubscribe(SubscriptionId),
    /// Silence heartbeat for one sustained subscription: feed its
    /// inactive sample if no input arrived for its configured timeout.
    SilenceProbe {
        /// The sustained subscription to probe.
        id: SubscriptionId,
        /// The probe's observer-local time.
        at: TimePoint,
        /// The probe's global ingest sequence number.
        seq: u64,
    },
    /// Crash recovery: replay this shard's durable log to rebuild
    /// reorder/detector state (and re-deliver the durable prefix's
    /// notifications to the freshly registered sinks).
    Recover {
        /// The shard's recovered records, in append order.
        records: Vec<WalRecord>,
        /// The largest ingest sequence the log held: later re-fed
        /// operations at or below it are duplicates and are skipped.
        durable_seq: Option<u64>,
        /// Torn-tail truncations the recovery reader repaired.
        torn: u64,
    },
    /// Recovery replay is complete: resume live input (silence probes
    /// are accepted again).
    EndRecovery,
    /// Stream horizon: drain the reorder buffer and close any open
    /// sustained episodes at the given time.
    Finalize(TimePoint),
    /// Barrier: acknowledge once everything queued before this message
    /// has been processed.
    Sync(std::sync::mpsc::Sender<()>),
}

/// A sustained detector resident on a shard, with its sampling rules.
struct SustainedState {
    detector: SustainedDetector,
    value: SustainedValue,
    negate: bool,
    silence: Option<SilenceSpec>,
    /// When the last input sample arrived (silence-staleness clock).
    last_input: Option<TimePoint>,
}

/// How a subscription's stream is evaluated on its home shard.
enum EvalKind {
    /// Deliver condition-passing instances directly.
    Plain,
    /// Feed a pattern detector; deliver derived instances (boxed:
    /// far larger than the other variants).
    Pattern(Box<CompositeDetector>),
    /// Feed a sustained detector; deliver episode notifications.
    Sustained(SustainedState),
}

/// A [`Subscription`] compiled for residence on one shard.
pub(crate) struct SubscriptionState {
    id: SubscriptionId,
    region: SpatialExtent,
    bbox: Rect,
    event_filter: Option<EventId>,
    layers: Option<Vec<Layer>>,
    /// The per-instance condition (for `Plain` / `Sustained`; a pattern
    /// subscription's condition lives inside its detector where it is
    /// evaluated over the match's bindings).
    condition: Option<ConditionExpr>,
    /// Entity names the condition binds (all bound to the candidate
    /// instance).
    entities: Vec<EntityName>,
    kind: EvalKind,
    sink: Box<dyn EventSink>,
}

impl SubscriptionState {
    /// Compiles `sub` for residence on its home shard.
    pub(crate) fn compile(id: SubscriptionId, sub: Subscription) -> Self {
        let bbox = sub.region.bounding_box();
        let (kind, condition) = if let Some(spec) = sub.pattern {
            // The definition override carries the registrant's estimation
            // policies and projections; without one, the composite
            // condition (empty conjunction = always true) is evaluated
            // over pattern-match bindings by a default cyber definition.
            let definition = sub.definition.unwrap_or_else(|| {
                let condition = sub
                    .condition
                    .unwrap_or_else(|| ConditionExpr::And(Vec::new()));
                EventDefinition::new(sub.name.clone(), Layer::Cyber, condition)
            });
            // Without an observer override, the identity is keyed by
            // subscription (not by shard) so derived instances are
            // identical whatever the shard count — the
            // sharding-equivalence tests rely on it.
            let observer = sub.observer.unwrap_or_else(|| {
                ConditionObserver::new(
                    ObserverId::Ccu(CcuId::new(u32::try_from(id.raw()).unwrap_or(u32::MAX))),
                    bbox.center(),
                    1.0,
                )
            });
            let detector =
                CompositeDetector::new(definition, spec.pattern, spec.mode, spec.horizon, observer);
            (EvalKind::Pattern(Box::new(detector)), None)
        } else if let Some(spec) = sub.sustained {
            (
                EvalKind::Sustained(SustainedState {
                    detector: SustainedDetector::new(spec.config),
                    value: spec.value,
                    negate: spec.negate,
                    silence: spec.silence,
                    last_input: None,
                }),
                sub.condition,
            )
        } else {
            (EvalKind::Plain, sub.condition)
        };
        let entities = condition
            .as_ref()
            .map(ConditionExpr::entity_names)
            .unwrap_or_default();
        SubscriptionState {
            id,
            region: sub.region,
            bbox,
            event_filter: sub.event_filter,
            layers: sub.layers,
            condition,
            entities,
            kind,
            sink: sub.sink,
        }
    }
}

/// Evaluates a per-instance condition with every entity bound to the
/// instance. `None` when evaluation errored.
fn eval_condition(
    condition: &Option<ConditionExpr>,
    entities: &[EntityName],
    instance: &EventInstance,
) -> Option<bool> {
    let Some(cond) = condition else {
        return Some(true);
    };
    let mut bindings = Bindings::new();
    for name in entities {
        bindings.bind(name.clone(), instance.entity_data());
    }
    cond.eval(&bindings).ok()
}

/// One entry in a shard's reorder buffer, keyed by its observer-local
/// time so the evaluation stream replays in station-clock order.
enum StreamItem {
    /// An instance to evaluate at its time (ingest-provided, defaulting
    /// to the generation time).
    Instance(TimePoint, EventInstance),
    /// A queued silence probe: probes travel through the same reorder
    /// buffer as instances — feeding the sustained detector directly on
    /// message arrival would run it out of time order whenever earlier
    /// samples are still held behind the watermark slack.
    Probe { id: SubscriptionId, at: TimePoint },
}

/// One shard: a reorder buffer, the resident subscriptions, an optional
/// write-ahead log, and counters.
pub(crate) struct ShardWorker {
    shard: ShardId,
    slack: Duration,
    reorder: ReorderBuffer<StreamItem>,
    /// Probes pushed through the reorder buffer (excluded from the
    /// instance-release counter).
    probes: u64,
    subs: Vec<SubscriptionState>,
    /// The shard's write-ahead log (None without durability).
    wal: Option<ShardWal>,
    /// Records between durability checkpoints.
    checkpoint_every: u64,
    /// Records appended since the last checkpoint.
    since_checkpoint: u64,
    /// The largest ingest sequence known durable in this shard's log:
    /// re-fed operations at or below it (the post-recovery resume
    /// overlap) were already replayed from the log and are skipped.
    durable_seq: Option<u64>,
    /// The last high-water mark appended as a heartbeat record (repeats
    /// carry no information, so they are not logged).
    logged_high_water: Option<TimePoint>,
    metrics: ShardMetrics,
}

impl ShardWorker {
    pub(crate) fn new(
        shard: ShardId,
        slack: Duration,
        wal: Option<ShardWal>,
        checkpoint_every: u64,
    ) -> Self {
        ShardWorker {
            shard,
            slack,
            reorder: ReorderBuffer::new(slack),
            probes: 0,
            subs: Vec::new(),
            wal,
            checkpoint_every: checkpoint_every.max(1),
            since_checkpoint: 0,
            durable_seq: None,
            logged_high_water: None,
            metrics: ShardMetrics {
                shard,
                ..ShardMetrics::default()
            },
        }
    }

    pub(crate) fn handle(&mut self, message: ShardMessage) {
        match message {
            ShardMessage::Batch(batch) => self.process_batch(batch),
            ShardMessage::Subscribe(state) => self.subs.push(*state),
            ShardMessage::Unsubscribe(id) => self.subs.retain(|s| s.id != id),
            ShardMessage::SilenceProbe { id, at, seq } => self.queue_silence_probe(id, at, seq),
            ShardMessage::Recover {
                records,
                durable_seq,
                torn,
            } => self.recover(records, durable_seq, torn),
            ShardMessage::EndRecovery => self.reorder.end_recovery(),
            ShardMessage::Finalize(at) => self.finalize(at),
            ShardMessage::Sync(ack) => {
                let _ = ack.send(());
            }
        }
    }

    /// Appends one record to the shard's log (no-op without a WAL),
    /// cutting a durability checkpoint every `checkpoint_every` records.
    ///
    /// Appends happen *before* the evaluation they cover — that is what
    /// makes the log write-ahead: a crash between append and evaluation
    /// re-evaluates on recovery, never loses the record.
    fn wal_append(&mut self, record: &WalRecord) {
        let Some(wal) = self.wal.as_mut() else {
            return;
        };
        wal.append(record)
            .unwrap_or_else(|e| panic!("shard {} wal append failed: {e}", self.shard));
        self.since_checkpoint += 1;
        if self.since_checkpoint >= self.checkpoint_every {
            self.since_checkpoint = 0;
            let checkpoint = WalRecord::Watermark {
                seq: record.seq(),
                watermark: self.reorder.watermark(),
                emitted: self.metrics.notifications,
            };
            let wal = self.wal.as_mut().expect("checked above");
            wal.append(&checkpoint)
                .unwrap_or_else(|e| panic!("shard {} wal checkpoint failed: {e}", self.shard));
        }
    }

    /// Logs the batch heartbeat if the global high-water mark advanced
    /// past the last logged one (repeats are semantic no-ops).
    fn wal_note_heartbeat(&mut self, seq: u64, high_water: TimePoint) {
        if self.wal.is_some() && self.logged_high_water.is_none_or(|h| high_water > h) {
            self.logged_high_water = Some(high_water);
            self.wal_append(&WalRecord::Heartbeat { seq, high_water });
        }
    }

    pub(crate) fn process_batch(&mut self, batch: Batch) {
        self.metrics.batches += 1;
        self.metrics.ingested += batch.instances.len() as u64;
        if let Some(hw) = batch.high_water {
            // How far this shard's view of finalized time trailed the
            // router's when the batch arrived.
            let local_max = self
                .reorder
                .watermark()
                .map_or(0, |w| w.ticks().saturating_add(self.slack.ticks()));
            self.metrics.watermark_lag_max = self
                .metrics
                .watermark_lag_max
                .max(hw.ticks().saturating_sub(local_max));
        }
        for item in batch.instances {
            if self.durable_seq.is_some_and(|d| item.seq <= d) {
                // Post-recovery resume overlap: the log already held
                // (and recovery already replayed) this operation.
                self.metrics.wal.deduped += 1;
                continue;
            }
            // Write-ahead: the routed instance becomes durable before
            // any evaluation it triggers.
            let record = WalRecord::Instance {
                seq: item.seq,
                eval_at: item.eval_at,
                prefix_high_water: item.prefix_high_water,
                instance: item.instance,
            };
            self.wal_append(&record);
            let WalRecord::Instance { instance, .. } = record else {
                unreachable!("constructed above")
            };
            // Replaying the global watermark before each push keeps
            // accept/late-drop decisions identical to a 1-shard run
            // even when disorder exceeds the slack.
            if let Some(hw) = item.prefix_high_water {
                let released = self.reorder.observe(hw);
                self.dispatch_all(released);
            }
            let key = item.eval_at.unwrap_or_else(|| instance.generation_time());
            let released = self
                .reorder
                .push_at(key, StreamItem::Instance(key, instance));
            self.dispatch_all(released);
        }
        if let Some(hw) = batch.high_water {
            self.wal_note_heartbeat(batch.seq, hw);
            let released = self.reorder.observe(hw);
            self.dispatch_all(released);
        }
    }

    /// Crash recovery: replays the shard's durable log through the
    /// normal evaluation path, rebuilding reorder-buffer and detector
    /// state and re-delivering the durable prefix's notifications to the
    /// (freshly registered) sinks. Nothing is re-appended — the records
    /// are already on disk.
    fn recover(&mut self, records: Vec<WalRecord>, durable_seq: Option<u64>, torn: u64) {
        self.reorder.begin_recovery();
        self.durable_seq = durable_seq;
        self.metrics.wal.torn_truncations += torn;
        self.metrics.wal.records_recovered += records.len() as u64;
        for record in records {
            match record {
                WalRecord::Instance {
                    eval_at,
                    prefix_high_water,
                    instance,
                    ..
                } => {
                    if let Some(hw) = prefix_high_water {
                        let released = self.reorder.observe(hw);
                        self.dispatch_all(released);
                    }
                    let key = eval_at.unwrap_or_else(|| instance.generation_time());
                    let released = self
                        .reorder
                        .push_at(key, StreamItem::Instance(key, instance));
                    self.dispatch_all(released);
                }
                WalRecord::Probe {
                    subscription, at, ..
                } => self.enqueue_probe(SubscriptionId(subscription), at),
                WalRecord::Heartbeat { high_water, .. } => {
                    self.logged_high_water = Some(
                        self.logged_high_water
                            .map_or(high_water, |h| h.max(high_water)),
                    );
                    let released = self.reorder.observe(high_water);
                    self.dispatch_all(released);
                }
                // Checkpoints are markers for the recovery *reader*;
                // they carry no stream state to rebuild.
                WalRecord::Watermark { .. } => {}
            }
        }
    }

    fn dispatch_all(&mut self, released: Vec<StreamItem>) {
        for item in released {
            match item {
                StreamItem::Instance(at, instance) => self.dispatch(at, &instance),
                StreamItem::Probe { id, at } => self.silence_probe(id, at),
            }
        }
    }

    /// Offers one in-order instance to every resident subscription,
    /// evaluating at the instance's observer-local time `at`.
    fn dispatch(&mut self, at: TimePoint, instance: &EventInstance) {
        let location = instance.estimated_location().representative();
        let shard = self.shard;
        for sub in &mut self.subs {
            if let Some(filter) = &sub.event_filter {
                if filter != instance.event() {
                    continue;
                }
            }
            if let Some(layers) = &sub.layers {
                if !layers.contains(&instance.layer()) {
                    continue;
                }
            }
            if !sub.bbox.contains(location) || !sub.region.covers(location) {
                continue;
            }
            self.metrics.evaluated += 1;
            match &mut sub.kind {
                EvalKind::Plain => match eval_condition(&sub.condition, &sub.entities, instance) {
                    Some(true) => {
                        sub.sink.deliver(Notification {
                            subscription: sub.id,
                            shard,
                            kind: NotificationKind::Match(instance.clone()),
                        });
                        self.metrics.notifications += 1;
                    }
                    Some(false) => {}
                    None => self.metrics.eval_errors += 1,
                },
                EvalKind::Pattern(detector) => match detector.process_at(instance, at) {
                    Ok(derived) => {
                        for d in derived {
                            self.metrics.derived += 1;
                            self.metrics.notifications += 1;
                            sub.sink.deliver(Notification {
                                subscription: sub.id,
                                shard,
                                kind: NotificationKind::Derived(d),
                            });
                        }
                    }
                    Err(_) => self.metrics.eval_errors += 1,
                },
                EvalKind::Sustained(state) => {
                    let episode = match &state.value {
                        SustainedValue::Attribute(attr) => {
                            match instance.attributes().get_f64(attr) {
                                Some(value) => {
                                    state.last_input = Some(at);
                                    let v = if state.negate { -value } else { value };
                                    state.detector.update_value(at, v)
                                }
                                None => {
                                    self.metrics.eval_errors += 1;
                                    continue;
                                }
                            }
                        }
                        SustainedValue::DistanceTo(reference) => {
                            state.last_input = Some(at);
                            let d = location.distance(*reference);
                            let v = if state.negate { -d } else { d };
                            state.detector.update_value(at, v)
                        }
                        SustainedValue::Condition => {
                            match eval_condition(&sub.condition, &sub.entities, instance) {
                                Some(holds) => {
                                    state.last_input = Some(at);
                                    state.detector.update(at, holds)
                                }
                                None => {
                                    self.metrics.eval_errors += 1;
                                    continue;
                                }
                            }
                        }
                    };
                    if let Some(event) = episode {
                        self.metrics.notifications += 1;
                        sub.sink.deliver(Notification {
                            subscription: sub.id,
                            shard,
                            kind: NotificationKind::Sustained(event),
                        });
                    }
                }
            }
        }
    }

    /// Accepts a live silence probe: logs it write-ahead, then enqueues
    /// it.
    ///
    /// Two guards protect recovery correctness: a probe arriving while
    /// the log is still being replayed is dropped (the log carries every
    /// probe that fired before the crash — accepting a live one
    /// mid-replay would double-fire its inactive sample, see
    /// [`ReorderBuffer::is_recovering`]), and a re-fed probe the log
    /// already holds is a duplicate like any other resumed operation.
    fn queue_silence_probe(&mut self, id: SubscriptionId, at: TimePoint, seq: u64) {
        if self.reorder.is_recovering() || self.durable_seq.is_some_and(|d| seq <= d) {
            self.metrics.wal.deduped += 1;
            return;
        }
        self.wal_append(&WalRecord::Probe {
            seq,
            subscription: id.raw(),
            at,
        });
        self.enqueue_probe(id, at);
    }

    /// Enqueues a silence probe into the reorder buffer so it reaches
    /// the sustained detector in stream order. Probes already behind
    /// the watermark are stale — the stream has moved past them — and
    /// are discarded.
    fn enqueue_probe(&mut self, id: SubscriptionId, at: TimePoint) {
        if self.reorder.watermark().is_some_and(|w| at < w) {
            return;
        }
        self.probes += 1;
        let released = self.reorder.push_at(at, StreamItem::Probe { id, at });
        self.dispatch_all(released);
    }

    /// Feeds a sustained subscription its inactive sample if its input
    /// has been silent for the configured timeout.
    fn silence_probe(&mut self, id: SubscriptionId, at: TimePoint) {
        let shard = self.shard;
        let Some(sub) = self.subs.iter_mut().find(|s| s.id == id) else {
            return;
        };
        let EvalKind::Sustained(state) = &mut sub.kind else {
            return;
        };
        let Some(silence) = &state.silence else {
            return;
        };
        let stale = state
            .last_input
            .is_none_or(|t| at.duration_since(t).is_some_and(|d| d >= silence.timeout));
        if !stale {
            return;
        }
        if let Some(event) = state.detector.update_value(at, silence.inactive_value) {
            self.metrics.notifications += 1;
            sub.sink.deliver(Notification {
                subscription: sub.id,
                shard,
                kind: NotificationKind::Sustained(event),
            });
        }
    }

    /// Stream horizon: releases everything still reordering, then closes
    /// open sustained episodes at `at`.
    fn finalize(&mut self, at: TimePoint) {
        let remaining = self.reorder.flush();
        self.dispatch_all(remaining);
        let shard = self.shard;
        for sub in &mut self.subs {
            if let EvalKind::Sustained(state) = &mut sub.kind {
                if let Some(event) = state.detector.finish(at) {
                    self.metrics.notifications += 1;
                    sub.sink.deliver(Notification {
                        subscription: sub.id,
                        shard,
                        kind: NotificationKind::Sustained(event),
                    });
                }
            }
        }
    }

    /// Drains the reorder buffer, closes the log durably, and returns
    /// the final counters.
    pub(crate) fn finish(mut self) -> ShardMetrics {
        let remaining = self.reorder.flush();
        self.dispatch_all(remaining);
        if let Some(wal) = self.wal.as_mut() {
            wal.sync()
                .unwrap_or_else(|e| panic!("shard {} wal close failed: {e}", self.shard));
            let m = wal.metrics();
            self.metrics.wal.records_appended = m.records;
            self.metrics.wal.bytes_appended = m.bytes;
            self.metrics.wal.segments_created = m.segments;
        }
        // Probes ride the reorder buffer but are not instances.
        self.metrics.released = self.reorder.released() - self.probes;
        self.metrics.late_dropped = self.reorder.late_dropped();
        self.metrics.watermark = self.reorder.watermark();
        self.metrics.subscriptions = self.subs.len();
        self.metrics
    }

    /// The thread body: drain the channel, then finish.
    pub(crate) fn run(mut self, rx: std::sync::mpsc::Receiver<ShardMessage>) -> ShardMetrics {
        while let Ok(message) = rx.recv() {
            self.handle(message);
        }
        self.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchItem;
    use crate::subscription::{
        Collector, SilenceSpec, Subscription, SustainedSpec, SustainedValue,
    };
    use stem_cep::SustainedConfig;
    use stem_spatial::{Field, Point, Rect};

    fn reading(t: u64, v: f64) -> EventInstance {
        EventInstance::builder(
            ObserverId::Mote(stem_core::MoteId::new(1)),
            EventId::new("reading"),
            Layer::Sensor,
        )
        .generated(TimePoint::new(t), Point::new(5.0, 5.0))
        .attributes(stem_core::Attributes::new().with("v", v))
        .build()
    }

    fn sustained_worker(collector: &Collector) -> ShardWorker {
        let region = SpatialExtent::field(Field::rect(Rect::new(
            Point::new(0.0, 0.0),
            Point::new(100.0, 100.0),
        )));
        let sub =
            Subscription::new("episode", region, collector.sink()).sustained_spec(SustainedSpec {
                config: SustainedConfig {
                    min_duration: Duration::new(10),
                    enter_threshold: 1.0,
                    exit_threshold: 0.5,
                },
                value: SustainedValue::Attribute("v".to_owned()),
                negate: false,
                silence: Some(SilenceSpec {
                    timeout: Duration::new(5),
                    inactive_value: 0.0,
                }),
            });
        let mut worker = ShardWorker::new(0, Duration::ZERO, None, 1024);
        worker.handle(ShardMessage::Subscribe(Box::new(
            SubscriptionState::compile(SubscriptionId(0), sub),
        )));
        worker
    }

    /// The recovery guard (see `ReorderBuffer::is_recovering`): a live
    /// silence probe racing the log replay is dropped — the log already
    /// carries every probe that fired before the crash, so accepting it
    /// would double-fire the inactive sample and close the episode
    /// twice.
    #[test]
    fn live_silence_probes_are_suppressed_while_recovering() {
        let collector = Collector::new();
        let mut worker = sustained_worker(&collector);
        // Active samples at t=10 and t=30 open a qualifying episode
        // (episodes end at their last active sample, so a single sample
        // would make a zero-length, unreported episode).
        worker.handle(ShardMessage::Batch(Batch {
            instances: vec![
                BatchItem {
                    seq: 0,
                    instance: reading(10, 2.0),
                    eval_at: None,
                    prefix_high_water: None,
                },
                BatchItem {
                    seq: 1,
                    instance: reading(30, 2.0),
                    eval_at: None,
                    prefix_high_water: Some(TimePoint::new(10)),
                },
            ],
            high_water: Some(TimePoint::new(30)),
            seq: 2,
        }));
        worker.handle(ShardMessage::Recover {
            records: Vec::new(),
            durable_seq: None,
            torn: 0,
        });
        // Dropped: the shard is still replaying its log.
        worker.handle(ShardMessage::SilenceProbe {
            id: SubscriptionId(0),
            at: TimePoint::new(100),
            seq: 2,
        });
        worker.handle(ShardMessage::EndRecovery);
        // Accepted: recovery is over, the stale probe closes the episode.
        worker.handle(ShardMessage::SilenceProbe {
            id: SubscriptionId(0),
            at: TimePoint::new(100),
            seq: 3,
        });
        let metrics = worker.finish();
        assert_eq!(metrics.wal.deduped, 1, "the mid-recovery probe was dropped");
        let ended: Vec<_> = collector
            .take()
            .into_iter()
            .filter(|n| {
                matches!(
                    n.kind,
                    NotificationKind::Sustained(stem_cep::SustainedEvent::Ended { .. })
                )
            })
            .collect();
        assert_eq!(ended.len(), 1, "the episode must close exactly once");
    }

    /// Re-fed operations the log already holds (the resume overlap) are
    /// deduplicated by sequence number, instances and probes alike.
    #[test]
    fn resume_overlap_is_deduplicated_by_sequence() {
        let collector = Collector::new();
        let mut worker = sustained_worker(&collector);
        worker.handle(ShardMessage::Recover {
            records: vec![
                WalRecord::Instance {
                    seq: 0,
                    eval_at: None,
                    prefix_high_water: None,
                    instance: reading(10, 2.0),
                },
                WalRecord::Instance {
                    seq: 1,
                    eval_at: None,
                    prefix_high_water: Some(TimePoint::new(10)),
                    instance: reading(30, 2.0),
                },
            ],
            durable_seq: Some(1),
            torn: 0,
        });
        worker.handle(ShardMessage::EndRecovery);
        // The upstream re-feeds from sequence 0: the shard already has
        // both samples.
        worker.handle(ShardMessage::Batch(Batch {
            instances: vec![
                BatchItem {
                    seq: 0,
                    instance: reading(10, 2.0),
                    eval_at: None,
                    prefix_high_water: None,
                },
                BatchItem {
                    seq: 1,
                    instance: reading(30, 2.0),
                    eval_at: None,
                    prefix_high_water: Some(TimePoint::new(10)),
                },
            ],
            high_water: Some(TimePoint::new(30)),
            seq: 2,
        }));
        // Fresh work (seq 2) processes normally and closes the episode.
        worker.handle(ShardMessage::SilenceProbe {
            id: SubscriptionId(0),
            at: TimePoint::new(100),
            seq: 2,
        });
        let metrics = worker.finish();
        assert_eq!(metrics.wal.deduped, 2);
        assert_eq!(metrics.wal.records_recovered, 2);
        let ended = collector
            .take()
            .into_iter()
            .filter(|n| {
                matches!(
                    n.kind,
                    NotificationKind::Sustained(stem_cep::SustainedEvent::Ended { .. })
                )
            })
            .count();
        assert_eq!(ended, 1, "replay + dedup must evaluate the sample once");
    }
}
