//! Shard workers: reorder, evaluate, notify.

use crate::batch::Batch;
use crate::config::ShardId;
use crate::metrics::ShardMetrics;
use crate::subscription::{
    EventSink, Notification, NotificationKind, Subscription, SubscriptionId,
};
use stem_cep::{CompositeDetector, ReorderBuffer, SustainedDetector};
use stem_core::{
    Bindings, CcuId, ConditionExpr, ConditionObserver, EntityName, EventDefinition, EventId,
    EventInstance, Layer, ObserverId,
};
use stem_spatial::{Rect, SpatialExtent};
use stem_temporal::Duration;

/// What travels over a shard's input channel.
pub(crate) enum ShardMessage {
    /// Instances plus the router's watermark heartbeat.
    Batch(Batch),
    /// A subscription homed on this shard (boxed: it is much larger
    /// than the other variants).
    Subscribe(Box<SubscriptionState>),
    /// Retire a subscription.
    Unsubscribe(SubscriptionId),
}

/// How a subscription's stream is evaluated on its home shard.
enum EvalKind {
    /// Deliver condition-passing instances directly.
    Plain,
    /// Feed a pattern detector; deliver derived instances (boxed:
    /// far larger than the other variants).
    Pattern(Box<CompositeDetector>),
    /// Feed a sustained detector (sampling `attribute`, or the condition
    /// outcome when `None`); deliver episode notifications.
    Sustained(SustainedDetector, Option<String>),
}

/// A [`Subscription`] compiled for residence on one shard.
pub(crate) struct SubscriptionState {
    id: SubscriptionId,
    region: SpatialExtent,
    bbox: Rect,
    event_filter: Option<EventId>,
    /// The per-instance condition (for `Plain` / `Sustained`; a pattern
    /// subscription's condition lives inside its detector where it is
    /// evaluated over the match's bindings).
    condition: Option<ConditionExpr>,
    /// Entity names the condition binds (all bound to the candidate
    /// instance).
    entities: Vec<EntityName>,
    kind: EvalKind,
    sink: Box<dyn EventSink>,
}

impl SubscriptionState {
    /// Compiles `sub` for residence on its home shard.
    pub(crate) fn compile(id: SubscriptionId, sub: Subscription) -> Self {
        let bbox = sub.region.bounding_box();
        let (kind, condition) = if let Some(spec) = sub.pattern {
            // The composite condition (empty conjunction = always true)
            // is evaluated over pattern-match bindings by the detector.
            let condition = sub
                .condition
                .unwrap_or_else(|| ConditionExpr::And(Vec::new()));
            let definition = EventDefinition::new(sub.name.clone(), Layer::Cyber, condition);
            // The observer identity is keyed by subscription (not by
            // shard) so derived instances are identical whatever the
            // shard count — the sharding-equivalence tests rely on it.
            let observer = ConditionObserver::new(
                ObserverId::Ccu(CcuId::new(u32::try_from(id.raw()).unwrap_or(u32::MAX))),
                bbox.center(),
                1.0,
            );
            let detector =
                CompositeDetector::new(definition, spec.pattern, spec.mode, spec.horizon, observer);
            (EvalKind::Pattern(Box::new(detector)), None)
        } else if let Some(spec) = sub.sustained {
            (
                EvalKind::Sustained(SustainedDetector::new(spec.config), spec.attribute),
                sub.condition,
            )
        } else {
            (EvalKind::Plain, sub.condition)
        };
        let entities = condition
            .as_ref()
            .map(ConditionExpr::entity_names)
            .unwrap_or_default();
        SubscriptionState {
            id,
            region: sub.region,
            bbox,
            event_filter: sub.event_filter,
            condition,
            entities,
            kind,
            sink: sub.sink,
        }
    }
}

/// Evaluates a per-instance condition with every entity bound to the
/// instance. `None` when evaluation errored.
fn eval_condition(
    condition: &Option<ConditionExpr>,
    entities: &[EntityName],
    instance: &EventInstance,
) -> Option<bool> {
    let Some(cond) = condition else {
        return Some(true);
    };
    let mut bindings = Bindings::new();
    for name in entities {
        bindings.bind(name.clone(), instance.entity_data());
    }
    cond.eval(&bindings).ok()
}

/// One shard: a reorder buffer, the resident subscriptions, and counters.
pub(crate) struct ShardWorker {
    shard: ShardId,
    slack: Duration,
    reorder: ReorderBuffer,
    subs: Vec<SubscriptionState>,
    metrics: ShardMetrics,
}

impl ShardWorker {
    pub(crate) fn new(shard: ShardId, slack: Duration) -> Self {
        ShardWorker {
            shard,
            slack,
            reorder: ReorderBuffer::new(slack),
            subs: Vec::new(),
            metrics: ShardMetrics {
                shard,
                ..ShardMetrics::default()
            },
        }
    }

    pub(crate) fn handle(&mut self, message: ShardMessage) {
        match message {
            ShardMessage::Batch(batch) => self.process_batch(batch),
            ShardMessage::Subscribe(state) => self.subs.push(*state),
            ShardMessage::Unsubscribe(id) => self.subs.retain(|s| s.id != id),
        }
    }

    pub(crate) fn process_batch(&mut self, batch: Batch) {
        self.metrics.batches += 1;
        self.metrics.ingested += batch.instances.len() as u64;
        if let Some(hw) = batch.high_water {
            // How far this shard's view of finalized time trailed the
            // router's when the batch arrived.
            let local_max = self
                .reorder
                .watermark()
                .map_or(0, |w| w.ticks().saturating_add(self.slack.ticks()));
            self.metrics.watermark_lag_max = self
                .metrics
                .watermark_lag_max
                .max(hw.ticks().saturating_sub(local_max));
        }
        for item in batch.instances {
            // Replaying the global watermark before each push keeps
            // accept/late-drop decisions identical to a 1-shard run
            // even when disorder exceeds the slack.
            if let Some(hw) = item.prefix_high_water {
                let released = self.reorder.observe(hw);
                self.dispatch_all(released);
            }
            let released = self.reorder.push(item.instance);
            self.dispatch_all(released);
        }
        if let Some(hw) = batch.high_water {
            let released = self.reorder.observe(hw);
            self.dispatch_all(released);
        }
    }

    fn dispatch_all(&mut self, released: Vec<EventInstance>) {
        for instance in released {
            self.dispatch(&instance);
        }
    }

    /// Offers one in-order instance to every resident subscription.
    fn dispatch(&mut self, instance: &EventInstance) {
        let location = instance.estimated_location().representative();
        let shard = self.shard;
        for sub in &mut self.subs {
            if let Some(filter) = &sub.event_filter {
                if filter != instance.event() {
                    continue;
                }
            }
            if !sub.bbox.contains(location) || !sub.region.covers(location) {
                continue;
            }
            self.metrics.evaluated += 1;
            match &mut sub.kind {
                EvalKind::Plain => match eval_condition(&sub.condition, &sub.entities, instance) {
                    Some(true) => {
                        sub.sink.deliver(Notification {
                            subscription: sub.id,
                            shard,
                            kind: NotificationKind::Match(instance.clone()),
                        });
                        self.metrics.notifications += 1;
                    }
                    Some(false) => {}
                    None => self.metrics.eval_errors += 1,
                },
                EvalKind::Pattern(detector) => match detector.process(instance) {
                    Ok(derived) => {
                        for d in derived {
                            self.metrics.derived += 1;
                            self.metrics.notifications += 1;
                            sub.sink.deliver(Notification {
                                subscription: sub.id,
                                shard,
                                kind: NotificationKind::Derived(d),
                            });
                        }
                    }
                    Err(_) => self.metrics.eval_errors += 1,
                },
                EvalKind::Sustained(detector, attribute) => {
                    let t = instance.generation_time();
                    let episode = if let Some(attr) = attribute {
                        match instance.attributes().get_f64(attr) {
                            Some(value) => detector.update_value(t, value),
                            None => {
                                self.metrics.eval_errors += 1;
                                continue;
                            }
                        }
                    } else {
                        match eval_condition(&sub.condition, &sub.entities, instance) {
                            Some(holds) => detector.update(t, holds),
                            None => {
                                self.metrics.eval_errors += 1;
                                continue;
                            }
                        }
                    };
                    if let Some(event) = episode {
                        self.metrics.notifications += 1;
                        sub.sink.deliver(Notification {
                            subscription: sub.id,
                            shard,
                            kind: NotificationKind::Sustained(event),
                        });
                    }
                }
            }
        }
    }

    /// Drains the reorder buffer and returns the final counters.
    pub(crate) fn finish(mut self) -> ShardMetrics {
        let remaining = self.reorder.flush();
        self.dispatch_all(remaining);
        self.metrics.released = self.reorder.released();
        self.metrics.late_dropped = self.reorder.late_dropped();
        self.metrics.watermark = self.reorder.watermark();
        self.metrics.subscriptions = self.subs.len();
        self.metrics
    }

    /// The thread body: drain the channel, then finish.
    pub(crate) fn run(mut self, rx: std::sync::mpsc::Receiver<ShardMessage>) -> ShardMetrics {
        while let Ok(message) = rx.recv() {
            self.handle(message);
        }
        self.finish()
    }
}
