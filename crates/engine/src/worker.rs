//! Shard workers: reorder, evaluate, notify.

use crate::batch::Batch;
use crate::config::ShardId;
use crate::metrics::ShardMetrics;
use crate::subscription::{
    EventSink, Notification, NotificationKind, SilenceSpec, Subscription, SubscriptionId,
    SustainedValue,
};
use stem_cep::{CompositeDetector, ReorderBuffer, SustainedDetector};
use stem_core::{
    Bindings, CcuId, ConditionExpr, ConditionObserver, EntityName, EventDefinition, EventId,
    EventInstance, Layer, ObserverId,
};
use stem_spatial::{Rect, SpatialExtent};
use stem_temporal::{Duration, TimePoint};

/// What travels over a shard's input channel.
pub(crate) enum ShardMessage {
    /// Instances plus the router's watermark heartbeat.
    Batch(Batch),
    /// A subscription homed on this shard (boxed: it is much larger
    /// than the other variants).
    Subscribe(Box<SubscriptionState>),
    /// Retire a subscription.
    Unsubscribe(SubscriptionId),
    /// Silence heartbeat for one sustained subscription: feed its
    /// inactive sample if no input arrived for its configured timeout.
    SilenceProbe {
        /// The sustained subscription to probe.
        id: SubscriptionId,
        /// The probe's observer-local time.
        at: TimePoint,
    },
    /// Stream horizon: drain the reorder buffer and close any open
    /// sustained episodes at the given time.
    Finalize(TimePoint),
    /// Barrier: acknowledge once everything queued before this message
    /// has been processed.
    Sync(std::sync::mpsc::Sender<()>),
}

/// A sustained detector resident on a shard, with its sampling rules.
struct SustainedState {
    detector: SustainedDetector,
    value: SustainedValue,
    negate: bool,
    silence: Option<SilenceSpec>,
    /// When the last input sample arrived (silence-staleness clock).
    last_input: Option<TimePoint>,
}

/// How a subscription's stream is evaluated on its home shard.
enum EvalKind {
    /// Deliver condition-passing instances directly.
    Plain,
    /// Feed a pattern detector; deliver derived instances (boxed:
    /// far larger than the other variants).
    Pattern(Box<CompositeDetector>),
    /// Feed a sustained detector; deliver episode notifications.
    Sustained(SustainedState),
}

/// A [`Subscription`] compiled for residence on one shard.
pub(crate) struct SubscriptionState {
    id: SubscriptionId,
    region: SpatialExtent,
    bbox: Rect,
    event_filter: Option<EventId>,
    layers: Option<Vec<Layer>>,
    /// The per-instance condition (for `Plain` / `Sustained`; a pattern
    /// subscription's condition lives inside its detector where it is
    /// evaluated over the match's bindings).
    condition: Option<ConditionExpr>,
    /// Entity names the condition binds (all bound to the candidate
    /// instance).
    entities: Vec<EntityName>,
    kind: EvalKind,
    sink: Box<dyn EventSink>,
}

impl SubscriptionState {
    /// Compiles `sub` for residence on its home shard.
    pub(crate) fn compile(id: SubscriptionId, sub: Subscription) -> Self {
        let bbox = sub.region.bounding_box();
        let (kind, condition) = if let Some(spec) = sub.pattern {
            // The definition override carries the registrant's estimation
            // policies and projections; without one, the composite
            // condition (empty conjunction = always true) is evaluated
            // over pattern-match bindings by a default cyber definition.
            let definition = sub.definition.unwrap_or_else(|| {
                let condition = sub
                    .condition
                    .unwrap_or_else(|| ConditionExpr::And(Vec::new()));
                EventDefinition::new(sub.name.clone(), Layer::Cyber, condition)
            });
            // Without an observer override, the identity is keyed by
            // subscription (not by shard) so derived instances are
            // identical whatever the shard count — the
            // sharding-equivalence tests rely on it.
            let observer = sub.observer.unwrap_or_else(|| {
                ConditionObserver::new(
                    ObserverId::Ccu(CcuId::new(u32::try_from(id.raw()).unwrap_or(u32::MAX))),
                    bbox.center(),
                    1.0,
                )
            });
            let detector =
                CompositeDetector::new(definition, spec.pattern, spec.mode, spec.horizon, observer);
            (EvalKind::Pattern(Box::new(detector)), None)
        } else if let Some(spec) = sub.sustained {
            (
                EvalKind::Sustained(SustainedState {
                    detector: SustainedDetector::new(spec.config),
                    value: spec.value,
                    negate: spec.negate,
                    silence: spec.silence,
                    last_input: None,
                }),
                sub.condition,
            )
        } else {
            (EvalKind::Plain, sub.condition)
        };
        let entities = condition
            .as_ref()
            .map(ConditionExpr::entity_names)
            .unwrap_or_default();
        SubscriptionState {
            id,
            region: sub.region,
            bbox,
            event_filter: sub.event_filter,
            layers: sub.layers,
            condition,
            entities,
            kind,
            sink: sub.sink,
        }
    }
}

/// Evaluates a per-instance condition with every entity bound to the
/// instance. `None` when evaluation errored.
fn eval_condition(
    condition: &Option<ConditionExpr>,
    entities: &[EntityName],
    instance: &EventInstance,
) -> Option<bool> {
    let Some(cond) = condition else {
        return Some(true);
    };
    let mut bindings = Bindings::new();
    for name in entities {
        bindings.bind(name.clone(), instance.entity_data());
    }
    cond.eval(&bindings).ok()
}

/// One entry in a shard's reorder buffer, keyed by its observer-local
/// time so the evaluation stream replays in station-clock order.
enum StreamItem {
    /// An instance to evaluate at its time (ingest-provided, defaulting
    /// to the generation time).
    Instance(TimePoint, EventInstance),
    /// A queued silence probe: probes travel through the same reorder
    /// buffer as instances — feeding the sustained detector directly on
    /// message arrival would run it out of time order whenever earlier
    /// samples are still held behind the watermark slack.
    Probe { id: SubscriptionId, at: TimePoint },
}

/// One shard: a reorder buffer, the resident subscriptions, and counters.
pub(crate) struct ShardWorker {
    shard: ShardId,
    slack: Duration,
    reorder: ReorderBuffer<StreamItem>,
    /// Probes pushed through the reorder buffer (excluded from the
    /// instance-release counter).
    probes: u64,
    subs: Vec<SubscriptionState>,
    metrics: ShardMetrics,
}

impl ShardWorker {
    pub(crate) fn new(shard: ShardId, slack: Duration) -> Self {
        ShardWorker {
            shard,
            slack,
            reorder: ReorderBuffer::new(slack),
            probes: 0,
            subs: Vec::new(),
            metrics: ShardMetrics {
                shard,
                ..ShardMetrics::default()
            },
        }
    }

    pub(crate) fn handle(&mut self, message: ShardMessage) {
        match message {
            ShardMessage::Batch(batch) => self.process_batch(batch),
            ShardMessage::Subscribe(state) => self.subs.push(*state),
            ShardMessage::Unsubscribe(id) => self.subs.retain(|s| s.id != id),
            ShardMessage::SilenceProbe { id, at } => self.queue_silence_probe(id, at),
            ShardMessage::Finalize(at) => self.finalize(at),
            ShardMessage::Sync(ack) => {
                let _ = ack.send(());
            }
        }
    }

    pub(crate) fn process_batch(&mut self, batch: Batch) {
        self.metrics.batches += 1;
        self.metrics.ingested += batch.instances.len() as u64;
        if let Some(hw) = batch.high_water {
            // How far this shard's view of finalized time trailed the
            // router's when the batch arrived.
            let local_max = self
                .reorder
                .watermark()
                .map_or(0, |w| w.ticks().saturating_add(self.slack.ticks()));
            self.metrics.watermark_lag_max = self
                .metrics
                .watermark_lag_max
                .max(hw.ticks().saturating_sub(local_max));
        }
        for item in batch.instances {
            // Replaying the global watermark before each push keeps
            // accept/late-drop decisions identical to a 1-shard run
            // even when disorder exceeds the slack.
            if let Some(hw) = item.prefix_high_water {
                let released = self.reorder.observe(hw);
                self.dispatch_all(released);
            }
            let key = item
                .eval_at
                .unwrap_or_else(|| item.instance.generation_time());
            let released = self
                .reorder
                .push_at(key, StreamItem::Instance(key, item.instance));
            self.dispatch_all(released);
        }
        if let Some(hw) = batch.high_water {
            let released = self.reorder.observe(hw);
            self.dispatch_all(released);
        }
    }

    fn dispatch_all(&mut self, released: Vec<StreamItem>) {
        for item in released {
            match item {
                StreamItem::Instance(at, instance) => self.dispatch(at, &instance),
                StreamItem::Probe { id, at } => self.silence_probe(id, at),
            }
        }
    }

    /// Offers one in-order instance to every resident subscription,
    /// evaluating at the instance's observer-local time `at`.
    fn dispatch(&mut self, at: TimePoint, instance: &EventInstance) {
        let location = instance.estimated_location().representative();
        let shard = self.shard;
        for sub in &mut self.subs {
            if let Some(filter) = &sub.event_filter {
                if filter != instance.event() {
                    continue;
                }
            }
            if let Some(layers) = &sub.layers {
                if !layers.contains(&instance.layer()) {
                    continue;
                }
            }
            if !sub.bbox.contains(location) || !sub.region.covers(location) {
                continue;
            }
            self.metrics.evaluated += 1;
            match &mut sub.kind {
                EvalKind::Plain => match eval_condition(&sub.condition, &sub.entities, instance) {
                    Some(true) => {
                        sub.sink.deliver(Notification {
                            subscription: sub.id,
                            shard,
                            kind: NotificationKind::Match(instance.clone()),
                        });
                        self.metrics.notifications += 1;
                    }
                    Some(false) => {}
                    None => self.metrics.eval_errors += 1,
                },
                EvalKind::Pattern(detector) => match detector.process_at(instance, at) {
                    Ok(derived) => {
                        for d in derived {
                            self.metrics.derived += 1;
                            self.metrics.notifications += 1;
                            sub.sink.deliver(Notification {
                                subscription: sub.id,
                                shard,
                                kind: NotificationKind::Derived(d),
                            });
                        }
                    }
                    Err(_) => self.metrics.eval_errors += 1,
                },
                EvalKind::Sustained(state) => {
                    let episode = match &state.value {
                        SustainedValue::Attribute(attr) => {
                            match instance.attributes().get_f64(attr) {
                                Some(value) => {
                                    state.last_input = Some(at);
                                    let v = if state.negate { -value } else { value };
                                    state.detector.update_value(at, v)
                                }
                                None => {
                                    self.metrics.eval_errors += 1;
                                    continue;
                                }
                            }
                        }
                        SustainedValue::DistanceTo(reference) => {
                            state.last_input = Some(at);
                            let d = location.distance(*reference);
                            let v = if state.negate { -d } else { d };
                            state.detector.update_value(at, v)
                        }
                        SustainedValue::Condition => {
                            match eval_condition(&sub.condition, &sub.entities, instance) {
                                Some(holds) => {
                                    state.last_input = Some(at);
                                    state.detector.update(at, holds)
                                }
                                None => {
                                    self.metrics.eval_errors += 1;
                                    continue;
                                }
                            }
                        }
                    };
                    if let Some(event) = episode {
                        self.metrics.notifications += 1;
                        sub.sink.deliver(Notification {
                            subscription: sub.id,
                            shard,
                            kind: NotificationKind::Sustained(event),
                        });
                    }
                }
            }
        }
    }

    /// Enqueues a silence probe into the reorder buffer so it reaches
    /// the sustained detector in stream order. Probes already behind
    /// the watermark are stale — the stream has moved past them — and
    /// are discarded.
    fn queue_silence_probe(&mut self, id: SubscriptionId, at: TimePoint) {
        if self.reorder.watermark().is_some_and(|w| at < w) {
            return;
        }
        self.probes += 1;
        let released = self.reorder.push_at(at, StreamItem::Probe { id, at });
        self.dispatch_all(released);
    }

    /// Feeds a sustained subscription its inactive sample if its input
    /// has been silent for the configured timeout.
    fn silence_probe(&mut self, id: SubscriptionId, at: TimePoint) {
        let shard = self.shard;
        let Some(sub) = self.subs.iter_mut().find(|s| s.id == id) else {
            return;
        };
        let EvalKind::Sustained(state) = &mut sub.kind else {
            return;
        };
        let Some(silence) = &state.silence else {
            return;
        };
        let stale = state
            .last_input
            .is_none_or(|t| at.duration_since(t).is_some_and(|d| d >= silence.timeout));
        if !stale {
            return;
        }
        if let Some(event) = state.detector.update_value(at, silence.inactive_value) {
            self.metrics.notifications += 1;
            sub.sink.deliver(Notification {
                subscription: sub.id,
                shard,
                kind: NotificationKind::Sustained(event),
            });
        }
    }

    /// Stream horizon: releases everything still reordering, then closes
    /// open sustained episodes at `at`.
    fn finalize(&mut self, at: TimePoint) {
        let remaining = self.reorder.flush();
        self.dispatch_all(remaining);
        let shard = self.shard;
        for sub in &mut self.subs {
            if let EvalKind::Sustained(state) = &mut sub.kind {
                if let Some(event) = state.detector.finish(at) {
                    self.metrics.notifications += 1;
                    sub.sink.deliver(Notification {
                        subscription: sub.id,
                        shard,
                        kind: NotificationKind::Sustained(event),
                    });
                }
            }
        }
    }

    /// Drains the reorder buffer and returns the final counters.
    pub(crate) fn finish(mut self) -> ShardMetrics {
        let remaining = self.reorder.flush();
        self.dispatch_all(remaining);
        // Probes ride the reorder buffer but are not instances.
        self.metrics.released = self.reorder.released() - self.probes;
        self.metrics.late_dropped = self.reorder.late_dropped();
        self.metrics.watermark = self.reorder.watermark();
        self.metrics.subscriptions = self.subs.len();
        self.metrics
    }

    /// The thread body: drain the channel, then finish.
    pub(crate) fn run(mut self, rx: std::sync::mpsc::Receiver<ShardMessage>) -> ShardMetrics {
        while let Ok(message) = rx.recv() {
            self.handle(message);
        }
        self.finish()
    }
}
